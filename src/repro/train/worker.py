"""The actor-worker process of parallel training.

A worker owns a private environment and a lightweight actor copy of the
agent (one-slot replay buffer -- it only *generates* experience).  It
loops on the task queue: refresh policy weights from shared memory if
the version moved, re-seed the actor's exploration stream for the
assigned episode, run the episode through the shared
:class:`~repro.decision.trainer.EpisodeRunner`, and ship the packed
transitions back on the result queue.

Determinism contract: the trajectory a worker produces for task
``(episode, clock_base, version)`` is a pure function of those values
plus the run's root seed -- the exploration stream is
``spawn_stream(root_seed, episode, rollbacks)`` (never a stream shared
between episodes), the environment seed is ``seed_offset + episode``,
and the exploration-decay clock starts at the round's ``clock_base``.
Nothing depends on which worker ran it, on how many workers exist, or
on arrival order.

Workers are daemonic children of the learner; if the learner is
SIGKILLed they notice the re-parenting on the next queue-poll timeout
and exit instead of leaking.
"""

from __future__ import annotations

import os
import queue
import traceback
from dataclasses import dataclass, replace

import numpy as np

from ..decision.agents import EpsilonSchedule, PamdpAgent
from ..decision.replay import Transition, TransitionBatch
from ..decision.trainer import EpisodeRunner
from ..nn.serialization import flat_parameter_size
from ..seeding import spawn_stream
from .sync import SharedPolicy, policy_modules

__all__ = ["WorkerOptions", "EpisodeTask", "EpisodeResult", "CollectSink",
           "worker_main"]


@dataclass(frozen=True)
class WorkerOptions:
    """Run-constant configuration shipped to every worker at start-up."""

    root_seed: int
    seed_offset: int
    max_episode_steps: int | None
    epsilon: EpsilonSchedule
    noise_scale: float
    flat_size: int
    parent_pid: int
    poll_seconds: float = 2.0


@dataclass(frozen=True)
class EpisodeTask:
    """One episode assignment: everything its trajectory is a function of."""

    generation: int   # rollback epoch; stale-generation results are dropped
    episode: int
    clock_base: int   # learner's total_steps at the round start
    version: int      # policy version the round was published as
    rollbacks: int    # folded into the exploration stream key


@dataclass(frozen=True)
class EpisodeResult:
    """A finished episode in wire form."""

    generation: int
    episode: int
    worker_id: int
    payload: dict[str, np.ndarray] | None  # TransitionBatch field arrays
    reward_sum: float = 0.0
    steps: int = 0
    collided: bool = False
    diverged: bool = False
    error: str | None = None

    def batch(self) -> TransitionBatch:
        return TransitionBatch(**self.payload)


class CollectSink:
    """Worker-side transition sink: record and advance the actor clock.

    The serial :class:`~repro.decision.trainer.LearningSink` advances
    the exploration clock through ``agent.observe``; a collecting actor
    never stores or learns, so the clock advance is replicated here --
    without it epsilon/noise decay would freeze mid-episode and the
    trajectory would diverge from the serial schedule.
    """

    def __init__(self, actor: PamdpAgent) -> None:
        self.actor = actor
        self.transitions: list[Transition] = []

    def __call__(self, transition: Transition) -> bool:
        self.transitions.append(transition)
        self.actor.total_steps += 1
        return not np.isfinite(transition.reward)

    def pack(self) -> TransitionBatch:
        return TransitionBatch.from_transitions(self.transitions)


def run_episode(actor: PamdpAgent, runner: EpisodeRunner, task: EpisodeTask,
                options: WorkerOptions) -> EpisodeResult:
    """Generate one episode per the determinism contract (pure in ``task``)."""
    actor.rng = spawn_stream(options.root_seed, task.episode, task.rollbacks)
    actor.total_steps = task.clock_base
    sink = CollectSink(actor)
    outcome = runner.run(actor, options.seed_offset + task.episode, sink)
    return EpisodeResult(
        generation=task.generation, episode=task.episode, worker_id=-1,
        payload=sink.pack().arrays(), reward_sum=outcome.reward_sum,
        steps=outcome.steps, collided=outcome.collided,
        diverged=outcome.diverged)


def worker_main(worker_id: int, task_queue, result_queue,
                policy: SharedPolicy, env_factory, agent_factory,
                options: WorkerOptions) -> None:
    """Entry point of one actor process (spawn-picklable, module level)."""
    try:
        env = env_factory()
        actor = agent_factory()
        actor.epsilon = options.epsilon
        actor.noise_scale = options.noise_scale
        modules = policy_modules(actor)
        local_size = flat_parameter_size(modules)
        if local_size != options.flat_size:
            raise RuntimeError(
                f"actor architecture mismatch: worker holds {local_size} "
                f"parameters, learner broadcasts {options.flat_size}")
        runner = EpisodeRunner(env, max_episode_steps=options.max_episode_steps)
    except BaseException:
        result_queue.put(EpisodeResult(
            generation=-1, episode=-1, worker_id=worker_id, payload=None,
            error=traceback.format_exc()))
        return

    held_version = 0
    while True:
        try:
            task = task_queue.get(timeout=options.poll_seconds)
        except queue.Empty:
            if os.getppid() != options.parent_pid:
                return  # learner died (SIGKILL); don't linger as an orphan
            continue
        if task is None:
            return
        try:
            held_version = policy.refresh(modules, held_version)
            result = run_episode(actor, runner, task, options)
            result_queue.put(replace(result, worker_id=worker_id))
        except BaseException:
            result_queue.put(EpisodeResult(
                generation=task.generation, episode=task.episode,
                worker_id=worker_id, payload=None,
                error=traceback.format_exc()))

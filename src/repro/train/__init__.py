"""Actor-learner parallel training (``repro.train``).

One learner process plus N actor workers generating experience under a
round-based synchronous schedule that makes the learning curve a pure
function of ``(root_seed, sync_every, learn_every, seed_offset)`` --
bitwise invariant in the worker count.  See ``docs/training.md``.
"""

from .factories import build_agent, build_env, predictor_state
from .parallel import ReorderBuffer, WorkerCrashError, train_agent_parallel
from .sync import SharedPolicy, policy_modules
from .worker import (CollectSink, EpisodeResult, EpisodeTask, WorkerOptions,
                     run_episode, worker_main)

__all__ = [
    "train_agent_parallel", "ReorderBuffer", "WorkerCrashError",
    "SharedPolicy", "policy_modules",
    "WorkerOptions", "EpisodeTask", "EpisodeResult", "CollectSink",
    "run_episode", "worker_main",
    "build_env", "build_agent", "predictor_state",
]

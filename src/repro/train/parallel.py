"""Actor-learner parallel training with a bit-reproducible schedule.

One learner (this process) plus N actor workers.  Episodes are grouped
into synchronous *rounds* of ``sync_every``: the learner publishes its
policy networks to shared memory, dispatches the round's episode ids,
and consumes the results **in canonical episode order** behind a
:class:`ReorderBuffer` -- so the optimizer sees a transition sequence
that does not depend on arrival order, worker count, or scheduling.
Each consumed episode is drained in ``learn_every``-sized chunks
through :meth:`~repro.decision.replay.ReplayBuffer.push_many`,
replicating the serial loop's learn cadence exactly.

The determinism contract (see ``docs/training.md``):

* For a fixed ``(root_seed, sync_every, learn_every, seed_offset)``,
  the consumed transition stream, the learning curve, and the final
  weights are **bitwise identical for every worker count** -- including
  ``workers=0`` (in-process generation, no subprocesses) and
  ``workers=1``.
* The *parallel schedule* is not the *serial schedule*: the serial loop
  updates weights mid-episode and draws exploration from one shared
  stream, which is impossible to reproduce while generating episodes
  concurrently.  ``workers=1`` here reproduces the parallel schedule
  with one actor, not ``train_agent``'s curve; the CLI keeps
  ``--workers 1`` on the serial path for backward bit-compatibility.

Crash safety extends PR 2's checkpoints: snapshots happen at round
boundaries (where no generation is in flight, so there is no queue
state to persist -- in-flight episodes are pure functions of their
task and simply regenerate on resume), stamped with the schedule
constants, the consumed-stream digest, and the rollback count so a
SIGKILL-resume reproduces the uninterrupted run exactly.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import queue
import time
from pathlib import Path

import numpy as np

from ..decision.agents import PamdpAgent
from ..decision.replay import TransitionBatch
from ..decision.trainer import (ActionFilter, CHECKPOINT_NAME, EpisodeRunner,
                                NaNLossError, RLTrainingLog, _finite)
from ..faults.checkpoint import (check_schedule, load_checkpoint,
                                 save_checkpoint)
from .sync import SharedPolicy, policy_modules
from .worker import (EpisodeResult, EpisodeTask, WorkerOptions, run_episode,
                     worker_main)

__all__ = ["train_agent_parallel", "ReorderBuffer", "WorkerCrashError"]

#: Seconds between learner liveness checks while waiting on results.
_RESULT_POLL = 5.0


class WorkerCrashError(RuntimeError):
    """An actor worker died or raised instead of producing its episode."""


class ReorderBuffer:
    """Deliver episode results in canonical id order, whatever the arrival.

    Workers finish out of order; the learner must consume in episode
    order or the replay/optimizer stream would depend on scheduling.
    ``put`` admits a result, ``take`` returns the next canonical episode
    iff it has arrived.  ``reset`` discards pending results (rollback:
    everything in flight belongs to the abandoned generation).
    """

    def __init__(self, next_episode: int = 0) -> None:
        self.next_episode = next_episode
        self._pending: dict[int, EpisodeResult] = {}

    def __len__(self) -> int:
        return len(self._pending)

    def put(self, result: EpisodeResult) -> None:
        self._pending[result.episode] = result

    def take(self) -> EpisodeResult | None:
        result = self._pending.pop(self.next_episode, None)
        if result is not None:
            self.next_episode += 1
        return result

    def reset(self, next_episode: int) -> None:
        self.next_episode = next_episode
        self._pending.clear()


def _chain_digest(digest: str, chunk: TransitionBatch) -> str:
    """Extend the consumed-stream digest by one chunk.

    Chained (each link hashes the previous hex) rather than one running
    hash object so the digest is a plain string that survives the
    checkpoint round-trip -- hashlib state is not serializable.
    """
    link = hashlib.sha256()
    link.update(digest.encode("ascii"))
    for name, column in sorted(chunk.arrays().items()):
        link.update(name.encode("ascii"))
        link.update(np.ascontiguousarray(column).tobytes())
    return link.hexdigest()


def _consume_episode(agent: PamdpAgent, batch: TransitionBatch,
                     generated_diverged: bool, learn_every: int,
                     digest: str) -> tuple[str, bool]:
    """Feed one episode's transitions at the serial learn cadence.

    Returns ``(digest, diverged)``.  Chunks end exactly on the global
    ``learn_every`` boundaries the serial loop would have learned at;
    a worker-flagged non-finite final transition is stored (the serial
    loop observes before it checks) but never learned on.
    """
    total = len(batch)
    index = 0
    while index < total:
        boundary = learn_every - (agent.total_steps % learn_every)
        chunk = batch[index:index + boundary]
        agent.buffer.push_many(chunk)
        agent.total_steps += len(chunk)
        digest = _chain_digest(digest, chunk)
        index += len(chunk)
        poisoned_tail = generated_diverged and index == total
        if agent.total_steps % learn_every == 0 and not poisoned_tail:
            losses = agent.learn()
            if not _finite(losses):
                return digest, True
    return digest, generated_diverged


def _parallel_extra(log: RLTrainingLog, next_episode: int, wall_time: float,
                    schedule: dict, digest: str) -> dict:
    return {
        "next_episode": next_episode,
        "episode_rewards": list(log.episode_rewards),
        "episode_steps": list(log.episode_steps),
        "collisions": log.collisions,
        "wall_time": wall_time,
        "rollbacks": log.nan_rollbacks,
        "transition_digest": digest,
        "schedule": schedule,
    }


def _restore_parallel(path: Path, agent: PamdpAgent, log: RLTrainingLog,
                      schedule: dict) -> tuple[int, float, str]:
    """Load a parallel checkpoint; returns (next_episode, wall, digest)."""
    extra = load_checkpoint(path, agent)
    check_schedule(extra, schedule, path=path)
    log.episode_rewards[:] = [float(r) for r in extra["episode_rewards"]]
    log.episode_steps[:] = [int(s) for s in extra["episode_steps"]]
    log.collisions = int(extra["collisions"])
    log.nan_rollbacks = int(extra["rollbacks"])
    return (int(extra["next_episode"]), float(extra["wall_time"]),
            str(extra["transition_digest"]))


class _InlineActors:
    """``workers=0``: generate each round in-process, no subprocesses.

    Bitwise equal to worker mode -- episodes are generated for the whole
    round *before* any of it is consumed (so the policy is frozen at the
    round snapshot, exactly like a worker holding the published
    version), on the learner's own agent with its exploration stream and
    clock swapped out per episode.  The replay buffer keeps sharing the
    learner's real generator object, so sampling draws are untouched.
    Exists so equivalence tests and debugging runs pay zero spawn cost.
    """

    def __init__(self, agent: PamdpAgent, env_factory,
                 options: WorkerOptions,
                 action_filter: ActionFilter | None) -> None:
        self.agent = agent
        self.runner = EpisodeRunner(env_factory(), action_filter,
                                    options.max_episode_steps)
        self.options = options

    def generate(self, tasks: list[EpisodeTask]) -> list[EpisodeResult]:
        agent = self.agent
        saved_rng, saved_steps = agent.rng, agent.total_steps
        saved_epsilon = agent.epsilon
        saved_noise = agent.noise_scale
        try:
            agent.epsilon = self.options.epsilon
            agent.noise_scale = self.options.noise_scale
            return [run_episode(agent, self.runner, task, self.options)
                    for task in tasks]
        finally:
            agent.rng = saved_rng
            agent.total_steps = saved_steps
            agent.epsilon = saved_epsilon
            agent.noise_scale = saved_noise


class _WorkerPool:
    """Spawned actor processes plus their queues and shared policy block."""

    def __init__(self, workers: int, agent: PamdpAgent, env_factory,
                 agent_factory, options: WorkerOptions) -> None:
        context = multiprocessing.get_context("spawn")
        self.policy = SharedPolicy.for_agent(context, agent)
        self.tasks = context.Queue()
        self.results = context.Queue()
        self.processes = [
            context.Process(
                target=worker_main,
                args=(worker_id, self.tasks, self.results, self.policy,
                      env_factory, agent_factory, options),
                daemon=True, name=f"repro-train-actor-{worker_id}")
            for worker_id in range(workers)
        ]
        for process in self.processes:
            process.start()

    def dispatch(self, tasks: list[EpisodeTask]) -> None:
        for task in tasks:
            self.tasks.put(task)

    def next_result(self, generation: int) -> EpisodeResult:
        """Block for the next live result of the current generation."""
        while True:
            try:
                result = self.results.get(timeout=_RESULT_POLL)
            except queue.Empty:
                dead = [p.name for p in self.processes if not p.is_alive()]
                if dead:
                    raise WorkerCrashError(
                        f"actor process(es) died without reporting: {dead}")
                continue
            if result.error is not None:
                raise WorkerCrashError(
                    f"actor {result.worker_id} failed on episode "
                    f"{result.episode}:\n{result.error}")
            if result.generation == generation:
                return result
            # stale generation (pre-rollback in-flight work): drop

    def shutdown(self) -> None:
        for _ in self.processes:
            try:
                self.tasks.put(None)
            except (OSError, ValueError):
                break
        for process in self.processes:
            process.join(timeout=10.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        for q in (self.tasks, self.results):
            q.cancel_join_thread()
            q.close()


def train_agent_parallel(agent: PamdpAgent, env_factory, episodes: int, *,
                         workers: int,
                         agent_factory=None,
                         sync_every: int = 8,
                         learn_every: int = 1,
                         seed_offset: int = 10_000,
                         root_seed: int | None = None,
                         action_filter: ActionFilter | None = None,
                         max_episode_steps: int | None = None,
                         checkpoint_dir: str | Path | None = None,
                         checkpoint_every: int = 0,
                         resume: bool = True,
                         max_nan_rollbacks: int = 3) -> RLTrainingLog:
    """Train ``agent`` on worker-generated episodes; N-invariant bitwise.

    Parameters
    ----------
    env_factory:
        Zero-argument picklable callable building a fresh
        :class:`~repro.decision.environment.DrivingEnv`
        (:func:`repro.train.factories.build_env` via ``functools.partial``).
        Also used for the learner-side environment when ``workers=0``.
    workers:
        Actor process count; ``0`` generates in-process on the identical
        schedule (fast, no spawn -- the equivalence-test mode).
    agent_factory:
        Zero-argument picklable callable building an actor copy of the
        agent (:func:`repro.train.factories.build_agent` with
        ``learner=False``).  Required when ``workers >= 1``.
    sync_every:
        Episodes per round; each round's episodes are generated against
        the policy snapshot published at the round start, so this bounds
        policy staleness (in episodes) and is part of the schedule
        identity -- changing it changes the learning curve.
    learn_every / seed_offset:
        Same meaning as in :func:`~repro.decision.trainer.train_agent`.
    root_seed:
        Root of the per-episode exploration streams (default:
        ``seed_offset``).  Part of the schedule identity.
    checkpoint_dir / checkpoint_every / resume / max_nan_rollbacks:
        As in the serial loop; checkpoints land on round boundaries (the
        first boundary at or past the cadence), so ``checkpoint_every``
        is a lower bound in episodes.
    """
    if workers < 0:
        raise ValueError("workers must be >= 0")
    if sync_every < 1:
        raise ValueError("sync_every must be >= 1")
    if learn_every < 1:
        raise ValueError("learn_every must be >= 1")
    if workers >= 1 and agent_factory is None:
        raise ValueError("agent_factory is required when workers >= 1")
    if root_seed is None:
        root_seed = seed_offset

    schedule = {"root_seed": int(root_seed), "sync_every": int(sync_every),
                "learn_every": int(learn_every),
                "seed_offset": int(seed_offset)}
    modules = policy_modules(agent)
    options = WorkerOptions(
        root_seed=root_seed, seed_offset=seed_offset,
        max_episode_steps=max_episode_steps, epsilon=agent.epsilon,
        noise_scale=agent.noise_scale,
        flat_size=sum(module.num_parameters() for module in modules),
        parent_pid=multiprocessing.current_process().pid or 0)

    log = RLTrainingLog()
    digest = "seed"
    ckpt_path: Path | None = None
    if checkpoint_dir is not None:
        ckpt_path = Path(checkpoint_dir) / CHECKPOINT_NAME
    episode = 0
    base_wall = 0.0
    last_saved = 0
    if ckpt_path is not None and resume and ckpt_path.exists():
        episode, base_wall, digest = _restore_parallel(ckpt_path, agent, log,
                                                       schedule)
        log.resumed_episodes = episode
        last_saved = episode
    start = time.perf_counter()

    pool: _WorkerPool | None = None
    inline: _InlineActors | None = None
    if workers >= 1:
        pool = _WorkerPool(workers, agent, env_factory, agent_factory,
                           options)
    else:
        inline = _InlineActors(agent, env_factory, options, action_filter)
    generation = 0
    reorder = ReorderBuffer(episode)

    try:
        while episode < episodes:
            round_end = min(episode + sync_every, episodes)
            tasks = [EpisodeTask(generation=generation, episode=e,
                                 clock_base=agent.total_steps,
                                 version=0, rollbacks=log.nan_rollbacks)
                     for e in range(episode, round_end)]
            if pool is not None:
                version = pool.policy.publish(modules)
                tasks = [EpisodeTask(generation=t.generation,
                                     episode=t.episode,
                                     clock_base=t.clock_base,
                                     version=version,
                                     rollbacks=t.rollbacks) for t in tasks]
                pool.dispatch(tasks)
            else:
                for result in inline.generate(tasks):
                    reorder.put(result)

            diverged = False
            while episode < round_end:
                result = reorder.take()
                if result is None:
                    reorder.put(pool.next_result(generation))
                    continue
                digest, diverged = _consume_episode(
                    agent, result.batch(), result.diverged, learn_every,
                    digest)
                if diverged:
                    break
                log.episode_rewards.append(
                    result.reward_sum / max(result.steps, 1))
                log.episode_steps.append(result.steps)
                if result.collided:
                    log.collisions += 1
                episode += 1

            if diverged:
                log.nan_rollbacks += 1
                if (ckpt_path is None or not ckpt_path.exists()
                        or log.nan_rollbacks > max_nan_rollbacks):
                    raise NaNLossError(
                        f"non-finite loss/reward in episode {episode} "
                        f"(rollbacks used: {log.nan_rollbacks - 1})")
                rollbacks = log.nan_rollbacks
                episode, base_wall, digest = _restore_parallel(
                    ckpt_path, agent, log, schedule)
                # the restored counter predates the divergence; carry the
                # live count so the retry's exploration streams (keyed on
                # it) actually explore differently
                log.nan_rollbacks = rollbacks
                agent.rng.random(log.nan_rollbacks)
                generation += 1
                reorder.reset(episode)
                start = time.perf_counter()
                continue

            if (ckpt_path is not None and checkpoint_every > 0
                    and episode - last_saved >= checkpoint_every):
                wall = base_wall + (time.perf_counter() - start)
                save_checkpoint(ckpt_path, agent,
                                extra=_parallel_extra(log, episode, wall,
                                                      schedule, digest))
                last_saved = episode
    finally:
        if pool is not None:
            pool.shutdown()

    log.wall_time = base_wall + (time.perf_counter() - start)
    log.transition_digest = digest
    return log

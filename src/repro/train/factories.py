"""Picklable environment/agent builders for multi-process training.

Worker processes are started with the ``spawn`` method (the only start
method whose children cannot silently inherit live RNG streams, open
tapes, or half-initialized locks from the parent), so everything a
worker needs must be *reconstructed* on the other side of a pickle
boundary.  These factories close over nothing but a frozen
:class:`~repro.core.config.HEADConfig` and plain numpy arrays, which is
exactly what ``functools.partial`` + pickle can ship.

The perception module is frozen during decision training, so a trained
predictor travels as its ``state_dict`` (a ``name -> ndarray`` mapping)
rather than as a live module; each worker rebuilds the network from the
config and loads the weights.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..core.config import HEADConfig
from ..decision.agents import PDQNAgent
from ..decision.environment import DrivingEnv
from ..seeding import default_generator

__all__ = ["build_env", "build_agent", "predictor_state"]


def predictor_state(head) -> dict[str, np.ndarray] | None:
    """The predictor weights of a HEAD instance as a picklable mapping."""
    if head.predictor is None:
        return None
    return head.predictor.state_dict()


def build_env(config: HEADConfig,
              predictor: dict[str, np.ndarray] | None = None,
              max_steps: int | None = None) -> DrivingEnv:
    """Reconstruct the training environment described by ``config``.

    ``predictor`` is a ``state_dict`` of LST-GAT weights (from
    :func:`predictor_state`); ``None`` with ``config.use_prediction``
    keeps the deterministic fresh-init weights, which is what an
    untrained pipeline uses anyway.  The construction-time generator is
    fixed: environment stochasticity comes entirely from the per-episode
    ``reset(seed)``, never from construction.
    """
    from ..core.head import HEAD  # deferred: core imports this package

    head = HEAD(config, rng=default_generator(0))
    if predictor is not None:
        if head.predictor is None:
            raise ValueError("predictor weights supplied but "
                             "config.use_prediction is off")
        head.predictor.load_state_dict(predictor)
    return head.make_env(max_steps)


def build_agent(config: HEADConfig, learner: bool = True) -> PDQNAgent:
    """Reconstruct the decision agent described by ``config``.

    Actor copies (``learner=False``) get a one-slot replay buffer: a
    worker only *generates* transitions -- storage and sampling happen
    on the learner -- so replicating a 20k-transition buffer per worker
    would waste memory on arrays that are never read.  Weight values do
    not matter either (the learner broadcast overwrites them before the
    first episode); only the architecture must match.
    """
    if not learner:
        config = replace(config, replay_capacity=1)
    return PDQNAgent(
        branched=config.branched_networks,
        hidden_dim=config.hidden_dim,
        gamma=config.gamma,
        batch_size=config.batch_size,
        buffer_capacity=config.replay_capacity,
        tau=config.tau,
        rng=default_generator(0),
    )

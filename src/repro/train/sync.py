"""Zero-copy policy broadcast between the learner and actor workers.

The learner publishes its policy networks as one flat ``float64``
vector in a shared-memory block (``multiprocessing.RawArray``); workers
map the same pages and copy the vector into their local module
parameters when the version counter moves.  Publishing is a single
in-place :func:`~repro.nn.serialization.write_flat_parameters` sweep --
no pickling, no queue traffic, no per-sync allocation -- which is what
keeps the sync interval a staleness knob rather than a throughput tax.

A plain ``Lock`` guards the (vector, version) pair so a reader can
never observe a torn write.  Contention is negligible: the learner
writes once per round, each worker reads at most once per episode.
"""

from __future__ import annotations

import numpy as np

from ..nn.module import Module
from ..nn.serialization import (flat_parameter_size, read_flat_parameters,
                                write_flat_parameters)

__all__ = ["SharedPolicy", "policy_modules"]


def policy_modules(agent) -> list[Module]:
    """The broadcastable network modules of an agent, in a canonical order.

    Sorted attribute-name order, the same convention the checkpoint
    introspection uses -- learner and factory-built actors hold the same
    attribute names, so both sides agree on the flat layout without
    exchanging any metadata.
    """
    return [getattr(agent, name) for name in sorted(vars(agent))
            if isinstance(getattr(agent, name), Module)]


class SharedPolicy:
    """A versioned flat parameter vector in shared memory.

    Built from a ``multiprocessing`` *context* so the synchronization
    primitives match the start method in use; the object itself is
    picklable through ``Process(args=...)`` (the shared segments are
    inherited by handle, not copied).
    """

    def __init__(self, ctx, size: int) -> None:
        self.size = size
        self._block = ctx.RawArray("d", size)
        self._version = ctx.Value("q", 0, lock=False)
        self._lock = ctx.Lock()

    def _vector(self) -> np.ndarray:
        return np.frombuffer(self._block, dtype=np.float64)

    def publish(self, modules: list[Module]) -> int:
        """Write the modules' parameters and bump the version; returns it."""
        with self._lock:
            write_flat_parameters(modules, self._vector())
            self._version.value += 1
            return int(self._version.value)

    def refresh(self, modules: list[Module], held_version: int) -> int:
        """Load the latest vector into ``modules`` if it moved; returns
        the version now held."""
        with self._lock:
            current = int(self._version.value)
            if current != held_version:
                read_flat_parameters(modules, self._vector())
            return current

    @property
    def version(self) -> int:
        with self._lock:
            return int(self._version.value)

    @staticmethod
    def for_agent(ctx, agent) -> "SharedPolicy":
        return SharedPolicy(ctx, flat_parameter_size(policy_modules(agent)))

"""Onboard sensor model: limited detection range and occlusion shadows.

The paper simulates sensor limitations geometrically inside SUMO
(Section V-A): a LiDAR-like sensor with detection radius R = 100 m that
cannot see through other vehicles.  This module reproduces that model
on plan-view geometry: each vehicle is a rectangle (length x width) in
the (lon, lateral-meters) plane, and a target is visible iff it is
within range and the sight line from the ego center to the target
center does not pass through any other vehicle's rectangle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim import constants
from ..sim.road import Road
from ..sim.vehicle import VehicleState

__all__ = ["Sensor", "WorldArrays", "segment_intersects_rectangle",
           "clamp_measurement"]

#: Plan-view vehicle width (m) used for occlusion shadows.
VEHICLE_WIDTH = 2.0


def clamp_measurement(state: VehicleState, road: Road,
                      max_speed: float = constants.V_MAX) -> VehicleState:
    """Clamp a (possibly noisy) measurement into the physical envelope.

    Measurement noise must never report a state the simulator itself
    forbids: speeds are non-negative and bounded by the road's physical
    maximum, longitudinal positions stay within one vehicle length of
    the road segment, and lanes stay within the road (the boundary
    lanes 0 and ``num_lanes + 1`` are admitted because phantom
    construction legitimately places moving-boundary vehicles there).
    """
    lat = min(max(state.lat, 0), road.num_lanes + 1)
    lon = min(max(state.lon, -constants.VEHICLE_LENGTH),
              road.length + constants.VEHICLE_LENGTH)
    v = min(max(state.v, 0.0), max_speed)
    if lat == state.lat and lon == state.lon and v == state.v:
        return state
    return VehicleState(lat=lat, lon=lon, v=v)


def _lateral_meters(state: VehicleState, road: Road) -> float:
    """Lane-center lateral coordinate in meters."""
    return state.lat * road.lane_width


class WorldArrays:
    """Pre-gathered plan-view coordinate arrays of one world snapshot.

    The sensor's O(N) gather over the world dict is identical for every
    ego observing the same snapshot, so a fleet builds this once per
    step and hands it to each AV's :meth:`Sensor.observe` -- the per-AV
    cost then no longer includes the gather.  Rows follow ``world``
    iteration order and include every vehicle (each ego drops its own
    row at query time).
    """

    __slots__ = ("ids", "position", "lon", "lat_m")

    def __init__(self, world: dict[str, VehicleState], road: Road) -> None:
        self.ids = list(world)
        self.position = {vid: row for row, vid in enumerate(self.ids)}
        count = len(self.ids)
        self.lon = np.fromiter((state.lon for state in world.values()),
                               dtype=np.float64, count=count)
        self.lat_m = np.fromiter((state.lat for state in world.values()),
                                 dtype=np.float64, count=count) * road.lane_width


def segment_intersects_rectangle(p0: tuple[float, float], p1: tuple[float, float],
                                 center: tuple[float, float],
                                 half_x: float, half_y: float) -> bool:
    """Return True when segment p0-p1 crosses an axis-aligned rectangle.

    Uses the slab (Liang-Barsky) clipping test.  Touching only the
    boundary counts as intersecting, which errs on the side of marking
    targets occluded -- the conservative choice for a safety system.
    """
    x0, y0 = p0
    x1, y1 = p1
    dx, dy = x1 - x0, y1 - y0
    t_min, t_max = 0.0, 1.0
    for delta, origin, lo, hi in (
        (dx, x0, center[0] - half_x, center[0] + half_x),
        (dy, y0, center[1] - half_y, center[1] + half_y),
    ):
        if abs(delta) < 1e-12:
            if origin < lo or origin > hi:
                return False
            continue
        t_enter = (lo - origin) / delta
        t_exit = (hi - origin) / delta
        if t_enter > t_exit:
            t_enter, t_exit = t_exit, t_enter
        t_min = max(t_min, t_enter)
        t_max = min(t_max, t_exit)
        if t_min > t_max:
            return False
    return True


@dataclass
class Sensor:
    """Range- and occlusion-limited sensor mounted on the ego vehicle.

    Parameters
    ----------
    detection_range:
        Radius R in meters (paper: 100 m).
    vehicle_length / vehicle_width:
        Obstacle footprint for occlusion shadows.
    position_noise / velocity_noise:
        Std. dev. of zero-mean Gaussian measurement noise on detected
        longitudinal positions (m) and speeds (m/s).  Real detections
        (and the NGSIM recordings the paper trains on) are noisy;
        defaults are noise-free for deterministic unit tests.
    seed:
        Seeds the measurement-noise stream.
    """

    detection_range: float = constants.SENSOR_RANGE
    vehicle_length: float = constants.VEHICLE_LENGTH
    vehicle_width: float = VEHICLE_WIDTH
    position_noise: float = 0.0
    velocity_noise: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        from ..seeding import default_generator

        self._noise_rng = default_generator(self.seed)

    def in_range(self, ego: VehicleState, target: VehicleState, road: Road) -> bool:
        """Euclidean range test in the plan view."""
        dx = target.lon - ego.lon
        dy = _lateral_meters(target, road) - _lateral_meters(ego, road)
        return dx * dx + dy * dy <= self.detection_range ** 2

    def is_occluded(self, ego: VehicleState, target: VehicleState,
                    obstacles: dict[str, VehicleState], road: Road,
                    target_id: str | None = None) -> bool:
        """True when any obstacle blocks the ego-to-target sight line."""
        # Sight line runs between geometric centers (lon is the front
        # bumper, so the center sits half a length behind it).
        half_len = self.vehicle_length / 2.0
        p0 = (ego.lon - half_len, _lateral_meters(ego, road))
        p1 = (target.lon - half_len, _lateral_meters(target, road))
        for vid, state in obstacles.items():
            if target_id is not None and vid == target_id:
                continue
            center = (state.lon - half_len, _lateral_meters(state, road))
            if abs(center[0] - p0[0]) < 1e-9 and abs(center[1] - p0[1]) < 1e-9:
                continue  # the ego itself
            if segment_intersects_rectangle(p0, p1, center,
                                            half_len, self.vehicle_width / 2.0):
                return True
        return False

    def observe(self, ego_id: str, ego: VehicleState,
                world: dict[str, VehicleState], road: Road,
                arrays: WorldArrays | None = None) -> dict[str, VehicleState]:
        """Return the states of all vehicles this sensor can currently see.

        ``world`` holds ground-truth states keyed by id (the simulator's
        omniscient view); the result contains only in-range, unoccluded
        vehicles, excluding the ego itself.  ``arrays`` optionally
        supplies the pre-gathered :class:`WorldArrays` of the same
        snapshot (fleet sharing); the result is identical either way.

        The range and occlusion tests run as one vectorized pairwise
        slab pass over all candidates; every arithmetic step mirrors
        :meth:`in_range` / :func:`segment_intersects_rectangle` exactly,
        so the visible set is bit-identical to the per-pair scalar loop
        (pinned by ``tests/perception/test_sensor_kernel.py``).
        """
        ego_row = None
        if arrays is None:
            ids = [vid for vid in world if vid != ego_id]
            if not ids:
                return {}
            lon = np.fromiter((world[vid].lon for vid in ids), dtype=np.float64,
                              count=len(ids))
            lat_m = np.fromiter((world[vid].lat for vid in ids), dtype=np.float64,
                                count=len(ids)) * road.lane_width
        else:
            ids = arrays.ids
            lon = arrays.lon
            lat_m = arrays.lat_m
            ego_row = arrays.position.get(ego_id)
        ego_y = ego.lat * road.lane_width
        range_dx = lon - ego.lon
        range_dy = lat_m - ego_y
        in_range = (range_dx * range_dx + range_dy * range_dy
                    <= self.detection_range ** 2)
        keep = np.flatnonzero(in_range)
        if ego_row is not None:
            keep = keep[keep != ego_row]
        if keep.size == 0:
            return {}
        candidates = [ids[index] for index in keep]

        # Occlusion: sight lines run between geometric centers (lon is
        # the front bumper, so centers sit half a length behind it).
        # Rows index sight-line targets, columns index obstacles; each
        # axis of the slab test contributes a clipped parameter window
        # [t_enter, t_exit], except that a degenerate axis (segment
        # parallel to the slab) instead requires the segment origin
        # inside the slab and leaves the window at the neutral [0, 1].
        half_len = self.vehicle_length / 2.0
        half_wid = self.vehicle_width / 2.0
        x0 = ego.lon - half_len
        cx = lon[keep] - half_len          # obstacle/target center x
        cy = lat_m[keep]                   # obstacle/target center y
        dx = cx - x0                       # per-target segment deltas
        dy = cy - ego_y

        def axis_window(delta, origin, lo, hi):
            live = ~(np.abs(delta) < 1e-12)
            with np.errstate(divide="ignore", invalid="ignore"):
                t_a = (lo[None, :] - origin) / delta[:, None]
                t_b = (hi[None, :] - origin) / delta[:, None]
            enter = np.where(live[:, None],
                             np.maximum(np.minimum(t_a, t_b), 0.0), 0.0)
            exit_ = np.where(live[:, None],
                             np.minimum(np.maximum(t_a, t_b), 1.0), 1.0)
            origin_ok = np.broadcast_to((origin >= lo) & (origin <= hi),
                                        t_a.shape)
            return enter, exit_, np.where(live[:, None], True, origin_ok)

        enter_x, exit_x, ok_x = axis_window(dx, x0, cx - half_len, cx + half_len)
        enter_y, exit_y, ok_y = axis_window(dy, ego_y, cy - half_wid, cy + half_wid)
        hit = (ok_x & ok_y
               & (np.maximum(enter_x, enter_y) <= np.minimum(exit_x, exit_y)))
        # Never occluded by itself, nor by an obstacle sitting exactly
        # at the ego center (the ego's own footprint).
        np.fill_diagonal(hit, False)
        ego_like = (np.abs(cx - x0) < 1e-9) & (np.abs(cy - ego_y) < 1e-9)
        hit[:, ego_like] = False
        occluded = hit.any(axis=1)

        return {vid: self._measure(world[vid], road)
                for vid, blocked in zip(candidates, occluded) if not blocked}

    def _measure(self, state: VehicleState, road: Road) -> VehicleState:
        """Apply measurement noise to a detected state, envelope-clamped."""
        if self.position_noise == 0.0 and self.velocity_noise == 0.0:
            return state
        noisy = VehicleState(
            lat=state.lat,
            lon=state.lon + float(self._noise_rng.normal(0.0, self.position_noise)),
            v=state.v + float(self._noise_rng.normal(0.0, self.velocity_noise)),
        )
        return clamp_measurement(noisy, road)

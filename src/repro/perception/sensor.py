"""Onboard sensor model: limited detection range and occlusion shadows.

The paper simulates sensor limitations geometrically inside SUMO
(Section V-A): a LiDAR-like sensor with detection radius R = 100 m that
cannot see through other vehicles.  This module reproduces that model
on plan-view geometry: each vehicle is a rectangle (length x width) in
the (lon, lateral-meters) plane, and a target is visible iff it is
within range and the sight line from the ego center to the target
center does not pass through any other vehicle's rectangle.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import constants
from ..sim.road import Road
from ..sim.vehicle import VehicleState

__all__ = ["Sensor", "segment_intersects_rectangle", "clamp_measurement"]

#: Plan-view vehicle width (m) used for occlusion shadows.
VEHICLE_WIDTH = 2.0


def clamp_measurement(state: VehicleState, road: Road,
                      max_speed: float = constants.V_MAX) -> VehicleState:
    """Clamp a (possibly noisy) measurement into the physical envelope.

    Measurement noise must never report a state the simulator itself
    forbids: speeds are non-negative and bounded by the road's physical
    maximum, longitudinal positions stay within one vehicle length of
    the road segment, and lanes stay within the road (the boundary
    lanes 0 and ``num_lanes + 1`` are admitted because phantom
    construction legitimately places moving-boundary vehicles there).
    """
    lat = min(max(state.lat, 0), road.num_lanes + 1)
    lon = min(max(state.lon, -constants.VEHICLE_LENGTH),
              road.length + constants.VEHICLE_LENGTH)
    v = min(max(state.v, 0.0), max_speed)
    if lat == state.lat and lon == state.lon and v == state.v:
        return state
    return VehicleState(lat=lat, lon=lon, v=v)


def _lateral_meters(state: VehicleState, road: Road) -> float:
    """Lane-center lateral coordinate in meters."""
    return state.lat * road.lane_width


def segment_intersects_rectangle(p0: tuple[float, float], p1: tuple[float, float],
                                 center: tuple[float, float],
                                 half_x: float, half_y: float) -> bool:
    """Return True when segment p0-p1 crosses an axis-aligned rectangle.

    Uses the slab (Liang-Barsky) clipping test.  Touching only the
    boundary counts as intersecting, which errs on the side of marking
    targets occluded -- the conservative choice for a safety system.
    """
    x0, y0 = p0
    x1, y1 = p1
    dx, dy = x1 - x0, y1 - y0
    t_min, t_max = 0.0, 1.0
    for delta, origin, lo, hi in (
        (dx, x0, center[0] - half_x, center[0] + half_x),
        (dy, y0, center[1] - half_y, center[1] + half_y),
    ):
        if abs(delta) < 1e-12:
            if origin < lo or origin > hi:
                return False
            continue
        t_enter = (lo - origin) / delta
        t_exit = (hi - origin) / delta
        if t_enter > t_exit:
            t_enter, t_exit = t_exit, t_enter
        t_min = max(t_min, t_enter)
        t_max = min(t_max, t_exit)
        if t_min > t_max:
            return False
    return True


@dataclass
class Sensor:
    """Range- and occlusion-limited sensor mounted on the ego vehicle.

    Parameters
    ----------
    detection_range:
        Radius R in meters (paper: 100 m).
    vehicle_length / vehicle_width:
        Obstacle footprint for occlusion shadows.
    position_noise / velocity_noise:
        Std. dev. of zero-mean Gaussian measurement noise on detected
        longitudinal positions (m) and speeds (m/s).  Real detections
        (and the NGSIM recordings the paper trains on) are noisy;
        defaults are noise-free for deterministic unit tests.
    seed:
        Seeds the measurement-noise stream.
    """

    detection_range: float = constants.SENSOR_RANGE
    vehicle_length: float = constants.VEHICLE_LENGTH
    vehicle_width: float = VEHICLE_WIDTH
    position_noise: float = 0.0
    velocity_noise: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        from ..seeding import default_generator

        self._noise_rng = default_generator(self.seed)

    def in_range(self, ego: VehicleState, target: VehicleState, road: Road) -> bool:
        """Euclidean range test in the plan view."""
        dx = target.lon - ego.lon
        dy = _lateral_meters(target, road) - _lateral_meters(ego, road)
        return dx * dx + dy * dy <= self.detection_range ** 2

    def is_occluded(self, ego: VehicleState, target: VehicleState,
                    obstacles: dict[str, VehicleState], road: Road,
                    target_id: str | None = None) -> bool:
        """True when any obstacle blocks the ego-to-target sight line."""
        # Sight line runs between geometric centers (lon is the front
        # bumper, so the center sits half a length behind it).
        half_len = self.vehicle_length / 2.0
        p0 = (ego.lon - half_len, _lateral_meters(ego, road))
        p1 = (target.lon - half_len, _lateral_meters(target, road))
        for vid, state in obstacles.items():
            if target_id is not None and vid == target_id:
                continue
            center = (state.lon - half_len, _lateral_meters(state, road))
            if abs(center[0] - p0[0]) < 1e-9 and abs(center[1] - p0[1]) < 1e-9:
                continue  # the ego itself
            if segment_intersects_rectangle(p0, p1, center,
                                            half_len, self.vehicle_width / 2.0):
                return True
        return False

    def observe(self, ego_id: str, ego: VehicleState,
                world: dict[str, VehicleState], road: Road) -> dict[str, VehicleState]:
        """Return the states of all vehicles this sensor can currently see.

        ``world`` holds ground-truth states keyed by id (the simulator's
        omniscient view); the result contains only in-range, unoccluded
        vehicles, excluding the ego itself.
        """
        candidates = {vid: state for vid, state in world.items()
                      if vid != ego_id and self.in_range(ego, state, road)}
        observed: dict[str, VehicleState] = {}
        for vid, state in candidates.items():
            if not self.is_occluded(ego, state, candidates, road, target_id=vid):
                observed[vid] = self._measure(state, road)
        return observed

    def _measure(self, state: VehicleState, road: Road) -> VehicleState:
        """Apply measurement noise to a detected state, envelope-clamped."""
        if self.position_noise == 0.0 and self.velocity_noise == 0.0:
            return state
        noisy = VehicleState(
            lat=state.lat,
            lon=state.lon + float(self._noise_rng.normal(0.0, self.position_noise)),
            v=state.v + float(self._noise_rng.normal(0.0, self.velocity_noise)),
        )
        return clamp_measurement(noisy, road)

"""Multi-step trajectory prediction by recursive one-step rollout.

The paper's Section III-A(2) argues for one-step prediction because
multi-step accuracy decays with horizon: "the sequential decoding
schema will accumulate errors over time".  This module makes that
argument measurable: it rolls any one-step :class:`StatePredictor`
forward recursively -- feeding its own predictions back as the newest
history step -- and reports per-horizon errors, powering the error-growth
ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.trajectories import TrajectorySet
from ..sim import constants
from .dataset import PredictionSample, _relative_future
from .graph import (EGO_SCALE, OUTPUT_SCALE, RELATIVE_SCALE,
                    SpatialTemporalGraph)
from .predictor import StatePredictor

__all__ = ["rollout", "HorizonErrors", "horizon_errors"]


def rollout(model: StatePredictor, graph: SpatialTemporalGraph,
            horizon: int) -> np.ndarray:
    """Predict ``horizon`` future steps by feeding predictions back.

    Returns ``(horizon, n_targets, 3)`` physical-unit relative states,
    each expressed relative to the ego at the *initial* time step (the
    ego is extrapolated at constant velocity, the standard assumption
    for open-loop rollouts).

    The rollout shifts the history window: the oldest step drops, the
    prediction becomes the newest.  Contributor features are advanced
    with the same constant-velocity assumption -- the information decay
    this causes is precisely the error accumulation the paper describes.
    """
    if horizon < 1:
        raise ValueError("horizon must be at least 1")
    current = SpatialTemporalGraph(
        graph.target_features.copy(), graph.contributor_features.copy(),
        graph.target_mask.copy(), graph.ego_features.copy())
    outputs = []
    ego_travel = np.zeros(3)  # cumulative ego displacement since the start
    for _ in range(horizon):
        predicted = model.predict(current)  # relative to the ego at this window's t
        # Convert to the initial-ego frame: a target at fixed relative
        # position w.r.t. a moving ego is further ahead of where the ego
        # started, by the ego's cumulative travel.
        outputs.append(predicted + ego_travel)
        current, step_shift = _advance(current, predicted)
        ego_travel = ego_travel - step_shift  # step_shift is -v_ego*dt
    return np.stack(outputs)


def _advance(graph: SpatialTemporalGraph,
             predicted: np.ndarray) -> tuple[SpatialTemporalGraph, np.ndarray]:
    """Shift the window one step using the model's own prediction."""
    dt = constants.DT
    targets = np.roll(graph.target_features, -1, axis=0)
    scaled = predicted / OUTPUT_SCALE
    # Keep the IF indicator from the previous newest step.
    targets[-1, :, :3] = scaled
    targets[-1, :, 3] = graph.target_features[-1, :, 3]

    # Ego advances at constant velocity; relative features must shift by
    # the ego's own displacement (they are ego-relative).
    ego = np.roll(graph.ego_features, -1, axis=0)
    v_ego = graph.ego_features[-1, :, 2] * EGO_SCALE[2]
    ego[-1] = graph.ego_features[-1]
    ego[-1, :, 1] += v_ego * dt / EGO_SCALE[1]
    shift = np.zeros(3)
    shift[1] = -float(v_ego[0]) * dt  # targets fall behind a moving ego

    targets[-1, :, 1] += shift[1] / RELATIVE_SCALE[1]

    contributors = np.roll(graph.contributor_features, -1, axis=0)
    previous = graph.contributor_features[-1]
    advanced = previous.copy()
    # Constant velocity for every contributor: d_lon += (v_rel)*dt.
    advanced[:, :, 1] += previous[:, :, 2] * RELATIVE_SCALE[2] * dt / RELATIVE_SCALE[1]
    contributors[-1] = advanced
    contributors[-1, :, 0, :] = targets[-1]  # self-loop mirrors the target

    return SpatialTemporalGraph(targets, contributors, graph.target_mask.copy(), ego), shift


@dataclass(frozen=True)
class HorizonErrors:
    """Mean displacement error per prediction horizon step."""

    horizons: list[int]
    displacement: list[float]  # mean longitudinal+lateral error (m)
    velocity: list[float]      # mean |v| error (m/s)


def horizon_errors(model: StatePredictor, trajectories: TrajectorySet,
                   samples: list[PredictionSample],
                   horizon: int = 5) -> HorizonErrors:
    """Open-loop rollout errors against recorded ground truth.

    ``samples`` must carry provenance metadata (ego_id, step,
    target_ids), as produced by
    :func:`repro.perception.dataset.build_samples`.
    """
    road = trajectories.road
    per_horizon_disp: dict[int, list[float]] = {h: [] for h in range(1, horizon + 1)}
    per_horizon_vel: dict[int, list[float]] = {h: [] for h in range(1, horizon + 1)}
    for sample in samples:
        step, ego_id, target_ids = sample.step, sample.ego_id, sample.target_ids
        if step is None or ego_id is None or target_ids is None:
            continue
        if step + horizon >= len(trajectories):
            continue
        predictions = rollout(model, sample.graph, horizon)
        ego_state = trajectories.snapshots[step][ego_id]
        mask = sample.graph.target_mask.astype(bool)
        for h in range(1, horizon + 1):
            snapshot = trajectories.snapshots[step + h]
            for index, vid in enumerate(target_ids):
                if not mask[index] or vid is None or vid not in snapshot:
                    continue
                truth = _relative_future(snapshot[vid], ego_state, road) * OUTPUT_SCALE
                error = predictions[h - 1, index] - truth
                per_horizon_disp[h].append(float(np.hypot(error[0], error[1])))
                per_horizon_vel[h].append(abs(float(error[2])))
    horizons = [h for h in range(1, horizon + 1) if per_horizon_disp[h]]
    return HorizonErrors(
        horizons=horizons,
        displacement=[float(np.mean(per_horizon_disp[h])) for h in horizons],
        velocity=[float(np.mean(per_horizon_vel[h])) for h in horizons],
    )

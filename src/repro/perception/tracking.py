"""Observation tracking: per-vehicle history buffers fed by the sensor.

The predictor needs the last ``z`` observed states of every currently
visible vehicle.  Vehicles enter and leave the field of view, so the
buffer pads short tracks by repeating their earliest observation (a
sensor that just acquired a track knows nothing older) and prunes
tracks that have been invisible for longer than the history window.
"""

from __future__ import annotations

from collections import deque

from ..sim import constants
from ..sim.vehicle import VehicleState

__all__ = ["ObservationBuffer"]


class ObservationBuffer:
    """Rolling per-vehicle observation store.

    Parameters
    ----------
    history_steps:
        Window length z (paper: 5).
    max_gap:
        How many consecutive unobserved steps a track survives before
        being dropped.
    """

    def __init__(self, history_steps: int = constants.HISTORY_STEPS, max_gap: int = 2) -> None:
        if history_steps < 1:
            raise ValueError("history window must contain at least one step")
        self.history_steps = history_steps
        self.max_gap = max_gap
        self._tracks: dict[str, deque[VehicleState]] = {}
        self._last_seen: dict[str, int] = {}
        self._step = -1

    def update(self, observed: dict[str, VehicleState]) -> None:
        """Ingest one sensor frame; advances the internal step counter."""
        self._step += 1
        for vid, state in observed.items():
            track = self._tracks.setdefault(vid, deque(maxlen=self.history_steps))
            track.append(state)
            self._last_seen[vid] = self._step
        stale = [vid for vid, seen in self._last_seen.items()
                 if self._step - seen > self.max_gap]
        for vid in stale:
            del self._tracks[vid]
            del self._last_seen[vid]

    def history(self, vid: str) -> list[VehicleState]:
        """Last z states of ``vid`` (oldest first), front-padded by repetition."""
        track = list(self._tracks[vid])
        if len(track) < self.history_steps:
            track = [track[0]] * (self.history_steps - len(track)) + track
        return track

    def current(self, vid: str) -> VehicleState:
        """Most recent state of ``vid`` (identical to ``history(vid)[-1]``
        without materializing the padded list)."""
        return self._tracks[vid][-1]

    def tracked_ids(self) -> list[str]:
        """Ids with a live track, sorted."""
        return sorted(self._tracks)

    def current_ids(self) -> list[str]:
        """Ids observed in the most recent frame, sorted.

        Stale tracks (kept briefly for re-acquisition) are excluded:
        their last state is up to ``max_gap`` steps old, so they must
        not be treated as current observations.
        """
        return sorted(vid for vid, seen in self._last_seen.items()
                      if seen == self._step)

    def __contains__(self, vid: str) -> bool:
        return vid in self._tracks

    def reset(self) -> None:
        """Drop all tracks (start of a new episode)."""
        self._tracks.clear()
        self._last_seen.clear()
        self._step = -1

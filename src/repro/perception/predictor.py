"""Common interface for one-step state predictors.

LST-GAT and the compared methods (LSTM-MLP, ED-LSTM, GAS-LED) all map a
spatial-temporal graph to the predicted ``(n_targets, 3)`` relative
future states, train with the Eq. 14 masked MSE, and support both
batched (parallel) and per-target (sequential) inference.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from .graph import SpatialTemporalGraph

__all__ = ["StatePredictor", "OUTPUT_DIM"]

#: Predicted quantities per target: [d_lat, d_lon, v_rel].
OUTPUT_DIM = 3


class StatePredictor(nn.Module):
    """Interface: predict ``(n_targets, 3)`` future relative states.

    All predictors regress the *residual* against a constant-velocity
    kinematic baseline (:meth:`kinematic_baseline`): the deterministic
    part of the one-step transition (Eq. 18 with zero acceleration) is
    computed in closed form, and the network only learns deviations --
    accelerations and lane changes, i.e. exactly the behaviour that
    depends on vehicle interactions.  This residual parameterization is
    applied identically to LST-GAT and every compared method.
    """

    def forward_graph(self, graph: SpatialTemporalGraph) -> nn.Tensor:
        """Raw network output (the residual), shape ``(n_targets, 3)``."""
        raise NotImplementedError

    @staticmethod
    def kinematic_baseline(graph: SpatialTemporalGraph) -> np.ndarray:
        """Constant-velocity extrapolation in the scaled label space.

        ``d_lat`` and ``v_rel`` persist; ``d_lon`` advances by the
        target's absolute speed ``v_rel + v_ego`` over one step.
        """
        from ..sim import constants
        from .graph import EGO_SCALE, OUTPUT_SCALE, RELATIVE_SCALE

        current = graph.target_features[-1, :, :3]
        v_rel = current[:, 2] * RELATIVE_SCALE[2]
        v_ego = graph.ego_features[-1, :, 2] * EGO_SCALE[2]
        baseline = current * RELATIVE_SCALE[:3]
        baseline[:, 1] += (v_rel + v_ego) * constants.DT
        return baseline / OUTPUT_SCALE

    def _prediction(self, graph: SpatialTemporalGraph) -> nn.Tensor:
        # The baseline is a pure function of the graph arrays, so it is
        # memoized on the graph instance: training loops evaluate the
        # same graph many times (loss + diagnostics) and the closed-form
        # extrapolation never changes between those calls.
        baseline = getattr(graph, "_baseline_cache", None)
        if baseline is None:
            baseline = self.kinematic_baseline(graph)
            graph._baseline_cache = baseline
        return self.forward_graph(graph) + nn.Tensor(baseline)

    def loss(self, graph: SpatialTemporalGraph, truth: np.ndarray) -> nn.Tensor:
        """Masked MSE (Eq. 14) shared by every predictor."""
        return nn.masked_mse_loss(self._prediction(graph), nn.Tensor(truth),
                                  graph.target_mask)

    def predict(self, graph: SpatialTemporalGraph) -> np.ndarray:
        """Batched inference over all targets at once (physical units)."""
        from .graph import OUTPUT_SCALE

        with nn.no_grad():
            return self._prediction(graph).numpy() * OUTPUT_SCALE

    def predict_many(self, graphs: list[SpatialTemporalGraph]) -> list[np.ndarray]:
        """One batched forward over many graphs (physical units).

        The graphs are collated along the target axis
        (:func:`~repro.perception.graph.concat_graphs`), pushed through
        :meth:`predict` as a single network pass, and the stacked
        ``(sum(n_i), 3)`` output is split back per graph.  This is the
        serving-path entry point: K concurrent requests cost one
        attention + LSTM forward instead of K.
        """
        from .graph import concat_graphs, split_rows

        if not graphs:
            return []
        stacked = self.predict(concat_graphs(graphs))
        return split_rows(stacked,
                          [graph.target_features.shape[1] for graph in graphs])

    def predict_normalized(self, graph: SpatialTemporalGraph) -> np.ndarray:
        """Batched inference in the scaled training space."""
        with nn.no_grad():
            return self._prediction(graph).numpy()

    def predict_each(self, graph: SpatialTemporalGraph) -> np.ndarray:
        """Sequential per-target inference (the pre-LST-GAT style), physical units."""
        from .graph import OUTPUT_SCALE

        rows = []
        with nn.no_grad():
            for index in range(graph.target_features.shape[1]):
                single = SpatialTemporalGraph(
                    graph.target_features[:, index:index + 1],
                    graph.contributor_features[:, index:index + 1],
                    graph.target_mask[index:index + 1],
                    graph.ego_features[:, index:index + 1],
                )
                rows.append(self._prediction(single).numpy()[0])
        return np.stack(rows) * OUTPUT_SCALE

    @staticmethod
    def _target_sequences(graph: SpatialTemporalGraph) -> nn.Tensor:
        """Per-target history ``(n, z, 4)`` from the graph arrays."""
        return nn.Tensor(graph.target_features.transpose(1, 0, 2))

    @staticmethod
    def _target_with_ego_sequences(graph: SpatialTemporalGraph) -> nn.Tensor:
        """Per-target history with the ego reference appended: ``(n, z, 8)``.

        Every predictor receives the ego's own states -- the task
        conditions on them and the labels are ego-relative.
        """
        stacked = np.concatenate([graph.target_features, graph.ego_features], axis=-1)
        return nn.Tensor(stacked.transpose(1, 0, 2))

"""Six-key-area neighbor selection (paper Fig. 2).

Around any center vehicle the six most influential surrounding vehicles
are the nearest ones in the front-left (1), front (2), front-right (3),
rear-left (4), rear (5) and rear-right (6) areas.  The index order
matches Eq. 4, so position ``i`` here is the paper's ``C_i``.
"""

from __future__ import annotations

from ..sim.vehicle import VehicleState

__all__ = ["AREA_COUNT", "select_neighbors", "area_of", "MIRROR_AREA"]

#: Number of key areas around a center vehicle.
AREA_COUNT = 6

#: Area index of the center seen from its own neighbor: if B occupies
#: area i around A, then A occupies area MIRROR_AREA[i] around B
#: (paper footnote 1: A = C_{1.6} = C_{2.5} = C_{3.4} = ...).
MIRROR_AREA = {1: 6, 2: 5, 3: 4, 4: 3, 5: 2, 6: 1}


def area_of(center: VehicleState, other: VehicleState) -> int | None:
    """Classify ``other`` into one of the six areas around ``center``.

    Returns 1-6, or None when the vehicle is in a non-adjacent lane or
    exactly alongside in an adjacent lane is treated by its longitudinal
    sign (ahead -> front areas, behind-or-equal -> rear areas; a vehicle
    at the same lon in the same lane is the center itself and yields
    None).
    """
    lane_delta = other.lat - center.lat
    if lane_delta not in (-1, 0, 1):
        return None
    ahead = other.lon > center.lon
    if lane_delta == -1:
        return 1 if ahead else 4
    if lane_delta == 0:
        if other.lon == center.lon:
            return None
        return 2 if ahead else 5
    return 3 if ahead else 6


def select_neighbors(center: VehicleState,
                     candidates: dict[str, VehicleState]) -> dict[int, str]:
    """Pick the nearest candidate per area around ``center``.

    Parameters
    ----------
    center:
        State of the center vehicle.
    candidates:
        Candidate states keyed by id (must not contain the center).

    Returns
    -------
    Mapping ``area -> vehicle id`` containing only occupied areas.
    """
    best: dict[int, tuple[float, str]] = {}
    for vid, state in candidates.items():
        area = area_of(center, state)
        if area is None:
            continue
        distance = abs(state.lon - center.lon)
        if area not in best or distance < best[area][0]:
            best[area] = (distance, vid)
    return {area: vid for area, (_, vid) in best.items()}

"""Six-key-area neighbor selection (paper Fig. 2).

Around any center vehicle the six most influential surrounding vehicles
are the nearest ones in the front-left (1), front (2), front-right (3),
rear-left (4), rear (5) and rear-right (6) areas.  The index order
matches Eq. 4, so position ``i`` here is the paper's ``C_i``.

:func:`select_neighbors` is the scalar per-pair reference;
:func:`select_neighbors_batch` answers the same query for M centers at
once through the :class:`~repro.sim.spatial.SpatialHash` kernel and is
bit-identical to it, including tie-breaking (first candidate in
iteration order wins an exact distance tie).
"""

from __future__ import annotations

import numpy as np

from ..sim.spatial import SpatialHash
from ..sim.vehicle import VehicleState

__all__ = ["AREA_COUNT", "select_neighbors", "select_neighbors_batch",
           "area_of", "MIRROR_AREA"]

#: Number of key areas around a center vehicle.
AREA_COUNT = 6

#: Area index of the center seen from its own neighbor: if B occupies
#: area i around A, then A occupies area MIRROR_AREA[i] around B
#: (paper footnote 1: A = C_{1.6} = C_{2.5} = C_{3.4} = ...).
MIRROR_AREA = {1: 6, 2: 5, 3: 4, 4: 3, 5: 2, 6: 1}


def area_of(center: VehicleState, other: VehicleState) -> int | None:
    """Classify ``other`` into one of the six areas around ``center``.

    Returns 1-6, or None when ``other`` is not classifiable:

    * non-adjacent lane (``|lat difference| > 1``) -> None;
    * same lane at the exact same longitude -> None (that position is
      the center itself);
    * adjacent lane: "ahead" means *strictly* greater longitude, so a
      vehicle exactly alongside (equal longitude, one lane over) falls
      in the rear area (4 on the left, 6 on the right).

    The vectorized kernel (:meth:`repro.sim.spatial.SpatialHash.
    six_area_neighbors`) implements exactly these bounds; the
    exactly-alongside case is pinned by unit tests.
    """
    lane_delta = other.lat - center.lat
    if lane_delta not in (-1, 0, 1):
        return None
    ahead = other.lon > center.lon
    if lane_delta == -1:
        return 1 if ahead else 4
    if lane_delta == 0:
        if other.lon == center.lon:
            return None
        return 2 if ahead else 5
    return 3 if ahead else 6


def select_neighbors(center: VehicleState,
                     candidates: dict[str, VehicleState]) -> dict[int, str]:
    """Pick the nearest candidate per area around ``center``.

    Parameters
    ----------
    center:
        State of the center vehicle.
    candidates:
        Candidate states keyed by id (must not contain the center).

    Returns
    -------
    Mapping ``area -> vehicle id`` containing only occupied areas.
    """
    best: dict[int, tuple[float, str]] = {}
    for vid, state in candidates.items():
        area = area_of(center, state)
        if area is None:
            continue
        distance = abs(state.lon - center.lon)
        if area not in best or distance < best[area][0]:
            best[area] = (distance, vid)
    return {area: vid for area, (_, vid) in best.items()}


def candidate_hash(candidates: dict[str, VehicleState], num_lanes: int
                   ) -> tuple[SpatialHash, list[str]]:
    """Build a :class:`SpatialHash` over a candidate dict.

    Rows follow the dict's iteration order, which is what makes the
    kernel's tie-breaking identical to :func:`select_neighbors` (stable
    lexsort keeps equal ``(lane, lon)`` rows in input order, and rear
    queries snap to the first row of an equal-longitude run).  Returns
    the hash plus the row -> vehicle-id mapping.
    """
    ids = list(candidates)
    count = len(ids)
    lane = np.empty(count, dtype=np.int64)
    lon = np.empty(count, dtype=np.float64)
    for row, vid in enumerate(ids):
        state = candidates[vid]
        lane[row] = state.lat
        lon[row] = state.lon
    return SpatialHash(lane, lon, num_lanes), ids


def select_neighbors_batch(centers: list[VehicleState],
                           candidates: dict[str, VehicleState],
                           num_lanes: int) -> list[dict[int, str]]:
    """Vectorized :func:`select_neighbors` for M centers at once.

    All centers share one candidate set (one lexsort, M batched
    searchsorted queries).  A center that itself appears in
    ``candidates`` at its exact position is excluded from its own
    result by the kernel's strict same-lane bounds -- the same outcome
    as dropping it from the dict, so per-center results match
    ``select_neighbors(center, {candidates minus that center})``
    bit for bit.
    """
    index, ids = candidate_hash(candidates, num_lanes)
    center_lane = np.fromiter((state.lat for state in centers),
                              dtype=np.int64, count=len(centers))
    center_lon = np.fromiter((state.lon for state in centers),
                             dtype=np.float64, count=len(centers))
    matrix = index.six_area_neighbors(center_lane, center_lon)
    return [{area: ids[row[area - 1]] for area in range(1, AREA_COUNT + 1)
             if row[area - 1] >= 0}
            for row in matrix]

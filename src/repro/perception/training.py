"""Training and evaluation loops for state predictors.

The paper trains LST-GAT with Adam, lr 1e-3, batch 64, 15 epochs; the
same loop drives the compared predictors so Table III/IV comparisons
are apples-to-apples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .. import nn
from .predictor import StatePredictor
from .dataset import PredictionSample, collate
from ..seeding import resolve_rng

__all__ = ["TrainingResult", "train_predictor", "evaluate_predictor", "AccuracyReport"]


@dataclass
class TrainingResult:
    """Outcome of one training run."""

    epoch_losses: list[float] = field(default_factory=list)
    wall_time: float = 0.0

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")


def train_predictor(model: StatePredictor, samples: list[PredictionSample],
                    epochs: int = 15, batch_size: int = 64, lr: float = 1e-3,
                    rng: np.random.Generator | None = None,
                    convergence_tol: float | None = None,
                    patience: int = 3) -> TrainingResult:
    """Mini-batch Adam training (paper Section V-A defaults).

    Parameters
    ----------
    convergence_tol:
        When set, training stops early once the epoch loss has improved
        by less than this fraction for ``patience`` consecutive epochs
        -- used by the Table IV/VI "training convergence time"
        measurements.
    patience:
        Consecutive below-tolerance epochs required before stopping.
    """
    if not samples:
        raise ValueError("cannot train on an empty sample list")
    rng = resolve_rng(rng)
    optimizer = nn.Adam(model.parameters(), lr=lr)
    result = TrainingResult()
    start = time.perf_counter()
    previous = None
    stall = 0
    for _ in range(epochs):
        order = rng.permutation(len(samples))
        epoch_loss = 0.0
        batches = 0
        for begin in range(0, len(order), batch_size):
            batch = [samples[index] for index in order[begin:begin + batch_size]]
            graph, truth = collate(batch)
            optimizer.zero_grad()
            loss = model.loss(graph, truth)
            loss.backward()
            nn.clip_grad_norm(model.parameters(), 5.0)
            optimizer.step()
            epoch_loss += loss.item()
            batches += 1
        epoch_loss /= max(batches, 1)
        result.epoch_losses.append(epoch_loss)
        if (convergence_tol is not None and previous is not None and previous > 0
                and abs(previous - epoch_loss) / previous < convergence_tol):
            stall += 1
            if stall >= patience:
                break
        else:
            stall = 0
        previous = epoch_loss
    result.wall_time = time.perf_counter() - start
    return result


@dataclass
class AccuracyReport:
    """Table III metrics: MAE / MSE / RMSE over unmasked target states."""

    mae: float
    mse: float
    rmse: float


def evaluate_predictor(model: StatePredictor,
                       samples: list[PredictionSample]) -> AccuracyReport:
    """MAE/MSE/RMSE of one-step predictions, in physical units (Table III)."""
    from .graph import OUTPUT_SCALE

    errors: list[np.ndarray] = []
    with nn.no_grad():
        for sample in samples:
            prediction = model.predict_normalized(sample.graph)
            mask = sample.graph.target_mask.astype(bool)
            if mask.any():
                errors.append(((prediction - sample.truth) * OUTPUT_SCALE)[mask])
    if not errors:
        raise ValueError("no unmasked targets to evaluate")
    stacked = np.concatenate(errors, axis=0)
    mae = float(np.abs(stacked).mean())
    mse = float((stacked ** 2).mean())
    return AccuracyReport(mae=mae, mse=mse, rmse=float(np.sqrt(mse)))

"""Spatial-temporal graph construction (paper Eqs. 7-9).

Converts a :class:`~repro.perception.phantom.PerceivedScene` into the
dense arrays LST-GAT consumes, and (for inspection and testing) into an
explicit ``networkx`` graph with the paper's 42-node layout: 6 targets
plus 6 surroundings each, with directed edges from every surrounding to
its target and self-loops on targets.

Feature vectors follow Eqs. 7-8: conventional vehicles carry states
relative to the autonomous vehicle ``[d_lat, d_lon, v_rel, IF]``, the
autonomous vehicle keeps its raw state as the reference, and
zero-padded slots are all-zero.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..sim.road import Road
from ..sim.vehicle import VehicleState
from .neighbors import AREA_COUNT
from .phantom import PerceivedScene, TrackKind, TrackedVehicle

__all__ = ["SpatialTemporalGraph", "build_graph", "concat_graphs",
           "split_rows", "FEATURE_DIM", "CONTRIBUTORS",
           "OUTPUT_SCALE", "RELATIVE_SCALE", "EGO_SCALE"]

#: Node feature dimensionality (Eq. 7): d_lat, d_lon, v_rel, IF.
FEATURE_DIM = 4

#: Contributors per target in the attention: the target itself + 6 surroundings.
CONTRIBUTORS = AREA_COUNT + 1

#: Feature scaling applied on top of Eqs. 7-8 so all network inputs are
#: O(1).  Relative nodes: lateral offsets span a few lane widths
#: (scale 10 m), longitudinal offsets span up to ~2R (scale 100 m),
#: relative speeds span the speed-limit band (scale 10 m/s).  The IF
#: flag is already 0/1.
RELATIVE_SCALE = np.array([10.0, 100.0, 10.0, 1.0])

#: Ego reference nodes keep raw state (paper Eq. 8 first row); scaled by
#: lane count, a kilometer, and the speed limit.
EGO_SCALE = np.array([6.0, 1000.0, 25.0, 1.0])

#: Scaling of the predicted / ground-truth [d_lat, d_lon, v_rel].
OUTPUT_SCALE = RELATIVE_SCALE[:3]


def _feature(node: TrackedVehicle, step: int, ego_state: VehicleState,
             road: Road) -> np.ndarray:
    """Eq. 7/8 state vector of one node at one history step (scaled)."""
    if node.kind is TrackKind.ZERO:
        return np.zeros(FEATURE_DIM)
    state = node.history[step]
    if node.kind is TrackKind.EGO:
        return np.array([state.lat, state.lon, state.v, 0.0]) / EGO_SCALE
    return np.array([
        road.lateral_offset(state.lat, ego_state.lat),
        state.lon - ego_state.lon,
        state.v - ego_state.v,
        node.indicator,
    ]) / RELATIVE_SCALE


@dataclass
class SpatialTemporalGraph:
    """Dense tensor view of the paper's spatial-temporal graph G(t).

    Attributes
    ----------
    target_features:
        ``(z, 6, 4)`` Eq. 7 vectors of the targets C_1..C_6.
    contributor_features:
        ``(z, 6, 7, 4)``; slot 0 is the target itself (self-loop), slots
        1..6 are C_{i.1}..C_{i.6} (Eq. 8).
    target_mask:
        ``(6,)`` -- 1 where the target is a real observed vehicle, 0
        where it is a phantom (used by the Eq. 14 loss mask).
    ego_features:
        ``(z, 6, 4)`` raw (scaled) ego reference states, replicated per
        target so batched graphs collate uniformly.  The prediction task
        conditions on the autonomous vehicle's own history (Sec. III-B
        problem statement), and the Eq. 13 outputs are relative to the
        ego so its absolute motion is required context.
    """

    target_features: np.ndarray
    contributor_features: np.ndarray
    target_mask: np.ndarray
    ego_features: np.ndarray

    @property
    def history_steps(self) -> int:
        return self.target_features.shape[0]


def build_graph(scene: PerceivedScene, road: Road) -> SpatialTemporalGraph:
    """Assemble G(t) feature arrays from a perceived scene."""
    steps = len(scene.ego.history)
    targets = np.zeros((steps, AREA_COUNT, FEATURE_DIM))
    contributors = np.zeros((steps, AREA_COUNT, CONTRIBUTORS, FEATURE_DIM))
    ego = np.zeros((steps, AREA_COUNT, FEATURE_DIM))
    mask = np.array(scene.target_mask())

    for step in range(steps):
        ego_state = scene.ego.history[step]
        ego[step, :] = _feature(scene.ego, step, ego_state, road)
        for area in range(1, AREA_COUNT + 1):
            target = scene.targets[area]
            vector = _feature(target, step, ego_state, road)
            targets[step, area - 1] = vector
            contributors[step, area - 1, 0] = vector
            for sub_area in range(1, AREA_COUNT + 1):
                node = scene.surroundings[(area, sub_area)]
                contributors[step, area - 1, sub_area] = _feature(node, step, ego_state, road)
    return SpatialTemporalGraph(targets, contributors, mask, ego)


def concat_graphs(graphs: list[SpatialTemporalGraph]) -> SpatialTemporalGraph:
    """Stack many graphs along the target axis into one batched graph.

    Every array of :class:`SpatialTemporalGraph` is indexed
    ``(z, n, ...)`` with targets independent along ``n`` -- the GAT
    attention normalizes per target and the LSTM runs one sequence per
    target -- so K graphs of n targets each collate into a single
    ``(z, K*n, ...)`` graph whose forward costs one network pass instead
    of K.  This is the batched perception entry point the inference
    server feeds; :func:`split_rows` undoes the stacking on the
    ``(K*n, 3)`` prediction.

    All graphs must share the history length ``z``.
    """
    if not graphs:
        raise ValueError("concat_graphs needs at least one graph")
    steps = {graph.history_steps for graph in graphs}
    if len(steps) != 1:
        raise ValueError(f"graphs disagree on history length: {sorted(steps)}")
    if len(graphs) == 1:
        return graphs[0]
    return SpatialTemporalGraph(
        np.concatenate([graph.target_features for graph in graphs], axis=1),
        np.concatenate([graph.contributor_features for graph in graphs], axis=1),
        np.concatenate([graph.target_mask for graph in graphs]),
        np.concatenate([graph.ego_features for graph in graphs], axis=1),
    )


def split_rows(stacked: np.ndarray, counts: list[int]) -> list[np.ndarray]:
    """Split a ``(sum(counts), ...)`` array back into per-graph blocks."""
    if stacked.shape[0] != sum(counts):
        raise ValueError(f"cannot split {stacked.shape[0]} rows into {counts}")
    out = []
    offset = 0
    for count in counts:
        out.append(stacked[offset:offset + count])
        offset += count
    return out


def to_networkx(scene: PerceivedScene, road: Road, step: int = -1) -> nx.DiGraph:
    """Export one spatial graph g(tau) as a directed networkx graph.

    Nodes are labeled ``"C1"``..``"C6"`` and ``"C1.1"``..``"C6.6"`` with
    ``feature`` and ``kind`` attributes; edges run surrounding -> target
    plus target self-loops, exactly the paper's construction steps 1-3.
    """
    graph = nx.DiGraph()
    steps = len(scene.ego.history)
    index = step % steps
    ego_state = scene.ego.history[index]
    for area in range(1, AREA_COUNT + 1):
        target = scene.targets[area]
        graph.add_node(f"C{area}",
                       feature=_feature(target, index, ego_state, road),
                       kind=target.kind.value)
        for sub_area in range(1, AREA_COUNT + 1):
            node = scene.surroundings[(area, sub_area)]
            name = f"C{area}.{sub_area}"
            graph.add_node(name,
                           feature=_feature(node, index, ego_state, road),
                           kind=node.kind.value)
            graph.add_edge(name, f"C{area}")
        graph.add_edge(f"C{area}", f"C{area}")
    return graph

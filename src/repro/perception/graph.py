"""Spatial-temporal graph construction (paper Eqs. 7-9).

Converts a :class:`~repro.perception.phantom.PerceivedScene` into the
dense arrays LST-GAT consumes, and (for inspection and testing) into an
explicit ``networkx`` graph with the paper's 42-node layout: 6 targets
plus 6 surroundings each, with directed edges from every surrounding to
its target and self-loops on targets.

Feature vectors follow Eqs. 7-8: conventional vehicles carry states
relative to the autonomous vehicle ``[d_lat, d_lon, v_rel, IF]``, the
autonomous vehicle keeps its raw state as the reference, and
zero-padded slots are all-zero.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..sim.road import Road
from ..sim.vehicle import VehicleState
from .neighbors import AREA_COUNT
from .phantom import PerceivedScene, TrackKind, TrackedVehicle

__all__ = ["SpatialTemporalGraph", "build_graph", "build_graphs",
           "concat_graphs", "split_rows", "FEATURE_DIM", "CONTRIBUTORS",
           "OUTPUT_SCALE", "RELATIVE_SCALE", "EGO_SCALE"]

#: Node feature dimensionality (Eq. 7): d_lat, d_lon, v_rel, IF.
FEATURE_DIM = 4

#: Contributors per target in the attention: the target itself + 6 surroundings.
CONTRIBUTORS = AREA_COUNT + 1

#: Node rows one scene occupies in the stacked featurization.
_NODES_PER_SCENE = AREA_COUNT * CONTRIBUTORS

#: Feature scaling applied on top of Eqs. 7-8 so all network inputs are
#: O(1).  Relative nodes: lateral offsets span a few lane widths
#: (scale 10 m), longitudinal offsets span up to ~2R (scale 100 m),
#: relative speeds span the speed-limit band (scale 10 m/s).  The IF
#: flag is already 0/1.
RELATIVE_SCALE = np.array([10.0, 100.0, 10.0, 1.0])

#: Ego reference nodes keep raw state (paper Eq. 8 first row); scaled by
#: lane count, a kilometer, and the speed limit.
EGO_SCALE = np.array([6.0, 1000.0, 25.0, 1.0])

#: Scaling of the predicted / ground-truth [d_lat, d_lon, v_rel].
OUTPUT_SCALE = RELATIVE_SCALE[:3]

#: Per-kind (is_zero, is_ego, indicator) rows gathered in one pass by
#: :func:`build_graph`.  The indicator column is Eqs. 7-8's IF code:
#: 1 for phantoms, 0 otherwise (matching ``TrackedVehicle.indicator``).
_KIND_FLAGS = {kind: (float(kind is TrackKind.ZERO),
                      float(kind is TrackKind.EGO),
                      1.0 if kind.is_phantom else 0.0)
               for kind in TrackKind}


def _feature(node: TrackedVehicle, step: int, ego_state: VehicleState,
             road: Road) -> np.ndarray:
    """Eq. 7/8 state vector of one node at one history step (scaled)."""
    if node.kind is TrackKind.ZERO:
        return np.zeros(FEATURE_DIM)
    state = node.history[step]
    if node.kind is TrackKind.EGO:
        return np.array([state.lat, state.lon, state.v, 0.0]) / EGO_SCALE
    return np.array([
        road.lateral_offset(state.lat, ego_state.lat),
        state.lon - ego_state.lon,
        state.v - ego_state.v,
        node.indicator,
    ]) / RELATIVE_SCALE


@dataclass
class SpatialTemporalGraph:
    """Dense tensor view of the paper's spatial-temporal graph G(t).

    Attributes
    ----------
    target_features:
        ``(z, 6, 4)`` Eq. 7 vectors of the targets C_1..C_6.
    contributor_features:
        ``(z, 6, 7, 4)``; slot 0 is the target itself (self-loop), slots
        1..6 are C_{i.1}..C_{i.6} (Eq. 8).
    target_mask:
        ``(6,)`` -- 1 where the target is a real observed vehicle, 0
        where it is a phantom (used by the Eq. 14 loss mask).
    ego_features:
        ``(z, 6, 4)`` raw (scaled) ego reference states, replicated per
        target so batched graphs collate uniformly.  The prediction task
        conditions on the autonomous vehicle's own history (Sec. III-B
        problem statement), and the Eq. 13 outputs are relative to the
        ego so its absolute motion is required context.
    """

    target_features: np.ndarray
    contributor_features: np.ndarray
    target_mask: np.ndarray
    ego_features: np.ndarray

    @property
    def history_steps(self) -> int:
        return self.target_features.shape[0]


def build_graph(scene: PerceivedScene, road: Road) -> SpatialTemporalGraph:
    """Assemble G(t) feature arrays from a perceived scene.

    Delegates to :func:`build_graphs` with a single scene, so the
    single-AV and fleet paths share one featurization kernel and are
    bit-identical by construction.
    """
    return build_graphs([scene], road)[0]


def build_graphs(scenes: list[PerceivedScene], road: Road
                 ) -> list[SpatialTemporalGraph]:
    """Assemble G(t) arrays for many scenes in one stacked computation.

    All S * 42 nodes are gathered into one state block and featurized by
    a handful of vectorized operations shared across the whole fleet;
    every arithmetic step matches the per-node :func:`_feature` exactly
    (same subtraction order, same scale division), so each scene's
    arrays are bit-identical to the nested scalar loop this replaces --
    and independent of which other scenes share the batch.

    All scenes must have the same history length ``z``.
    """
    if not scenes:
        return []
    steps = len(scenes[0].ego.history)
    nodes: list[TrackedVehicle] = []
    for scene in scenes:
        if len(scene.ego.history) != steps:
            raise ValueError("scenes disagree on history length")
        for area in range(1, AREA_COUNT + 1):
            nodes.append(scene.targets[area])
            for sub_area in range(1, AREA_COUNT + 1):
                nodes.append(scene.surroundings[(area, sub_area)])

    # Nodes alias history lists heavily (the ego fills six slots, zero
    # padding is shared, one vehicle can be a target and several
    # surroundings -- possibly across scenes), so gather each distinct
    # history once and scatter by row index -- the scattered copy
    # carries the exact same floats.
    compact_rows: dict[int, int] = {}
    distinct: list[TrackedVehicle] = []
    row_of = np.empty(len(nodes), dtype=np.intp)
    for position, node in enumerate(nodes):
        key = id(node.history)
        row = compact_rows.get(key)
        if row is None:
            row = len(distinct)
            compact_rows[key] = row
            distinct.append(node)
        row_of[position] = row
    compact = np.fromiter(
        (value for node in distinct for state in node.history
         for value in (state.lat, state.lon, state.v)),
        np.float64, count=len(distinct) * steps * 3,
    ).reshape(len(distinct), steps, 3)
    raw = compact[row_of]
    # Per-scene ego references, replicated to the scene's 42 node rows.
    ego_raw = np.fromiter(
        (value for scene in scenes for state in scene.ego.history
         for value in (state.lat, state.lon, state.v)),
        np.float64, count=len(scenes) * steps * 3,
    ).reshape(len(scenes), steps, 3)
    node_ego = np.repeat(ego_raw, _NODES_PER_SCENE, axis=0)
    # One pass derives all three per-node flag arrays from the kind.
    flags = np.array([_KIND_FLAGS[node.kind] for node in nodes])
    is_zero = flags[:, 0] != 0.0
    is_ego = flags[:, 1] != 0.0
    indicator = flags[:, 2]

    # Eq. 7 relative features, node-major: (S * 42, z, 4).
    features = np.empty((len(nodes), steps, FEATURE_DIM))
    features[:, :, 0] = (raw[:, :, 0] - node_ego[:, :, 0]) * road.lane_width
    features[:, :, 1] = raw[:, :, 1] - node_ego[:, :, 1]
    features[:, :, 2] = raw[:, :, 2] - node_ego[:, :, 2]
    features[:, :, 3] = indicator[:, None]
    features /= RELATIVE_SCALE
    if is_ego.any():
        ego_like = np.zeros((int(is_ego.sum()), steps, FEATURE_DIM))
        ego_like[:, :, :3] = raw[is_ego]
        features[is_ego] = ego_like / EGO_SCALE
    features[is_zero] = 0.0

    # Scatter into the (z, 6, ...) layout: within a scene, node i*7 is
    # target C_{i+1}, nodes i*7+1..i*7+6 are its contributors.
    grouped = features.reshape(len(scenes), AREA_COUNT, CONTRIBUTORS,
                               steps, FEATURE_DIM)
    contributors = np.ascontiguousarray(grouped.transpose(0, 3, 1, 2, 4))
    targets = np.ascontiguousarray(contributors[:, :, :, 0, :])

    ego_vectors = np.zeros((len(scenes), steps, FEATURE_DIM))
    ego_vectors[:, :, :3] = ego_raw
    ego_vectors /= EGO_SCALE
    egos = np.ascontiguousarray(
        np.broadcast_to(ego_vectors[:, :, None, :],
                        (len(scenes), steps, AREA_COUNT, FEATURE_DIM)))
    return [SpatialTemporalGraph(targets[index], contributors[index],
                                 np.array(scene.target_mask()), egos[index])
            for index, scene in enumerate(scenes)]


def concat_graphs(graphs: list[SpatialTemporalGraph]) -> SpatialTemporalGraph:
    """Stack many graphs along the target axis into one batched graph.

    Every array of :class:`SpatialTemporalGraph` is indexed
    ``(z, n, ...)`` with targets independent along ``n`` -- the GAT
    attention normalizes per target and the LSTM runs one sequence per
    target -- so K graphs of n targets each collate into a single
    ``(z, K*n, ...)`` graph whose forward costs one network pass instead
    of K.  This is the batched perception entry point the inference
    server feeds; :func:`split_rows` undoes the stacking on the
    ``(K*n, 3)`` prediction.

    All graphs must share the history length ``z``.
    """
    if not graphs:
        raise ValueError("concat_graphs needs at least one graph")
    steps = {graph.history_steps for graph in graphs}
    if len(steps) != 1:
        raise ValueError(f"graphs disagree on history length: {sorted(steps)}")
    if len(graphs) == 1:
        return graphs[0]
    return SpatialTemporalGraph(
        np.concatenate([graph.target_features for graph in graphs], axis=1),
        np.concatenate([graph.contributor_features for graph in graphs], axis=1),
        np.concatenate([graph.target_mask for graph in graphs]),
        np.concatenate([graph.ego_features for graph in graphs], axis=1),
    )


def split_rows(stacked: np.ndarray, counts: list[int]) -> list[np.ndarray]:
    """Split a ``(sum(counts), ...)`` array back into per-graph blocks."""
    if stacked.shape[0] != sum(counts):
        raise ValueError(f"cannot split {stacked.shape[0]} rows into {counts}")
    out = []
    offset = 0
    for count in counts:
        out.append(stacked[offset:offset + count])
        offset += count
    return out


def to_networkx(scene: PerceivedScene, road: Road, step: int = -1) -> nx.DiGraph:
    """Export one spatial graph g(tau) as a directed networkx graph.

    Nodes are labeled ``"C1"``..``"C6"`` and ``"C1.1"``..``"C6.6"`` with
    ``feature`` and ``kind`` attributes; edges run surrounding -> target
    plus target self-loops, exactly the paper's construction steps 1-3.
    """
    graph = nx.DiGraph()
    steps = len(scene.ego.history)
    index = step % steps
    ego_state = scene.ego.history[index]
    for area in range(1, AREA_COUNT + 1):
        target = scene.targets[area]
        graph.add_node(f"C{area}",
                       feature=_feature(target, index, ego_state, road),
                       kind=target.kind.value)
        for sub_area in range(1, AREA_COUNT + 1):
            node = scene.surroundings[(area, sub_area)]
            name = f"C{area}.{sub_area}"
            graph.add_node(name,
                           feature=_feature(node, index, ego_state, road),
                           kind=node.kind.value)
            graph.add_edge(name, f"C{area}")
        graph.add_edge(f"C{area}", f"C{area}")
    return graph

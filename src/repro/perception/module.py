"""The enhanced perception module: online facade used by the HEAD agent.

Per decision step it (1) reads the sensor, (2) updates observation
tracks, (3) runs phantom construction and builds the spatial-temporal
graph, and (4) predicts the one-step future states of the six targets
with LST-GAT.  The decision module consumes the returned
:class:`PerceptionFrame`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim import constants
from ..sim.engine import SimulationEngine
from ..sim.road import Road
from ..sim.vehicle import VehicleState
from .graph import SpatialTemporalGraph, build_graph
from .phantom import PerceivedScene, build_scene
from .predictor import StatePredictor
from .sensor import Sensor
from .tracking import ObservationBuffer

__all__ = ["PerceptionFrame", "EnhancedPerception"]


@dataclass
class PerceptionFrame:
    """Everything perception hands to the decision module at one step.

    Attributes
    ----------
    scene:
        The 1+6+36 perceived layout (observed vehicles + phantoms).
    graph:
        Dense G(t) arrays (input to the predictor).
    prediction:
        ``(6, 3)`` one-step future relative states of the targets, or
        zeros when prediction is disabled (HEAD-w/o-LST-GAT).
    """

    scene: PerceivedScene
    graph: SpatialTemporalGraph
    prediction: np.ndarray


class EnhancedPerception:
    """Sensor + tracker + phantom construction + LST-GAT, glued together.

    Parameters
    ----------
    predictor:
        Any :class:`StatePredictor`; pass None to disable prediction
        (the HEAD-w/o-LST-GAT ablation, which then feeds zeros as the
        "future" half of the augmented state).
    use_phantoms:
        Setting False replaces every phantom with zero states (the
        HEAD-w/o-PVC ablation).
    """

    def __init__(self, predictor: StatePredictor | None,
                 sensor: Sensor | None = None,
                 history_steps: int = constants.HISTORY_STEPS,
                 use_phantoms: bool = True) -> None:
        self.predictor = predictor
        self.sensor = sensor or Sensor()
        self.history_steps = history_steps
        self.use_phantoms = use_phantoms
        self.buffer = ObservationBuffer(history_steps=history_steps)
        self._ego_track: list[VehicleState] = []

    def reset(self) -> None:
        """Clear all episode state (call at episode start)."""
        self.buffer.reset()
        self._ego_track.clear()

    def ego_history(self) -> list[VehicleState]:
        """The ego's last z states, front-padded by repetition."""
        track = self._ego_track[-self.history_steps:]
        if len(track) < self.history_steps:
            track = [track[0]] * (self.history_steps - len(track)) + track
        return track

    def perceive(self, engine: SimulationEngine, ego_id: str) -> PerceptionFrame:
        """Run one full perception cycle against the live simulator."""
        ego_state = engine.get(ego_id).state
        world = {vid: vehicle.state for vid, vehicle in engine.vehicles.items()}
        return self.perceive_snapshot(ego_id, ego_state, world, engine.road)

    def perceive_snapshot(self, ego_id: str, ego_state: VehicleState,
                          world: dict[str, VehicleState], road: Road) -> PerceptionFrame:
        """Perception cycle against an explicit world snapshot."""
        scene, graph = self.observe_graph(ego_id, ego_state, world, road)
        if self.predictor is not None:
            prediction = self.predictor.predict(graph)
        else:
            prediction = np.zeros((6, 3))
        return PerceptionFrame(scene=scene, graph=graph, prediction=prediction)

    def observe_graph(self, ego_id: str, ego_state: VehicleState,
                      world: dict[str, VehicleState], road: Road,
                      world_arrays=None
                      ) -> tuple[PerceivedScene, SpatialTemporalGraph]:
        """The sensing half of :meth:`perceive_snapshot`: sensor read,
        track update, phantom construction and graph assembly -- without
        the predictor forward.

        Fleet perception uses this to gather all M AVs' graphs first and
        run **one** stacked LST-GAT forward
        (:meth:`~repro.perception.predictor.StatePredictor.predict_many`)
        instead of M sequential ones; pairing this with that call is
        bit-identical to :meth:`perceive_snapshot` per ego.
        ``world_arrays`` optionally shares one pre-gathered
        :class:`~repro.perception.sensor.WorldArrays` of the snapshot
        across the fleet's sensors.
        """
        scene = self.observe_scene(ego_id, ego_state, world, road,
                                   world_arrays=world_arrays)
        return scene, build_graph(scene, road)

    def observe_scene(self, ego_id: str, ego_state: VehicleState,
                      world: dict[str, VehicleState], road: Road,
                      world_arrays=None) -> PerceivedScene:
        """Sensor read, track update and phantom construction only.

        Fleet perception gathers all M AVs' scenes with this and then
        assembles every graph in one stacked
        :func:`~repro.perception.graph.build_graphs` call.
        """
        self._ego_track.append(ego_state)
        observed = self.sensor.observe(ego_id, ego_state, world, road,
                                       arrays=world_arrays)
        self.buffer.update(observed)
        scene = build_scene(ego_id, self.ego_history(), self.buffer, road,
                            detection_range=self.sensor.detection_range)
        if not self.use_phantoms:
            scene = _zero_out_phantoms(scene)
        return scene


def _zero_out_phantoms(scene: PerceivedScene) -> PerceivedScene:
    """HEAD-w/o-PVC: unobservable slots become zero states, not phantoms."""
    from .phantom import TrackKind, TrackedVehicle

    def strip(node: TrackedVehicle) -> TrackedVehicle:
        if node.kind.is_phantom:
            zero = VehicleState(lat=0, lon=0.0, v=0.0)
            return TrackedVehicle(TrackKind.ZERO, [zero] * len(node.history))
        return node

    return PerceivedScene(
        ego=scene.ego,
        targets={area: strip(node) for area, node in scene.targets.items()},
        surroundings={key: strip(node) for key, node in scene.surroundings.items()},
    )

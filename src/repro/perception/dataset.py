"""Sample generation for the state-prediction task.

Turns recorded trajectories (the REAL substitute or live simulation)
into supervised samples: a spatial-temporal graph input plus the
ground-truth one-step relative future state of each target and a
validity mask.

For every chosen ego vehicle the builder replays the scene through the
sensor model step by step -- so the *inputs* contain exactly the
occlusion/range gaps and phantom constructions the predictor will face
online, while the *labels* come from the omniscient recording.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.trajectories import TrajectorySet
from ..sim import constants
from ..sim.road import Road
from ..sim.vehicle import VehicleState
from .graph import SpatialTemporalGraph, build_graph
from .neighbors import AREA_COUNT
from .phantom import build_scene
from .sensor import Sensor
from .tracking import ObservationBuffer
from ..seeding import resolve_rng

__all__ = ["PredictionSample", "build_samples", "collate", "train_test_samples"]


@dataclass
class PredictionSample:
    """One supervised example for the state predictor.

    Attributes
    ----------
    graph:
        Input G(t); its ``target_mask`` already combines "target is
        observed" with "ground truth exists at t+1".
    truth:
        ``(6, 3)`` ground-truth ``[d_lat, d_lon, v_rel]`` of each target
        at t+1, relative to the ego at t (zeros where masked).
    ego_id / step / target_ids:
        Provenance: which recorded vehicle served as ego, at which
        snapshot index, and which vehicle fills each target slot (None
        for phantoms).  Used by multi-horizon evaluations.
    """

    graph: SpatialTemporalGraph
    truth: np.ndarray
    ego_id: str | None = None
    step: int | None = None
    target_ids: tuple[str | None, ...] | None = None


def _relative_future(target: VehicleState, ego_now: VehicleState, road: Road) -> np.ndarray:
    """Ground-truth label in the same scaled space as the graph features."""
    from .graph import OUTPUT_SCALE

    return np.array([
        road.lateral_offset(target.lat, ego_now.lat),
        target.lon - ego_now.lon,
        target.v - ego_now.v,
    ]) / OUTPUT_SCALE


def build_samples(trajectories: TrajectorySet, ego_ids: list[str] | None = None,
                  sensor: Sensor | None = None,
                  history_steps: int = constants.HISTORY_STEPS,
                  max_egos: int = 8,
                  rng: np.random.Generator | None = None) -> list[PredictionSample]:
    """Replay ``trajectories`` through the sensor and emit samples.

    Parameters
    ----------
    trajectories:
        The recorded scene (omniscient ground truth).
    ego_ids:
        Vehicles to use as perception reference points; defaults to a
        seeded random draw of ``max_egos`` long-lived vehicles.
    sensor:
        Sensor model (range + occlusion); defaults to the paper's R=100m.
    """
    sensor = sensor or Sensor()
    rng = resolve_rng(rng)
    road = trajectories.road
    if ego_ids is None:
        ego_ids = _pick_long_lived(trajectories, max_egos, history_steps, rng)

    samples: list[PredictionSample] = []
    for ego_id in ego_ids:
        buffer = ObservationBuffer(history_steps=history_steps)
        ego_track: list[VehicleState] = []
        first, last = trajectories.presence_span(ego_id)
        for step in range(first, min(last, len(trajectories) - 1)):
            snapshot = trajectories.snapshots[step]
            if ego_id not in snapshot:
                break
            ego_state = snapshot[ego_id]
            ego_track.append(ego_state)
            buffer.update(sensor.observe(ego_id, ego_state, snapshot, road))
            if len(ego_track) < 1:
                continue
            ego_history = ego_track[-history_steps:]
            if len(ego_history) < history_steps:
                ego_history = [ego_history[0]] * (history_steps - len(ego_history)) + ego_history
            scene = build_scene(ego_id, ego_history, buffer, road,
                                detection_range=sensor.detection_range)
            graph = build_graph(scene, road)
            future_snapshot = trajectories.snapshots[step + 1]
            truth = np.zeros((AREA_COUNT, 3))
            mask = graph.target_mask.copy()
            for area in range(1, AREA_COUNT + 1):
                target = scene.targets[area]
                if target.vid is not None and target.vid in future_snapshot:
                    truth[area - 1] = _relative_future(
                        future_snapshot[target.vid], ego_state, road)
                else:
                    mask[area - 1] = 0.0
            graph = SpatialTemporalGraph(graph.target_features,
                                         graph.contributor_features, mask,
                                         graph.ego_features)
            target_ids = tuple(scene.targets[area].vid for area in range(1, AREA_COUNT + 1))
            samples.append(PredictionSample(graph=graph, truth=truth,
                                            ego_id=ego_id, step=step,
                                            target_ids=target_ids))
    return samples


def _pick_long_lived(trajectories: TrajectorySet, count: int,
                     history_steps: int, rng: np.random.Generator) -> list[str]:
    spans = []
    for vid in trajectories.vehicle_ids():
        first, last = trajectories.presence_span(vid)
        if last - first >= 2 * history_steps:
            spans.append((last - first, vid))
    spans.sort(reverse=True)
    pool = [vid for _, vid in spans[:4 * count]]
    if not pool:
        raise ValueError("no vehicle lives long enough to serve as an ego")
    chosen = rng.choice(len(pool), size=min(count, len(pool)), replace=False)
    return [pool[index] for index in chosen]


def collate(samples: list[PredictionSample]) -> tuple[SpatialTemporalGraph, np.ndarray]:
    """Merge samples into one batched graph along the target axis.

    The attention and the LSTM treat targets as a batch dimension, so B
    graphs of 6 targets collate into one graph of 6B targets -- a single
    forward pass trains the whole mini-batch.
    """
    graph = SpatialTemporalGraph(
        np.concatenate([sample.graph.target_features for sample in samples], axis=1),
        np.concatenate([sample.graph.contributor_features for sample in samples], axis=1),
        np.concatenate([sample.graph.target_mask for sample in samples]),
        np.concatenate([sample.graph.ego_features for sample in samples], axis=1),
    )
    truth = np.concatenate([sample.truth for sample in samples], axis=0)
    return graph, truth


def train_test_samples(trajectories: TrajectorySet, ratio: float = 0.8,
                       **kwargs) -> tuple[list[PredictionSample], list[PredictionSample]]:
    """Chronologically split the scene 4:1 and build samples for each part."""
    train_set, test_set = trajectories.split(ratio)
    return build_samples(train_set, **kwargs), build_samples(test_set, **kwargs)

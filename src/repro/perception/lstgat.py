"""LST-GAT: Local Spatial-Temporal Graph ATtention predictor (Sec. III-B).

Network structure (Fig. 5):

1. a shared graph attention layer aggregates, for every target vehicle
   C_i and every history step tau, its 7 contributors (itself plus its
   six surroundings) with learned importance scores (Eqs. 10-11);
2. an LSTM consumes the z aggregated vectors per target and a linear
   head maps the final hidden state to the predicted one-step relative
   future state ``[d_lat, d_lon, v_rel]`` (Eqs. 12-13).

All six targets are predicted in one batched pass -- the parallel
prediction the paper credits for LST-GAT's inference speed.

The attention score of Eq. 10 is computed with the standard GAT
decomposition ``phi_2 [u || v] = a_src . u + a_dst . v`` which avoids an
explicit concatenation while remaining mathematically identical.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..sim import constants
from .graph import CONTRIBUTORS, FEATURE_DIM, SpatialTemporalGraph
from .predictor import StatePredictor
from ..seeding import resolve_rng

__all__ = ["LSTGAT"]


class GraphAttention(nn.Module):
    """Shared single-head graph attention over each target's star graph.

    Implements Eqs. 10-11 for all (step, target) pairs at once on
    ``(z, 6, 7, 4)`` contributor features.
    """

    def __init__(self, feature_dim: int, hidden_dim: int,
                 negative_slope: float = 0.2, num_heads: int = 4,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = resolve_rng(rng)
        if hidden_dim % num_heads:
            raise ValueError("hidden_dim must be divisible by num_heads")
        self.hidden_dim = hidden_dim
        self.num_heads = num_heads
        self.head_dim = hidden_dim // num_heads
        self.negative_slope = negative_slope
        # phi_1: feature transform used inside the attention score
        # (all heads packed row-wise: rows [k*Dh, (k+1)*Dh) are head k).
        self.phi1 = nn.Parameter(_xavier(rng, (hidden_dim, feature_dim)))
        # phi_2 split into source/destination halves (see module
        # docstring), one pair per head.
        self.attn_src = nn.Parameter(_xavier(rng, (num_heads, self.head_dim)))
        self.attn_dst = nn.Parameter(_xavier(rng, (num_heads, self.head_dim)))
        # phi_3: value transform for the aggregation of Eq. 11.  Values
        # see the contributor feature and its difference to the target
        # feature: car-following behaviour is driven by *pairwise* gaps
        # and speed differences, so exposing (h_ix - h_i) as an edge
        # feature lets one linear map deliver exactly that quantity.
        self.phi3 = nn.Parameter(_xavier(rng, (hidden_dim, 2 * feature_dim)))

    def attention_weights(self, targets: nn.Tensor,
                          contributors: nn.Tensor) -> nn.Tensor:
        """Eq. 10 per-head attention weights alpha, ``(z, n, 7, K)``.

        Every (step, target, contributor, head) score falls out of two
        einsum contractions against the head-major views of ``phi1`` and
        the phi_2 halves -- no per-head loop, no mul+sum intermediate.
        Shared by :meth:`forward` and :meth:`LSTGAT.attention_map` so the
        interpretability view can never drift from the training math.
        """
        z, n = targets.shape[0], targets.shape[1]
        phi1_heads = self.phi1.reshape(self.num_heads, self.head_dim, -1)
        # Per-head scalar scores.  ``a . (phi1_k x) = (a @ phi1_k) . x``,
        # so each phi_2 half folds with its head's phi_1 block into one
        # tiny ``(K, F)`` score matrix before ever touching the data --
        # the ``(z, n, 7, K, Dh)`` transformed-feature intermediate of
        # the naive order never gets materialized.
        fold_src = nn.einsum("kd,kdf->kf", self.attn_src, phi1_heads)
        fold_dst = nn.einsum("kd,kdf->kf", self.attn_dst, phi1_heads)
        score_target = nn.einsum("znf,kf->znk", targets, fold_src)
        score_contrib = nn.einsum("zncf,kf->znck", contributors, fold_dst)
        scores = score_target.reshape(z, n, 1, self.num_heads) + score_contrib
        scores = scores.leaky_relu(self.negative_slope)
        # Padding mask: zero-padded slots (all-zero feature vectors, the
        # surroundings of phantom targets) must not receive attention.
        padding = (np.abs(contributors.data).sum(axis=-1) == 0.0)
        if padding.any():
            scores = scores + nn.Tensor(
                np.where(padding, -1e9, 0.0)[:, :, :, None])
        return scores.softmax(axis=2)                                       # Eq. 10

    def forward(self, targets: nn.Tensor, contributors: nn.Tensor) -> nn.Tensor:
        """Aggregate contributors into updated target vectors.

        Parameters
        ----------
        targets:
            ``(z, 6, 4)`` Eq. 7 target features.
        contributors:
            ``(z, 6, 7, 4)`` contributor features (slot 0 = self-loop).

        Returns
        -------
        ``(z, 6, hidden_dim)`` updated historical states h' (Eq. 11),
        the concatenation of all attention heads.

        The whole layer -- every head, target and history step -- is a
        handful of einsums; ``tests/nn/test_equivalence_fused.py`` pins
        it against the per-head reference loop in
        :mod:`repro.nn.reference`.
        """
        z, n = targets.shape[0], targets.shape[1]
        alpha = self.attention_weights(targets, contributors)  # (z, n, 7, K)
        target_rows = targets.reshape(z, n, 1, targets.shape[-1])
        edges = contributors - target_rows                     # pairwise differences
        phi3_heads = self.phi3.reshape(self.num_heads, self.head_dim, -1)
        # Contract the 7 contributors *before* expanding head features:
        # sum_c alpha (phi3 [x||e]) = phi3 (sum_c alpha [x||e]), so the
        # mixture runs on raw (z, n, 7, 2F) features and phi_3 is applied
        # once to the (z, n, K, 2F) result -- no (z, n, 7, K, Dh) value
        # tensor is ever built.
        mixed = nn.einsum("znck,zncf->znkf",
                          alpha, nn.concat([contributors, edges], axis=3))
        weighted = nn.einsum("znkf,kdf->znkd", mixed, phi3_heads)
        return weighted.reshape(z, n, self.hidden_dim)         # Eq. 11


def _xavier(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    fan_in = shape[-1] if len(shape) > 1 else shape[0]
    fan_out = shape[0]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


class LSTGAT(StatePredictor):
    """The full LST-GAT predictor (graph attention + LSTM + linear head).

    Parameters
    ----------
    attention_dim:
        D_phi1 = D_phi3 (paper: 64).
    lstm_dim:
        D_l, the LSTM hidden size (paper: 64).
    history_steps:
        Window length z (paper: 5).
    """

    def __init__(self, attention_dim: int = 64, lstm_dim: int = 64,
                 history_steps: int = constants.HISTORY_STEPS,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = resolve_rng(rng)
        self.history_steps = history_steps
        self.attention = GraphAttention(FEATURE_DIM, attention_dim, rng=rng)
        # The LSTM sees the Eq. 11 aggregation concatenated with the raw
        # target state (a standard GAT skip connection that keeps the
        # target's own trajectory undiluted by the attention mixture)
        # and the ego reference state the labels are relative to.
        self.lstm = nn.LSTM(attention_dim + 2 * FEATURE_DIM, lstm_dim, rng=rng)
        self.head = nn.Linear(lstm_dim, 3, rng=rng)

    def forward_graph(self, graph: SpatialTemporalGraph) -> nn.Tensor:
        """Predict the one-step future relative state of all 6 targets.

        Returns a ``(6, 3)`` tensor: per target, the predicted
        ``[d_lat, d_lon, v_rel]`` at t+1 relative to the ego at t
        (Eq. 13).
        """
        targets = nn.Tensor(graph.target_features)
        contributors = nn.Tensor(graph.contributor_features)
        ego = nn.Tensor(graph.ego_features)
        updated = self.attention(targets, contributors)        # (z, 6, D)
        combined = nn.concat([updated, targets, ego], axis=2)  # (z, 6, D+8)
        sequence = combined.transpose(1, 0, 2)                 # (6, z, D+8)
        _, (hidden, _) = self.lstm(sequence)                   # (6, D_l)
        return self.head(hidden)                               # (6, 3)

    def attention_map(self, graph: SpatialTemporalGraph) -> np.ndarray:
        """Importance scores alpha for interpretability (Eq. 10).

        Returns ``(z, n_targets, 7)`` head-averaged attention weights:
        slot 0 is the target's self-loop, slots 1..6 its surroundings
        C_{i.1}..C_{i.6}.  Rows sum to 1 (padding slots get ~0).
        """
        with nn.no_grad():
            alpha = self.attention.attention_weights(
                nn.Tensor(graph.target_features),
                nn.Tensor(graph.contributor_features))
        return alpha.numpy().mean(axis=-1)

    # forward() kept as an alias so the model reads like the paper's Fig. 5.
    forward = forward_graph

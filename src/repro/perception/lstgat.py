"""LST-GAT: Local Spatial-Temporal Graph ATtention predictor (Sec. III-B).

Network structure (Fig. 5):

1. a shared graph attention layer aggregates, for every target vehicle
   C_i and every history step tau, its 7 contributors (itself plus its
   six surroundings) with learned importance scores (Eqs. 10-11);
2. an LSTM consumes the z aggregated vectors per target and a linear
   head maps the final hidden state to the predicted one-step relative
   future state ``[d_lat, d_lon, v_rel]`` (Eqs. 12-13).

All six targets are predicted in one batched pass -- the parallel
prediction the paper credits for LST-GAT's inference speed.

The attention score of Eq. 10 is computed with the standard GAT
decomposition ``phi_2 [u || v] = a_src . u + a_dst . v`` which avoids an
explicit concatenation while remaining mathematically identical.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..sim import constants
from .graph import CONTRIBUTORS, FEATURE_DIM, SpatialTemporalGraph
from .predictor import StatePredictor
from ..seeding import resolve_rng

__all__ = ["LSTGAT"]


class GraphAttention(nn.Module):
    """Shared single-head graph attention over each target's star graph.

    Implements Eqs. 10-11 for all (step, target) pairs at once on
    ``(z, 6, 7, 4)`` contributor features.
    """

    def __init__(self, feature_dim: int, hidden_dim: int,
                 negative_slope: float = 0.2, num_heads: int = 4,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = resolve_rng(rng)
        if hidden_dim % num_heads:
            raise ValueError("hidden_dim must be divisible by num_heads")
        self.hidden_dim = hidden_dim
        self.num_heads = num_heads
        self.head_dim = hidden_dim // num_heads
        self.negative_slope = negative_slope
        # phi_1: feature transform used inside the attention score
        # (all heads packed row-wise: rows [k*Dh, (k+1)*Dh) are head k).
        self.phi1 = nn.Parameter(_xavier(rng, (hidden_dim, feature_dim)))
        # phi_2 split into source/destination halves (see module
        # docstring), one pair per head.
        self.attn_src = nn.Parameter(_xavier(rng, (num_heads, self.head_dim)))
        self.attn_dst = nn.Parameter(_xavier(rng, (num_heads, self.head_dim)))
        # phi_3: value transform for the aggregation of Eq. 11.  Values
        # see the contributor feature and its difference to the target
        # feature: car-following behaviour is driven by *pairwise* gaps
        # and speed differences, so exposing (h_ix - h_i) as an edge
        # feature lets one linear map deliver exactly that quantity.
        self.phi3 = nn.Parameter(_xavier(rng, (hidden_dim, 2 * feature_dim)))

    def forward(self, targets: nn.Tensor, contributors: nn.Tensor) -> nn.Tensor:
        """Aggregate contributors into updated target vectors.

        Parameters
        ----------
        targets:
            ``(z, 6, 4)`` Eq. 7 target features.
        contributors:
            ``(z, 6, 7, 4)`` contributor features (slot 0 = self-loop).

        Returns
        -------
        ``(z, 6, hidden_dim)`` updated historical states h' (Eq. 11),
        the concatenation of all attention heads.
        """
        z, n = targets.shape[0], targets.shape[1]
        heads, head_dim = self.num_heads, self.head_dim
        transformed_targets = (targets @ self.phi1.T).reshape(z, n, heads, head_dim)
        transformed_contrib = (contributors @ self.phi1.T).reshape(
            z, n, CONTRIBUTORS, heads, head_dim)
        # Per-head scalar scores: dot each head block with its phi_2 half.
        score_target = (transformed_targets * self.attn_src).sum(axis=-1)  # (z, n, K)
        score_contrib = (transformed_contrib * self.attn_dst).sum(axis=-1)  # (z, n, 7, K)
        scores = score_target.reshape(z, n, 1, heads) + score_contrib
        scores = scores.leaky_relu(self.negative_slope)
        # Padding mask: zero-padded slots (all-zero feature vectors, the
        # surroundings of phantom targets) must not receive attention.
        padding = (np.abs(contributors.data).sum(axis=-1) == 0.0)
        if padding.any():
            scores = scores + nn.Tensor(
                np.where(padding, -1e9, 0.0)[:, :, :, None])
        alpha = scores.softmax(axis=2)                                      # Eq. 10
        target_rows = targets.reshape(z, n, 1, targets.shape[-1])
        edges = contributors - target_rows                     # pairwise differences
        values = (nn.concat([contributors, edges], axis=3) @ self.phi3.T).reshape(
            z, n, CONTRIBUTORS, heads, head_dim)
        weighted = values * alpha.reshape(z, n, CONTRIBUTORS, heads, 1)
        return weighted.sum(axis=2).reshape(z, n, self.hidden_dim)  # Eq. 11


def _xavier(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    fan_in = shape[-1] if len(shape) > 1 else shape[0]
    fan_out = shape[0]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


class LSTGAT(StatePredictor):
    """The full LST-GAT predictor (graph attention + LSTM + linear head).

    Parameters
    ----------
    attention_dim:
        D_phi1 = D_phi3 (paper: 64).
    lstm_dim:
        D_l, the LSTM hidden size (paper: 64).
    history_steps:
        Window length z (paper: 5).
    """

    def __init__(self, attention_dim: int = 64, lstm_dim: int = 64,
                 history_steps: int = constants.HISTORY_STEPS,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = resolve_rng(rng)
        self.history_steps = history_steps
        self.attention = GraphAttention(FEATURE_DIM, attention_dim, rng=rng)
        # The LSTM sees the Eq. 11 aggregation concatenated with the raw
        # target state (a standard GAT skip connection that keeps the
        # target's own trajectory undiluted by the attention mixture)
        # and the ego reference state the labels are relative to.
        self.lstm = nn.LSTM(attention_dim + 2 * FEATURE_DIM, lstm_dim, rng=rng)
        self.head = nn.Linear(lstm_dim, 3, rng=rng)

    def forward_graph(self, graph: SpatialTemporalGraph) -> nn.Tensor:
        """Predict the one-step future relative state of all 6 targets.

        Returns a ``(6, 3)`` tensor: per target, the predicted
        ``[d_lat, d_lon, v_rel]`` at t+1 relative to the ego at t
        (Eq. 13).
        """
        targets = nn.Tensor(graph.target_features)
        contributors = nn.Tensor(graph.contributor_features)
        ego = nn.Tensor(graph.ego_features)
        updated = self.attention(targets, contributors)        # (z, 6, D)
        combined = nn.concat([updated, targets, ego], axis=2)  # (z, 6, D+8)
        sequence = combined.transpose(1, 0, 2)                 # (6, z, D+8)
        _, (hidden, _) = self.lstm(sequence)                   # (6, D_l)
        return self.head(hidden)                               # (6, 3)

    def attention_map(self, graph: SpatialTemporalGraph) -> np.ndarray:
        """Importance scores alpha for interpretability (Eq. 10).

        Returns ``(z, n_targets, 7)`` head-averaged attention weights:
        slot 0 is the target's self-loop, slots 1..6 its surroundings
        C_{i.1}..C_{i.6}.  Rows sum to 1 (padding slots get ~0).
        """
        attention = self.attention
        with nn.no_grad():
            targets = nn.Tensor(graph.target_features)
            contributors = nn.Tensor(graph.contributor_features)
            z, n = targets.shape[0], targets.shape[1]
            heads, head_dim = attention.num_heads, attention.head_dim
            transformed_targets = (targets @ attention.phi1.T).reshape(
                z, n, heads, head_dim)
            transformed_contrib = (contributors @ attention.phi1.T).reshape(
                z, n, CONTRIBUTORS, heads, head_dim)
            score_target = (transformed_targets * attention.attn_src).sum(axis=-1)
            score_contrib = (transformed_contrib * attention.attn_dst).sum(axis=-1)
            scores = score_target.reshape(z, n, 1, heads) + score_contrib
            scores = scores.leaky_relu(attention.negative_slope)
            padding = (np.abs(contributors.data).sum(axis=-1) == 0.0)
            if padding.any():
                scores = scores + nn.Tensor(
                    np.where(padding, -1e9, 0.0)[:, :, :, None])
            alpha = scores.softmax(axis=2)
        return alpha.numpy().mean(axis=-1)

    # forward() kept as an alias so the model reads like the paper's Fig. 5.
    forward = forward_graph

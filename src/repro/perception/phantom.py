"""Phantom vehicle construction (paper Section III-B, Eqs. 4-6).

Sensor limitations leave holes in the six-target / six-surrounding
layout of Fig. 2.  Three missing cases are distinguished and filled:

* **range missing** -- beyond the detection radius: a phantom is placed
  at distance R in the corresponding area, moving at the reference
  vehicle's speed (Eq. 4);
* **inherent missing** -- the reference vehicle drives on the leftmost
  or rightmost lane: a phantom rides alongside just off the road as a
  moving boundary (Eq. 5);
* **occlusion missing** -- the outward-aligned neighbor (j == i) hidden
  in the reference target's shadow: a phantom mirrors the ego-to-target
  offset beyond the target (Eq. 6, Fig. 4).

Surroundings of a phantom target are zero-padded rather than built on
top of an uncertain vehicle, except the slot that is the autonomous
vehicle itself (its state is always known).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..sim import constants
from ..sim.road import Road
from ..sim.spatial import SpatialHash
from ..sim.vehicle import VehicleState
from .neighbors import AREA_COUNT, MIRROR_AREA
from .tracking import ObservationBuffer

__all__ = ["TrackKind", "TrackedVehicle", "PerceivedScene", "build_scene",
           "PhantomCache", "PHANTOM_CACHE"]

#: Area indices whose phantom sits one lane to the left / right.
LEFT_AREAS = frozenset({1, 4})
RIGHT_AREAS = frozenset({3, 6})
FRONT_AREAS = frozenset({1, 2, 3})


class TrackKind(Enum):
    """Provenance of a node in the perceived scene."""

    OBSERVED = "observed"
    EGO = "ego"
    PHANTOM_RANGE = "phantom_range"
    PHANTOM_INHERENT = "phantom_inherent"
    PHANTOM_OCCLUSION = "phantom_occlusion"
    ZERO = "zero"

    @property
    def is_phantom(self) -> bool:
        return self in (TrackKind.PHANTOM_RANGE, TrackKind.PHANTOM_INHERENT,
                        TrackKind.PHANTOM_OCCLUSION)


@dataclass
class TrackedVehicle:
    """One node of the perceived scene: a history plus its provenance."""

    kind: TrackKind
    history: list[VehicleState]
    vid: str | None = None

    @property
    def current(self) -> VehicleState:
        return self.history[-1]

    @property
    def indicator(self) -> float:
        """The IF binary code of Eqs. 7-8: 1 for phantoms, else 0."""
        return 1.0 if self.kind.is_phantom else 0.0


@dataclass
class PerceivedScene:
    """The full 1 + 6 + 36 vehicle layout at one decision step.

    Attributes
    ----------
    ego:
        The autonomous vehicle's track (kind EGO).
    targets:
        ``targets[i]`` for area i in 1..6 (paper's C_i).
    surroundings:
        ``surroundings[(i, j)]`` for the paper's C_{i.j}.
    """

    ego: TrackedVehicle
    targets: dict[int, TrackedVehicle]
    surroundings: dict[tuple[int, int], TrackedVehicle]

    def phantom_count(self) -> int:
        """Number of constructed phantom nodes in the scene."""
        nodes = list(self.targets.values()) + list(self.surroundings.values())
        return sum(1 for node in nodes if node.kind.is_phantom)

    def target_mask(self) -> list[float]:
        """Per-target loss/impact mask: 1 only for observed targets."""
        return [1.0 if self.targets[i].kind is TrackKind.OBSERVED else 0.0
                for i in range(1, AREA_COUNT + 1)]


def _area_lane_delta(area: int) -> int:
    if area in LEFT_AREAS:
        return -1
    if area in RIGHT_AREAS:
        return 1
    return 0


def _range_phantom(reference: list[VehicleState], area: int,
                   detection_range: float) -> list[VehicleState]:
    """Eq. 4: a phantom at distance R in the given area of the reference."""
    sign = 1.0 if area in FRONT_AREAS else -1.0
    delta = _area_lane_delta(area)
    return [VehicleState(lat=state.lat + delta,
                         lon=state.lon + sign * detection_range,
                         v=state.v)
            for state in reference]


def _inherent_phantom(reference: list[VehicleState], area: int,
                      num_lanes: int) -> list[VehicleState]:
    """Eq. 5: a moving road boundary alongside the reference vehicle."""
    lane = 0 if area in LEFT_AREAS else num_lanes + 1
    return [VehicleState(lat=lane, lon=state.lon, v=state.v) for state in reference]


def _occlusion_phantom(target: list[VehicleState],
                       ego: list[VehicleState], area: int) -> list[VehicleState]:
    """Eq. 6: mirror the ego-to-target longitudinal offset beyond the target."""
    delta = _area_lane_delta(area)
    return [VehicleState(lat=t_state.lat + delta,
                         lon=t_state.lon + (t_state.lon - e_state.lon),
                         v=t_state.v)
            for t_state, e_state in zip(target, ego)]


_ZERO_TRACKS: dict[int, TrackedVehicle] = {}


def _zero_track(steps: int) -> TrackedVehicle:
    """Shared all-zero padding node (scenes treat nodes as read-only,
    so one instance per history length serves every zero slot)."""
    track = _ZERO_TRACKS.get(steps)
    if track is None:
        zero = VehicleState(lat=0, lon=0.0, v=0.0)
        track = TrackedVehicle(TrackKind.ZERO, [zero] * steps)
        _ZERO_TRACKS[steps] = track
    return track


def _missing_kind(reference_lane: int, area: int, road: Road) -> TrackKind:
    """Classify a hole around an observed reference vehicle (Eqs. 4-5)."""
    if reference_lane == 1 and area in LEFT_AREAS:
        return TrackKind.PHANTOM_INHERENT
    if reference_lane == road.num_lanes and area in RIGHT_AREAS:
        return TrackKind.PHANTOM_INHERENT
    return TrackKind.PHANTOM_RANGE


class PhantomCache:
    """Size-bounded LRU over missing-node construction.

    Phantom geometry (Eqs. 4-5) is a pure function of the reference
    vehicle's history, the area, the lane configuration, and the sensor
    range -- and within one decision step the *same* reference history
    is re-used for up to six areas (the ego for missing targets, each
    target for its missing surroundings), and consecutive steps repeat
    whole keys whenever a vehicle's recent states recur (steady-state
    cruising, the common highway case).
    Keys hash frozen :class:`~repro.sim.vehicle.VehicleState` tuples, so
    hits return histories built from the exact same values -- cached
    construction is bit-identical to uncached (the equivalence test
    locks this down).

    The cache is bounded (default 4096 entries, evicting least-recently
    used) and can be disabled globally (``PHANTOM_CACHE.enabled =
    False``) to A/B against uncached construction.
    """

    def __init__(self, maxsize: int = 4096, enabled: bool = True) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[tuple, tuple[TrackKind, tuple[VehicleState, ...]]]
        self._entries = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._entries)}

    def build_missing(self, reference: list[VehicleState], area: int,
                      road: Road, detection_range: float) -> TrackedVehicle:
        if not self.enabled:
            return _build_missing_uncached(reference, area, road,
                                           detection_range)
        key = (tuple(reference), area, road.num_lanes, detection_range)
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            kind, history = cached
            return TrackedVehicle(kind, list(history))
        self.misses += 1
        node = _build_missing_uncached(reference, area, road, detection_range)
        self._entries[key] = (node.kind, tuple(node.history))
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return node


#: Process-wide cache used by :func:`build_scene`.  VehicleState is a
#: frozen dataclass, so shared cached states cannot be mutated through
#: a returned scene.
PHANTOM_CACHE = PhantomCache()


def _build_missing_uncached(reference: list[VehicleState], area: int,
                            road: Road, detection_range: float) -> TrackedVehicle:
    kind = _missing_kind(reference[-1].lat, area, road)
    if kind is TrackKind.PHANTOM_INHERENT:
        history = _inherent_phantom(reference, area, road.num_lanes)
    else:
        history = _range_phantom(reference, area, detection_range)
    return TrackedVehicle(kind, history)


def _build_missing(reference: list[VehicleState], area: int, road: Road,
                   detection_range: float) -> TrackedVehicle:
    return PHANTOM_CACHE.build_missing(reference, area, road, detection_range)


def build_scene(ego_id: str, ego_history: list[VehicleState],
                buffer: ObservationBuffer, road: Road,
                detection_range: float = constants.SENSOR_RANGE) -> PerceivedScene:
    """Assemble the perceived scene for one decision step.

    Parameters
    ----------
    ego_id / ego_history:
        The autonomous vehicle and its last z states (oldest first).
    buffer:
        Observation buffer already updated with the current frame; every
        tracked vehicle contributes its z-step history.
    road:
        Geometry (for inherent-missing classification).
    detection_range:
        Sensor radius R used for range phantoms.

    Returns
    -------
    A :class:`PerceivedScene` with all 6 targets and 36 surroundings
    filled by observation, phantom construction, ego sharing, or
    zero-padding.
    """
    steps = len(ego_history)
    ego = TrackedVehicle(TrackKind.EGO, list(ego_history), vid=ego_id)
    observed_now = {vid: buffer.current(vid) for vid in buffer.current_ids()
                    if vid != ego_id}

    # A vehicle can fill several node slots (a target and multiple
    # surroundings); share one padded history list per vid.  Nodes treat
    # histories as read-only, so aliasing is safe.
    histories: dict[str, list[VehicleState]] = {}

    def history_of(vid: str) -> list[VehicleState]:
        cached = histories.get(vid)
        if cached is None:
            cached = buffer.history(vid)
            histories[vid] = cached
        return cached

    # One spatial hash answers every neighbor query of the scene: the
    # ego's target selection plus all observed targets' surroundings,
    # as two batched kernel calls instead of up to 7 * |observed|
    # per-pair classifications.  Rows are the observed candidates in
    # buffer order with the ego last -- the scalar candidate iteration
    # order, which the kernel's tie-breaking relies on.  Each query
    # center is itself a row; the strict same-lane bounds exclude it
    # from its own result exactly like the scalar candidate filtering.
    count = len(observed_now)
    ids = list(observed_now)
    lane = np.empty(count + 1, dtype=np.int64)
    lon = np.empty(count + 1, dtype=np.float64)
    for row, vid in enumerate(ids):
        state = observed_now[vid]
        lane[row] = state.lat
        lon[row] = state.lon
    lane[count] = ego.current.lat
    lon[count] = ego.current.lon
    index = SpatialHash(lane, lon, road.num_lanes)

    # Step 1: select targets around the ego.
    ego_areas = index.six_area_neighbors(lane[count:], lon[count:])[0]
    targets: dict[int, TrackedVehicle] = {}
    for area in range(1, AREA_COUNT + 1):
        row = int(ego_areas[area - 1])
        if row >= 0:
            vid = ids[row]
            targets[area] = TrackedVehicle(TrackKind.OBSERVED, history_of(vid), vid=vid)
        else:
            # Step 2a: missing target (Eq. 4 / Eq. 5 with A as reference).
            targets[area] = _build_missing(ego_history, area, road, detection_range)

    # Step 2b: surroundings of each observed target, one batched query.
    observed_areas = [area for area in range(1, AREA_COUNT + 1)
                      if not targets[area].kind.is_phantom]
    if observed_areas:
        sub_rows = index.six_area_neighbors(
            np.fromiter((targets[area].current.lat for area in observed_areas),
                        dtype=np.int64, count=len(observed_areas)),
            np.fromiter((targets[area].current.lon for area in observed_areas),
                        dtype=np.float64, count=len(observed_areas)))
    surroundings: dict[tuple[int, int], TrackedVehicle] = {}
    observed_position = 0
    for area in range(1, AREA_COUNT + 1):
        target = targets[area]
        mirror = MIRROR_AREA[area]
        if target.kind.is_phantom:
            # Never construct phantoms on top of an uncertain vehicle.
            for sub_area in range(1, AREA_COUNT + 1):
                surroundings[(area, sub_area)] = \
                    ego if sub_area == mirror else _zero_track(steps)
            continue
        chosen = sub_rows[observed_position]
        observed_position += 1
        for sub_area in range(1, AREA_COUNT + 1):
            if sub_area == mirror:
                # Footnote 1: the ego itself surrounds every target.
                surroundings[(area, sub_area)] = ego
                continue
            row = int(chosen[sub_area - 1])
            if 0 <= row < count:
                vid = ids[row]
                surroundings[(area, sub_area)] = TrackedVehicle(
                    TrackKind.OBSERVED, history_of(vid), vid=vid)
            elif row == count:
                surroundings[(area, sub_area)] = ego
            elif sub_area == area and _occlusion_possible(target.current, area, road):
                # Eq. 6: prioritized occlusion missing on the aligned diagonal.
                surroundings[(area, sub_area)] = TrackedVehicle(
                    TrackKind.PHANTOM_OCCLUSION,
                    _occlusion_phantom(target.history, ego_history, area))
            else:
                surroundings[(area, sub_area)] = _build_missing(
                    target.history, sub_area, road, detection_range)

    return PerceivedScene(ego=ego, targets=targets, surroundings=surroundings)


def _occlusion_possible(target: VehicleState, area: int, road: Road) -> bool:
    """The Eq. 6 construction must stay on a drivable lane."""
    lane = target.lat + _area_lane_delta(area)
    return road.is_valid_lane(lane)

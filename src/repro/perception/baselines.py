"""State-prediction baselines (paper Section V-A "Other Compared Methods").

Three published trajectory predictors adapted, as in the paper, to the
one-step state prediction task:

* **LSTM-MLP** (Altche & de La Fortelle 2017): a vanilla LSTM over each
  target's own history followed by an MLP head; no interaction
  modeling.
* **ED-LSTM** (Park et al. 2018): an LSTM encoder-decoder; the decoder
  runs one step to emit the one-step prediction.
* **GAS-LED** (Liu et al. 2021): global attention and state sharing
  LSTM encoder-decoder -- a shared encoder embeds *every* vehicle in
  the scene, each target attends over all encodings (global attention),
  and a decoder head emits the prediction.

All three share the :meth:`StatePredictor.forward_graph` interface with
LST-GAT so training, evaluation and benchmarks treat them uniformly.
Their ``predict_each`` method deliberately runs one target at a time --
the sequential inference style the paper criticizes in Sec. III-A(3) --
while LST-GAT predicts all targets in a single pass.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from .graph import CONTRIBUTORS, FEATURE_DIM, SpatialTemporalGraph
from .predictor import OUTPUT_DIM, StatePredictor
from ..seeding import resolve_rng

__all__ = ["LSTMMLP", "EDLSTM", "GASLED"]

class LSTMMLP(StatePredictor):
    """Vanilla LSTM + MLP head; each target processed independently."""

    def __init__(self, hidden_dim: int = 64,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = resolve_rng(rng)
        self.lstm = nn.LSTM(2 * FEATURE_DIM, hidden_dim, rng=rng)
        self.head = nn.MLP([hidden_dim, hidden_dim, OUTPUT_DIM], rng=rng)

    def forward_graph(self, graph: SpatialTemporalGraph) -> nn.Tensor:
        _, (hidden, _) = self.lstm(self._target_with_ego_sequences(graph))
        return self.head(hidden)


class EDLSTM(StatePredictor):
    """LSTM encoder-decoder; the decoder runs a single step."""

    def __init__(self, hidden_dim: int = 64,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = resolve_rng(rng)
        self.encoder = nn.LSTM(2 * FEATURE_DIM, hidden_dim, rng=rng)
        self.decoder = nn.LSTMCell(2 * FEATURE_DIM, hidden_dim, rng=rng)
        self.head = nn.Linear(hidden_dim, OUTPUT_DIM, rng=rng)

    def forward_graph(self, graph: SpatialTemporalGraph) -> nn.Tensor:
        sequences = self._target_with_ego_sequences(graph)
        _, (hidden, cell) = self.encoder(sequences)
        last_input = sequences[:, -1, :]
        hidden, _ = self.decoder(last_input, hidden, cell)
        return self.head(hidden)


class GASLED(StatePredictor):
    """Global attention + state sharing LSTM encoder-decoder.

    A shared encoder embeds all 42 scene nodes (6 targets x 7
    contributors); each target's query attends over every node encoding
    (scaled dot-product), and the context is concatenated with the
    target encoding before the decoding head.  Encoding the full scene
    is what makes this the slowest but (pre-LST-GAT) most accurate
    compared method.
    """

    def __init__(self, hidden_dim: int = 64,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = resolve_rng(rng)
        self.hidden_dim = hidden_dim
        self.encoder = nn.LSTM(FEATURE_DIM, hidden_dim, rng=rng)
        self.target_encoder = nn.LSTM(2 * FEATURE_DIM, hidden_dim, rng=rng)
        self.query = nn.Linear(hidden_dim, hidden_dim, rng=rng)
        self.key = nn.Linear(hidden_dim, hidden_dim, rng=rng)
        self.decoder = nn.LSTMCell(hidden_dim, hidden_dim, rng=rng)
        self.head = nn.Linear(2 * hidden_dim, OUTPUT_DIM, rng=rng)

    def forward_graph(self, graph: SpatialTemporalGraph) -> nn.Tensor:
        z, n_targets = graph.target_features.shape[:2]
        # Encode every scene node with the shared ("state sharing") encoder.
        all_nodes = graph.contributor_features.reshape(z, n_targets * CONTRIBUTORS, FEATURE_DIM)
        node_sequences = nn.Tensor(all_nodes.transpose(1, 0, 2))
        _, (node_hidden, _) = self.encoder(node_sequences)     # (n*7, D)
        target_sequences = self._target_with_ego_sequences(graph)
        _, (target_hidden, target_cell) = self.target_encoder(target_sequences)  # (n, D)

        # Global attention: every target attends over all node encodings.
        queries = self.query(target_hidden)                    # (n, D)
        keys = self.key(node_hidden)                           # (n*7, D)
        scores = (queries @ keys.T) * (1.0 / np.sqrt(self.hidden_dim))
        alpha = scores.softmax(axis=-1)                        # (n, n*7)
        context = alpha @ node_hidden                          # (n, D)

        decoded, _ = self.decoder(context, target_hidden, target_cell)
        return self.head(nn.concat([decoded, context], axis=1))

"""Enhanced perception module: sensor, phantom construction, LST-GAT."""

from .sensor import Sensor, segment_intersects_rectangle
from .neighbors import AREA_COUNT, MIRROR_AREA, area_of, select_neighbors
from .tracking import ObservationBuffer
from .phantom import TrackKind, TrackedVehicle, PerceivedScene, build_scene
from .graph import (SpatialTemporalGraph, build_graph, to_networkx,
                    FEATURE_DIM, CONTRIBUTORS)
from .predictor import StatePredictor, OUTPUT_DIM
from .lstgat import LSTGAT
from .baselines import LSTMMLP, EDLSTM, GASLED
from .dataset import PredictionSample, build_samples, collate, train_test_samples
from .training import (TrainingResult, train_predictor, evaluate_predictor,
                       AccuracyReport)
from .multistep import rollout, HorizonErrors, horizon_errors
from .module import PerceptionFrame, EnhancedPerception

__all__ = [
    "Sensor", "segment_intersects_rectangle",
    "AREA_COUNT", "MIRROR_AREA", "area_of", "select_neighbors",
    "ObservationBuffer",
    "TrackKind", "TrackedVehicle", "PerceivedScene", "build_scene",
    "SpatialTemporalGraph", "build_graph", "to_networkx", "FEATURE_DIM", "CONTRIBUTORS",
    "StatePredictor", "OUTPUT_DIM", "LSTGAT", "LSTMMLP", "EDLSTM", "GASLED",
    "PredictionSample", "build_samples", "collate", "train_test_samples",
    "TrainingResult", "train_predictor", "evaluate_predictor", "AccuracyReport",
    "rollout", "HorizonErrors", "horizon_errors",
    "PerceptionFrame", "EnhancedPerception",
]

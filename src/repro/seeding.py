"""Central RNG policy: every stochastic component draws from a seeded stream.

PR 2's crash-safe checkpointing restores :class:`numpy.random.Generator`
state in place, so bit-exact resume only works when *every* generator in
the system is an explicit, seeded ``Generator`` -- an anonymous
``np.random.default_rng()`` (OS-entropy seeded) silently breaks that
contract.  The ``reprolint`` rules ``unseeded-rng`` and ``rng-fallback``
(:mod:`repro.analysis`) enforce at CI time that no such call sneaks back
in; this module provides the sanctioned replacement.

Components that accept an optional ``rng`` argument resolve it through
:func:`resolve_rng`: an injected generator is used as-is (and type
checked), while ``None`` derives a fresh generator from the module-level
:data:`DEFAULT_SEED`.  Construction is therefore reproducible *by
default*: two identically-configured models built without an explicit
generator receive identical parameters.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DEFAULT_SEED", "default_generator", "resolve_rng"]

#: Seed used whenever a component is built without an injected generator.
DEFAULT_SEED = 0


def default_generator(
    seed: int | list[int] | tuple[int, ...] | np.random.SeedSequence | None = None,
) -> np.random.Generator:
    """Return a fresh seeded generator (:data:`DEFAULT_SEED` when unset).

    ``seed`` may be anything ``np.random.default_rng`` accepts explicitly
    (int, entropy list, ``SeedSequence``); only ``None`` is rewritten to
    the policy default -- OS entropy never leaks in.
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def resolve_rng(rng: np.random.Generator | None,
                seed: int | None = None) -> np.random.Generator:
    """Resolve an optional injected generator to a concrete seeded one.

    Parameters
    ----------
    rng:
        A caller-provided generator, used verbatim when not ``None``.
        Anything else raises ``TypeError`` -- passing a bare int seed or
        a legacy ``RandomState`` here is a bug, not a convenience.
    seed:
        Seed for the fallback stream; defaults to :data:`DEFAULT_SEED`.
    """
    if rng is None:
        return default_generator(seed)
    if not isinstance(rng, np.random.Generator):
        raise TypeError(
            f"rng must be a numpy.random.Generator or None, got {type(rng).__name__}")
    return rng

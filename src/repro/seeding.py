"""Central RNG policy: every stochastic component draws from a seeded stream.

PR 2's crash-safe checkpointing restores :class:`numpy.random.Generator`
state in place, so bit-exact resume only works when *every* generator in
the system is an explicit, seeded ``Generator`` -- an anonymous
``np.random.default_rng()`` (OS-entropy seeded) silently breaks that
contract.  The ``reprolint`` rules ``unseeded-rng`` and ``rng-fallback``
(:mod:`repro.analysis`) enforce at CI time that no such call sneaks back
in; this module provides the sanctioned replacement.

Components that accept an optional ``rng`` argument resolve it through
:func:`resolve_rng`: an injected generator is used as-is (and type
checked), while ``None`` derives a fresh generator from the module-level
:data:`DEFAULT_SEED`.  Construction is therefore reproducible *by
default*: two identically-configured models built without an explicit
generator receive identical parameters.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DEFAULT_SEED", "default_generator", "resolve_rng",
           "spawn_sequence", "spawn_stream"]

#: Seed used whenever a component is built without an injected generator.
DEFAULT_SEED = 0


def spawn_sequence(root: int | np.random.SeedSequence,
                   *key: int) -> np.random.SeedSequence:
    """A child ``SeedSequence`` of ``root`` addressed by ``key``.

    The child is a pure function of ``(root, key)`` -- the same address
    always yields the same stream, no matter how many other children
    exist or in which order they are spawned.  This is what makes
    parallel experience generation scheduling-independent: worker k's
    stream for episode e is ``spawn_sequence(seed, e)`` regardless of
    which worker runs it, how many workers there are, or when.

    Implemented with ``spawn_key`` addressing rather than
    ``SeedSequence.spawn()`` because ``spawn()`` is *stateful* (each call
    advances ``n_children_spawned``), which would make streams depend on
    spawn order -- exactly the nondeterminism this helper exists to rule
    out.
    """
    if isinstance(root, np.random.SeedSequence):
        entropy = root.entropy
        base_key = tuple(root.spawn_key)
    else:
        entropy = root
        base_key = ()
    return np.random.SeedSequence(entropy=entropy, spawn_key=base_key + key)


def spawn_stream(root: int | np.random.SeedSequence,
                 *key: int) -> np.random.Generator:
    """A seeded generator on the :func:`spawn_sequence` stream for ``key``."""
    return default_generator(spawn_sequence(root, *key))


def default_generator(
    seed: int | list[int] | tuple[int, ...] | np.random.SeedSequence | None = None,
) -> np.random.Generator:
    """Return a fresh seeded generator (:data:`DEFAULT_SEED` when unset).

    ``seed`` may be anything ``np.random.default_rng`` accepts explicitly
    (int, entropy list, ``SeedSequence``); only ``None`` is rewritten to
    the policy default -- OS entropy never leaks in.
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def resolve_rng(rng: np.random.Generator | None,
                seed: int | None = None) -> np.random.Generator:
    """Resolve an optional injected generator to a concrete seeded one.

    Parameters
    ----------
    rng:
        A caller-provided generator, used verbatim when not ``None``.
        Anything else raises ``TypeError`` -- passing a bare int seed or
        a legacy ``RandomState`` here is a bug, not a convenience.
    seed:
        Seed for the fallback stream; defaults to :data:`DEFAULT_SEED`.
    """
    if rng is None:
        return default_generator(seed)
    if not isinstance(rng, np.random.Generator):
        raise TypeError(
            f"rng must be a numpy.random.Generator or None, got {type(rng).__name__}")
    return rng

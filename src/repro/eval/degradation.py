"""Degradation sweeps: robustness as a measured quantity.

Runs the same seeded evaluation episodes under a family of
:class:`~repro.faults.schedule.FaultSchedule` intensities and reports
how the paper's safety/efficiency/impact metrics move with the fault
rate -- the robustness analogue of ``BENCH_sim.json``.  At intensity
0.0 the sweep is bit-identical to a plain
:func:`~repro.eval.episodes.evaluate_controller` run, which anchors the
curve and doubles as a regression guard on the injection machinery.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..decision.environment import DrivingEnv
from ..decision.policies import Controller
from ..decision.safety import SafetyFallbackPolicy
from ..faults.guard import PerceptionGuard
from ..faults.injector import FaultInjector, FaultLog, FaultySensor
from ..faults.schedule import FaultSchedule
from ..perception.module import EnhancedPerception
from ..perception.sensor import Sensor
from .episodes import run_episode
from .metrics import EvaluationReport, aggregate

__all__ = ["FaultyHarness", "DegradationPoint", "DegradationReport",
           "build_faulty_env", "degradation_sweep"]


@dataclass
class FaultyHarness:
    """A driving environment with its fault injector and guard exposed."""

    env: DrivingEnv
    injector: FaultInjector
    guard: PerceptionGuard | None


def build_faulty_env(head, schedule: FaultSchedule,
                     max_steps: int | None = None) -> FaultyHarness:
    """A fresh fault-injected environment for a HEAD-like object.

    ``head`` needs ``config``, ``predictor``, ``reward`` and ``road()``
    (duck-typed to avoid importing :mod:`repro.core` from the eval
    layer).  Perception is rebuilt -- not shared with ``head`` -- so
    nominal evaluation state is never polluted by fault realizations.
    """
    cfg = head.config
    injector = FaultInjector(schedule)
    sensor = FaultySensor(Sensor(detection_range=cfg.sensor_range), injector)
    guard = PerceptionGuard(head.predictor) if head.predictor is not None else None
    perception = EnhancedPerception(
        predictor=guard if guard is not None else None,
        sensor=sensor,
        history_steps=cfg.history_steps,
        use_phantoms=cfg.use_phantoms,
    )
    env = DrivingEnv(perception, reward=head.reward, road=head.road(),
                     density_per_km=cfg.density_per_km,
                     max_steps=max_steps or cfg.max_episode_steps,
                     faults=injector)
    return FaultyHarness(env=env, injector=injector, guard=guard)


@dataclass(frozen=True)
class DegradationPoint:
    """Metrics of one fault intensity."""

    intensity: float
    report: EvaluationReport
    fault_events: dict[str, int]
    guard_frames: int
    guard_degraded_frames: int
    guard_degraded_targets: int
    fallback_overrides: int

    def as_dict(self) -> dict:
        return {
            "intensity": self.intensity,
            "collisions": self.report.collisions,
            "episodes": self.report.episodes,
            "avg_v_a": self.report.avg_v_a,
            "min_ttc_a": self.report.min_ttc_a,
            "avg_j_a": self.report.avg_j_a,
            "avg_count_ca": self.report.avg_count_ca,
            "avg_d_ca": self.report.avg_d_ca,
            "fault_events": dict(self.fault_events),
            "guard_frames": self.guard_frames,
            "guard_degraded_frames": self.guard_degraded_frames,
            "guard_degraded_targets": self.guard_degraded_targets,
            "fallback_overrides": self.fallback_overrides,
        }


@dataclass
class DegradationReport:
    """The full sweep: one :class:`DegradationPoint` per intensity."""

    points: list[DegradationPoint]

    def as_dict(self) -> dict:
        return {"points": [point.as_dict() for point in self.points]}

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_dict(), indent=2) + "\n")
        return path

    def render(self) -> str:
        """Plain-text table of the sweep (one row per intensity)."""
        header = (f"{'intensity':>9}  {'collisions':>10}  {'AvgV-A':>7}  "
                  f"{'MinTTC-A':>8}  {'faults':>7}  {'degraded':>8}  "
                  f"{'overrides':>9}")
        rows = [header, "-" * len(header)]
        for point in self.points:
            faults = sum(point.fault_events.values())
            rows.append(
                f"{point.intensity:>9.2f}  "
                f"{point.report.collisions:>6}/{point.report.episodes:<3}  "
                f"{point.report.avg_v_a:>7.2f}  {point.report.min_ttc_a:>8.2f}  "
                f"{faults:>7}  {point.guard_degraded_frames:>8}  "
                f"{point.fallback_overrides:>9}")
        return "\n".join(rows)


def degradation_sweep(head, intensities: list[float], seeds: list[int] | range,
                      max_steps: int | None = None, use_fallback: bool = True,
                      fault_seed: int = 0) -> DegradationReport:
    """Evaluate ``head`` under each fault intensity over the same seeds.

    Every intensity gets a fresh environment and injector (schedules
    derived via :meth:`FaultSchedule.scaled` from ``fault_seed``), and
    optionally a :class:`SafetyFallbackPolicy` around the controller.
    Raises if any episode produces a non-finite observation or action
    -- the graceful-degradation contract is that faults degrade
    metrics, never numerics.
    """
    seeds = list(seeds)
    points: list[DegradationPoint] = []
    for intensity in intensities:
        schedule = FaultSchedule.scaled(intensity, seed=fault_seed)
        harness = build_faulty_env(head, schedule, max_steps=max_steps)
        controller: Controller = head.controller()
        fallback: SafetyFallbackPolicy | None = None
        if use_fallback:
            fallback = SafetyFallbackPolicy(controller, guard=harness.guard)
            controller = fallback
        fault_events = FaultLog()
        results = []
        for seed in seeds:
            results.append(run_episode(controller, harness.env, seed,
                                       max_steps=max_steps))
            _assert_finite_episode(results[-1], intensity, seed)
            fault_events.merge(harness.env.faults.log)
        stats = harness.guard.stats if harness.guard is not None else None
        points.append(DegradationPoint(
            intensity=float(intensity),
            report=aggregate(results, harness.env.road.length),
            fault_events=fault_events.as_dict(),
            guard_frames=stats.frames if stats else 0,
            guard_degraded_frames=stats.degraded_frames if stats else 0,
            guard_degraded_targets=stats.degraded_targets if stats else 0,
            fallback_overrides=fallback.overrides if fallback else 0,
        ))
    return DegradationReport(points=points)


def _assert_finite_episode(result, intensity: float, seed: int) -> None:
    for record in result.records:
        values = [record.av_velocity, record.av_accel, record.av_jerk,
                  record.reward.total]
        if not np.isfinite(values).all():
            raise AssertionError(
                f"non-finite step record at intensity {intensity}, "
                f"seed {seed}: {record}")

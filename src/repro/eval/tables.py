"""Plain-text table rendering in the paper's layout.

Each benchmark prints the same rows the paper reports; these helpers
keep the formatting consistent and machine-greppable.
"""

from __future__ import annotations

from typing import Sequence

from .metrics import EvaluationReport

__all__ = ["render_table", "render_metric_table", "PAPER_COLUMNS"]

#: Column headers of Tables I and II.
PAPER_COLUMNS = ["AvgDT-A(s)", "AvgDT-C(s)", "Avg#-CA", "MinTTC-A(s)",
                 "AvgV-A(m/s)", "AvgJ-A(m/s2)", "AvgD-CA(m/s)"]


def render_table(title: str, headers: Sequence[str],
                 rows: dict[str, Sequence[float]],
                 precision: int = 2) -> str:
    """Render a titled ASCII table: one named row per method."""
    name_width = max([len(name) for name in rows] + [len("Method")])
    cells = {
        name: [f"{value:.{precision}f}" for value in values]
        for name, values in rows.items()
    }
    widths = [max([len(header)] + [len(cells[name][index]) for name in rows])
              for index, header in enumerate(headers)]
    lines = [title]
    header_line = "Method".ljust(name_width) + "  " + "  ".join(
        header.rjust(width) for header, width in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for name, values in cells.items():
        lines.append(name.ljust(name_width) + "  " + "  ".join(
            value.rjust(width) for value, width in zip(values, widths)))
    return "\n".join(lines)


def render_metric_table(title: str,
                        reports: dict[str, EvaluationReport]) -> str:
    """Render Table I/II style output from evaluation reports."""
    return render_table(title, PAPER_COLUMNS,
                        {name: report.row() for name, report in reports.items()})

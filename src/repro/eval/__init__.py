"""Evaluation harness: episode execution, paper metrics, table rendering."""

from .metrics import (EvaluationReport, aggregate, FleetImpactReport,
                      aggregate_fleet)
from .episodes import (run_episode, evaluate_controller,
                       evaluate_controller_batch, run_fleet_episode,
                       evaluate_fleet, RewardStats,
                       reward_statistics)
from .tables import render_table, render_metric_table, PAPER_COLUMNS
from .significance import ConfidenceInterval, bootstrap_mean, bootstrap_difference
from .degradation import (FaultyHarness, DegradationPoint, DegradationReport,
                          build_faulty_env, degradation_sweep)

__all__ = [
    "EvaluationReport", "aggregate", "FleetImpactReport", "aggregate_fleet",
    "run_episode", "evaluate_controller", "evaluate_controller_batch",
    "run_fleet_episode", "evaluate_fleet",
    "RewardStats", "reward_statistics",
    "render_table", "render_metric_table", "PAPER_COLUMNS",
    "ConfidenceInterval", "bootstrap_mean", "bootstrap_difference",
    "FaultyHarness", "DegradationPoint", "DegradationReport",
    "build_faulty_env", "degradation_sweep",
]

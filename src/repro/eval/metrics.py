"""Macroscopic and microscopic evaluation metrics (paper Section V-B).

Aggregates :class:`~repro.decision.environment.EpisodeResult` records
into the seven Table I/II columns:

Macroscopic
    * **AvgDT-A** -- average end-to-end driving time of the AV (s);
    * **AvgDT-C** -- average driving time of conventional vehicles
      within 100 m behind the AV (s);
    * **Avg#-CA** -- average number of times per episode the AV forces
      its rear vehicle to decelerate by more than 0.5 m/s.

Microscopic
    * **MinTTC-A** -- minimum time-to-collision of the AV (s);
    * **AvgV-A** -- average AV velocity (m/s);
    * **AvgJ-A** -- average AV jerk magnitude (m/s^2 per step);
    * **AvgD-CA** -- average deceleration imposed on the rear vehicle (m/s).

Episodes truncated before the road end (scaled-down runs) contribute a
velocity-based driving-time estimate ``road_length / mean_velocity`` so
the metric stays comparable across configurations; completed episodes
use the exact step count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..decision.environment import EpisodeResult
from ..sim import constants

__all__ = ["EvaluationReport", "aggregate", "FleetImpactReport",
           "aggregate_fleet"]


@dataclass(frozen=True)
class EvaluationReport:
    """The seven paper metrics plus bookkeeping."""

    avg_dt_a: float
    avg_dt_c: float
    avg_count_ca: float
    min_ttc_a: float
    avg_v_a: float
    avg_j_a: float
    avg_d_ca: float
    episodes: int
    collisions: int

    def row(self) -> list[float]:
        """Values in the paper's column order."""
        return [self.avg_dt_a, self.avg_dt_c, self.avg_count_ca,
                self.min_ttc_a, self.avg_v_a, self.avg_j_a, self.avg_d_ca]


def aggregate(results: list[EpisodeResult], road_length: float) -> EvaluationReport:
    """Fold episode results into an :class:`EvaluationReport`."""
    if not results:
        raise ValueError("no episodes to aggregate")
    dt_a: list[float] = []
    dt_c: list[float] = []
    counts: list[float] = []
    ttcs: list[float] = []
    velocities: list[float] = []
    jerks: list[float] = []
    rear_drops: list[float] = []
    collisions = 0

    for result in results:
        records = result.records
        if not records:
            continue
        mean_v = float(np.mean([record.av_velocity for record in records]))
        if result.finished:
            dt_a.append(result.steps * constants.DT)
        else:
            dt_a.append(road_length / max(mean_v, 0.1))
        trailing = [record.trailing_mean_velocity for record in records
                    if record.trailing_mean_velocity is not None]
        if trailing:
            dt_c.append(road_length / max(float(np.mean(trailing)), 0.1))
        counts.append(sum(1 for record in records if record.impact_event))
        ttcs.extend(record.ttc for record in records if record.ttc is not None)
        velocities.extend(record.av_velocity for record in records)
        jerks.extend(record.av_jerk for record in records)
        rear_drops.extend(record.rear_velocity_drop for record in records
                          if record.rear_velocity_drop is not None
                          and record.rear_velocity_drop > 0.0)
        collisions += 1 if result.collided else 0

    return EvaluationReport(
        avg_dt_a=float(np.mean(dt_a)),
        avg_dt_c=float(np.mean(dt_c)) if dt_c else float("nan"),
        avg_count_ca=float(np.mean(counts)),
        min_ttc_a=float(np.min(ttcs)) if ttcs else float("inf"),
        avg_v_a=float(np.mean(velocities)),
        avg_j_a=float(np.mean(jerks)),
        avg_d_ca=float(np.mean(rear_drops)) if rear_drops else 0.0,
        episodes=len(results),
        collisions=collisions,
    )


@dataclass(frozen=True)
class FleetImpactReport:
    """Fleet-level impact metrics: who disturbs whom.

    The paper's impact metrics (Avg#-CA / AvgD-CA) measure the AV's
    disturbance of conventional traffic.  At fleet scale the same rear
    slowdown events split by the class of the disturbed follower:

    * ``avg_count_av_on_cv`` / ``avg_d_av_on_cv`` -- per-episode impact
      event count and mean imposed deceleration when the rear vehicle
      is conventional (the classic metric, summed over the fleet);
    * ``avg_count_av_on_av`` / ``avg_d_av_on_av`` -- the same when the
      disturbed follower is another fleet member: disturbance the
      fleet absorbs internally;
    * ``av_av_collision_rate`` -- per-episode count of AVs that
      collided with another AV (only measurable at M >= 2).
    """

    num_avs: int
    episodes: int
    avg_v_fleet: float
    avg_j_fleet: float
    min_ttc_fleet: float
    avg_count_av_on_cv: float
    avg_count_av_on_av: float
    avg_d_av_on_cv: float
    avg_d_av_on_av: float
    collision_rate: float
    av_av_collision_rate: float
    finished_rate: float
    mean_reward: float


def aggregate_fleet(results: list) -> FleetImpactReport:
    """Fold :class:`~repro.decision.fleet.FleetEpisodeResult` runs.

    For M=1 fleets, ``avg_count_av_on_cv`` equals the single-AV
    report's Avg#-CA (every follower is conventional) and the AV-on-AV
    columns are identically zero.
    """
    if not results:
        raise ValueError("no fleet episodes to aggregate")
    velocities: list[float] = []
    jerks: list[float] = []
    ttcs: list[float] = []
    counts_cv: list[float] = []
    counts_av: list[float] = []
    drops_cv: list[float] = []
    drops_av: list[float] = []
    rewards: list[float] = []
    collisions = 0
    av_av_collisions = 0
    finished = 0
    av_total = 0

    for result in results:
        av_total += len(result.av_ids)
        collisions += result.collisions
        av_av_collisions += result.av_av_collisions
        finished += result.finished
        rewards.append(result.total_reward)
        count_cv = 0
        count_av = 0
        for fleet_record in result.fleet_records:
            record = fleet_record.record
            velocities.append(record.av_velocity)
            jerks.append(record.av_jerk)
            if record.ttc is not None:
                ttcs.append(record.ttc)
            drop = record.rear_velocity_drop
            if drop is not None and drop > 0.0:
                (drops_av if fleet_record.rear_is_av else drops_cv).append(drop)
            if record.impact_event:
                if fleet_record.rear_is_av:
                    count_av += 1
                else:
                    count_cv += 1
        counts_cv.append(count_cv)
        counts_av.append(count_av)

    episodes = len(results)
    return FleetImpactReport(
        num_avs=results[0].av_ids and len(results[0].av_ids) or 0,
        episodes=episodes,
        avg_v_fleet=float(np.mean(velocities)) if velocities else 0.0,
        avg_j_fleet=float(np.mean(jerks)) if jerks else 0.0,
        min_ttc_fleet=float(np.min(ttcs)) if ttcs else float("inf"),
        avg_count_av_on_cv=float(np.mean(counts_cv)),
        avg_count_av_on_av=float(np.mean(counts_av)),
        avg_d_av_on_cv=float(np.mean(drops_cv)) if drops_cv else 0.0,
        avg_d_av_on_av=float(np.mean(drops_av)) if drops_av else 0.0,
        collision_rate=collisions / max(av_total, 1),
        av_av_collision_rate=av_av_collisions / episodes,
        finished_rate=finished / max(av_total, 1),
        mean_reward=float(np.mean(rewards)),
    )

"""Macroscopic and microscopic evaluation metrics (paper Section V-B).

Aggregates :class:`~repro.decision.environment.EpisodeResult` records
into the seven Table I/II columns:

Macroscopic
    * **AvgDT-A** -- average end-to-end driving time of the AV (s);
    * **AvgDT-C** -- average driving time of conventional vehicles
      within 100 m behind the AV (s);
    * **Avg#-CA** -- average number of times per episode the AV forces
      its rear vehicle to decelerate by more than 0.5 m/s.

Microscopic
    * **MinTTC-A** -- minimum time-to-collision of the AV (s);
    * **AvgV-A** -- average AV velocity (m/s);
    * **AvgJ-A** -- average AV jerk magnitude (m/s^2 per step);
    * **AvgD-CA** -- average deceleration imposed on the rear vehicle (m/s).

Episodes truncated before the road end (scaled-down runs) contribute a
velocity-based driving-time estimate ``road_length / mean_velocity`` so
the metric stays comparable across configurations; completed episodes
use the exact step count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..decision.environment import EpisodeResult
from ..sim import constants

__all__ = ["EvaluationReport", "aggregate"]


@dataclass(frozen=True)
class EvaluationReport:
    """The seven paper metrics plus bookkeeping."""

    avg_dt_a: float
    avg_dt_c: float
    avg_count_ca: float
    min_ttc_a: float
    avg_v_a: float
    avg_j_a: float
    avg_d_ca: float
    episodes: int
    collisions: int

    def row(self) -> list[float]:
        """Values in the paper's column order."""
        return [self.avg_dt_a, self.avg_dt_c, self.avg_count_ca,
                self.min_ttc_a, self.avg_v_a, self.avg_j_a, self.avg_d_ca]


def aggregate(results: list[EpisodeResult], road_length: float) -> EvaluationReport:
    """Fold episode results into an :class:`EvaluationReport`."""
    if not results:
        raise ValueError("no episodes to aggregate")
    dt_a: list[float] = []
    dt_c: list[float] = []
    counts: list[float] = []
    ttcs: list[float] = []
    velocities: list[float] = []
    jerks: list[float] = []
    rear_drops: list[float] = []
    collisions = 0

    for result in results:
        records = result.records
        if not records:
            continue
        mean_v = float(np.mean([record.av_velocity for record in records]))
        if result.finished:
            dt_a.append(result.steps * constants.DT)
        else:
            dt_a.append(road_length / max(mean_v, 0.1))
        trailing = [record.trailing_mean_velocity for record in records
                    if record.trailing_mean_velocity is not None]
        if trailing:
            dt_c.append(road_length / max(float(np.mean(trailing)), 0.1))
        counts.append(sum(1 for record in records if record.impact_event))
        ttcs.extend(record.ttc for record in records if record.ttc is not None)
        velocities.extend(record.av_velocity for record in records)
        jerks.extend(record.av_jerk for record in records)
        rear_drops.extend(record.rear_velocity_drop for record in records
                          if record.rear_velocity_drop is not None
                          and record.rear_velocity_drop > 0.0)
        collisions += 1 if result.collided else 0

    return EvaluationReport(
        avg_dt_a=float(np.mean(dt_a)),
        avg_dt_c=float(np.mean(dt_c)) if dt_c else float("nan"),
        avg_count_ca=float(np.mean(counts)),
        min_ttc_a=float(np.min(ttcs)) if ttcs else float("inf"),
        avg_v_a=float(np.mean(velocities)),
        avg_j_a=float(np.mean(jerks)),
        avg_d_ca=float(np.mean(rear_drops)) if rear_drops else 0.0,
        episodes=len(results),
        collisions=collisions,
    )

"""Episode execution for evaluation: drive a controller through seeded episodes."""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..decision.environment import DrivingEnv, EpisodeResult
from ..decision.policies import Controller
from .metrics import EvaluationReport, aggregate

__all__ = ["run_episode", "evaluate_controller", "RewardStats", "reward_statistics"]


def run_episode(controller: Controller, env: DrivingEnv, seed: int,
                max_steps: int | None = None) -> EpisodeResult:
    """Run one greedy episode under ``controller``; returns its result."""
    state = env.reset(seed)
    controller.begin_episode()
    cap = max_steps or env.max_steps
    steps = 0
    while steps < cap:
        action = controller.select_action(env, state)
        state, _, done, _ = env.step(action)
        steps += 1
        if done or state is None:
            break
    return env.result


def evaluate_controller(controller: Controller, env: DrivingEnv,
                        seeds: list[int] | range,
                        max_steps: int | None = None) -> EvaluationReport:
    """Run the test episodes (paper: 500) and aggregate the metrics."""
    results = [run_episode(controller, env, seed, max_steps=max_steps)
               for seed in seeds]
    return aggregate(results, env.road.length)


@dataclass(frozen=True)
class RewardStats:
    """Table V quantities: per-episode mean rewards summarized."""

    min_reward: float
    max_reward: float
    avg_reward: float
    avg_inference_ms: float


def reward_statistics(controller: Controller, env: DrivingEnv,
                      seeds: list[int] | range,
                      max_steps: int | None = None) -> RewardStats:
    """Episode mean-reward min/max/avg plus average per-step decision latency."""
    episode_rewards: list[float] = []
    latencies: list[float] = []
    for seed in seeds:
        state = env.reset(seed)
        controller.begin_episode()
        cap = max_steps or env.max_steps
        steps = 0
        while steps < cap:
            start = time.perf_counter()
            action = controller.select_action(env, state)
            latencies.append(time.perf_counter() - start)
            state, _, done, _ = env.step(action)
            steps += 1
            if done or state is None:
                break
        episode_rewards.append(env.result.mean_reward)
    rewards = np.array(episode_rewards)
    return RewardStats(
        min_reward=float(rewards.min()),
        max_reward=float(rewards.max()),
        avg_reward=float(rewards.mean()),
        avg_inference_ms=float(np.mean(latencies) * 1000.0),
    )

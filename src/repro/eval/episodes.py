"""Episode execution for evaluation: drive a controller through seeded episodes."""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass

import numpy as np

from ..decision.environment import DrivingEnv, EpisodeResult
from ..decision.fleet import FleetEnv, FleetEpisodeResult
from ..decision.policies import Controller
from .metrics import (EvaluationReport, FleetImpactReport, aggregate,
                      aggregate_fleet)

__all__ = ["run_episode", "evaluate_controller", "evaluate_controller_batch",
           "run_fleet_episode", "evaluate_fleet",
           "RewardStats", "reward_statistics"]


def run_episode(controller: Controller, env: DrivingEnv, seed: int,
                max_steps: int | None = None) -> EpisodeResult:
    """Run one greedy episode under ``controller``; returns its result."""
    state = env.reset(seed)
    controller.begin_episode()
    cap = max_steps or env.max_steps
    steps = 0
    while steps < cap:
        action = controller.select_action(env, state)
        state, _, done, _ = env.step(action)
        steps += 1
        if done or state is None:
            break
    return env.result


def evaluate_controller(controller: Controller, env: DrivingEnv,
                        seeds: list[int] | range,
                        max_steps: int | None = None) -> EvaluationReport:
    """Run the test episodes (paper: 500) and aggregate the metrics."""
    results = [run_episode(controller, env, seed, max_steps=max_steps)
               for seed in seeds]
    return aggregate(results, env.road.length)


def run_fleet_episode(controller, env: FleetEnv, seed: int,
                      max_steps: int | None = None) -> FleetEpisodeResult:
    """Run one greedy fleet episode; all M policies step in lockstep.

    ``controller`` needs a ``select_actions(states) -> actions`` method
    mapping the active AVs' augmented states to parameterized actions
    (:class:`~repro.decision.fleet.FleetController`).
    """
    states = env.reset(seed)
    cap = max_steps or env.max_steps
    steps = 0
    while states and steps < cap:
        actions = controller.select_actions(states)
        states, _, done, _ = env.step(actions)
        steps += 1
        if done:
            break
    return env.result()


def evaluate_fleet(controller, env: FleetEnv, seeds: list[int] | range,
                   max_steps: int | None = None) -> FleetImpactReport:
    """Run seeded fleet episodes and fold them into fleet impact metrics."""
    results = [run_fleet_episode(controller, env, seed, max_steps=max_steps)
               for seed in seeds]
    return aggregate_fleet(results)


@dataclass
class _EpisodeSlot:
    """One in-flight episode of the batched runner."""

    env: DrivingEnv
    controller: Controller
    index: int          # position of this episode's seed in the seed list
    state: object
    cap: int
    steps: int = 0


def _start_episode(env: DrivingEnv, controller: Controller, index: int,
                   seed: int, max_steps: int | None) -> _EpisodeSlot:
    state = env.reset(seed)
    controller.begin_episode()
    return _EpisodeSlot(env, controller, index, state,
                        cap=max_steps or env.max_steps)


def evaluate_controller_batch(controller: Controller, env: DrivingEnv,
                              seeds: list[int] | range, batch_size: int = 8,
                              max_steps: int | None = None) -> EvaluationReport:
    """Batched :func:`evaluate_controller`: step seeded episodes round-robin.

    Up to ``batch_size`` episodes are in flight at once, each on a deep
    copy of ``env``.  Every turn collects the front of pending states
    and asks the controller for all actions via
    :meth:`Controller.select_actions`, so batchable controllers (e.g. an
    RL agent whose Q-network forwards a whole batch through ``repro.nn``)
    amortize their per-call cost across episodes.  Stateless controllers
    (``controller.stateless``) are shared between slots; stateful ones
    are deep-copied per slot.  A finished slot immediately restarts on
    the next unclaimed seed.

    Episodes are seeded and scored exactly as in the sequential runner,
    and results are ordered by seed, so with ``batch_size=1`` the report
    matches :func:`evaluate_controller` episode for episode.
    """
    seeds = list(seeds)
    if not seeds:
        return aggregate([], env.road.length)
    batch_size = max(1, min(batch_size, len(seeds)))
    shared = bool(getattr(controller, "stateless", False))
    results: list[EpisodeResult | None] = [None] * len(seeds)
    slots: list[_EpisodeSlot] = []
    next_index = 0
    for _ in range(batch_size):
        slot_controller = controller if shared else copy.deepcopy(controller)
        slots.append(_start_episode(copy.deepcopy(env), slot_controller,
                                    next_index, seeds[next_index], max_steps))
        next_index += 1
    while slots:
        if shared:
            actions = controller.select_actions(
                [slot.env for slot in slots],
                [slot.state for slot in slots])
        else:
            actions = [slot.controller.select_action(slot.env, slot.state)
                       for slot in slots]
        still_running: list[_EpisodeSlot] = []
        for slot, action in zip(slots, actions):
            state, _, done, _ = slot.env.step(action)
            slot.state = state
            slot.steps += 1
            if done or state is None or slot.steps >= slot.cap:
                results[slot.index] = slot.env.result
                if next_index < len(seeds):
                    still_running.append(_start_episode(
                        slot.env, slot.controller, next_index,
                        seeds[next_index], max_steps))
                    next_index += 1
            else:
                still_running.append(slot)
        slots = still_running
    return aggregate(results, env.road.length)


@dataclass(frozen=True)
class RewardStats:
    """Table V quantities: per-episode mean rewards summarized."""

    min_reward: float
    max_reward: float
    avg_reward: float
    avg_inference_ms: float


def reward_statistics(controller: Controller, env: DrivingEnv,
                      seeds: list[int] | range,
                      max_steps: int | None = None) -> RewardStats:
    """Episode mean-reward min/max/avg plus average per-step decision latency."""
    episode_rewards: list[float] = []
    latencies: list[float] = []
    for seed in seeds:
        state = env.reset(seed)
        controller.begin_episode()
        cap = max_steps or env.max_steps
        steps = 0
        while steps < cap:
            start = time.perf_counter()
            action = controller.select_action(env, state)
            latencies.append(time.perf_counter() - start)
            state, _, done, _ = env.step(action)
            steps += 1
            if done or state is None:
                break
        episode_rewards.append(env.result.mean_reward)
    rewards = np.array(episode_rewards)
    return RewardStats(
        min_reward=float(rewards.min()),
        max_reward=float(rewards.max()),
        avg_reward=float(rewards.mean()),
        avg_inference_ms=float(np.mean(latencies) * 1000.0),
    )

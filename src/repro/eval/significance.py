"""Bootstrap confidence intervals for metric comparisons.

Scaled-down runs use few evaluation episodes, so point estimates alone
can mislead.  These helpers quantify the uncertainty of per-episode
metrics and of pairwise method differences via the percentile bootstrap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from ..seeding import resolve_rng

__all__ = ["ConfidenceInterval", "bootstrap_mean", "bootstrap_difference"]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a two-sided bootstrap interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return (f"{self.estimate:.3f} "
                f"[{self.low:.3f}, {self.high:.3f}] @ {self.confidence:.0%}")


def _bootstrap(values: np.ndarray, statistic: Callable[[np.ndarray], float],
               resamples: int, rng: np.random.Generator) -> np.ndarray:
    n = len(values)
    stats = np.empty(resamples)
    for index in range(resamples):
        sample = values[rng.integers(0, n, size=n)]
        stats[index] = statistic(sample)
    return stats


def bootstrap_mean(values: Sequence[float], confidence: float = 0.95,
                   resamples: int = 2000,
                   rng: np.random.Generator | None = None) -> ConfidenceInterval:
    """Percentile-bootstrap CI for the mean of per-episode values."""
    values = np.asarray(list(values), dtype=np.float64)
    if len(values) == 0:
        raise ValueError("cannot bootstrap an empty sample")
    rng = resolve_rng(rng)
    stats = _bootstrap(values, np.mean, resamples, rng)
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        estimate=float(values.mean()),
        low=float(np.quantile(stats, alpha)),
        high=float(np.quantile(stats, 1.0 - alpha)),
        confidence=confidence,
    )


def bootstrap_difference(a: Sequence[float], b: Sequence[float],
                         confidence: float = 0.95, resamples: int = 2000,
                         rng: np.random.Generator | None = None) -> ConfidenceInterval:
    """CI for ``mean(a) - mean(b)`` on paired per-episode values.

    Paired resampling (same episode indices for both methods) removes
    the shared episode-difficulty variance, which dominates in traffic
    scenarios.  Arrays must be aligned per episode seed.
    """
    a = np.asarray(list(a), dtype=np.float64)
    b = np.asarray(list(b), dtype=np.float64)
    if a.shape != b.shape or len(a) == 0:
        raise ValueError("paired bootstrap needs equal-length, non-empty samples")
    rng = resolve_rng(rng)
    diffs = a - b
    stats = _bootstrap(diffs, np.mean, resamples, rng)
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        estimate=float(diffs.mean()),
        low=float(np.quantile(stats, alpha)),
        high=float(np.quantile(stats, 1.0 - alpha)),
        confidence=confidence,
    )

"""Newline-delimited JSON over TCP: the service edge of the server.

One line in, one line out.  Requests are JSON objects with an ``op``:

* ``{"op": "infer", "graph": {...}, "deadline_ms": 250}`` -- answer one
  graph; the response line is :meth:`InferenceResponse.to_wire`.
* ``{"op": "health"}`` -- the :class:`HealthReport` wire dict.

Graphs cross the wire as nested lists (``encode_graph`` /
``decode_graph``); float64 round-trips exactly through JSON's decimal
encoding for the magnitudes involved, so wire transport does not
perturb numerics.  Malformed lines get a typed ``error`` response
instead of a dropped connection -- the no-silent-drop invariant holds
at the edge too.  Idle connections are closed after ``idle_timeout``
so abandoned sockets cannot pin the server.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np

from ..perception.graph import SpatialTemporalGraph
from .server import InferenceServer

__all__ = ["encode_graph", "decode_graph", "TcpTransport", "TcpClient"]

_MAX_LINE = 2 ** 22  # 4 MiB: far above any paper-scale graph line


def encode_graph(graph: SpatialTemporalGraph) -> dict:
    return {"target_features": graph.target_features.tolist(),
            "contributor_features": graph.contributor_features.tolist(),
            "target_mask": graph.target_mask.tolist(),
            "ego_features": graph.ego_features.tolist()}


def decode_graph(payload: dict) -> SpatialTemporalGraph:
    return SpatialTemporalGraph(
        target_features=np.asarray(payload["target_features"], dtype=np.float64),
        contributor_features=np.asarray(payload["contributor_features"],
                                        dtype=np.float64),
        target_mask=np.asarray(payload["target_mask"], dtype=np.float64),
        ego_features=np.asarray(payload["ego_features"], dtype=np.float64))


class TcpTransport:
    """Serves an :class:`InferenceServer` on a TCP port."""

    def __init__(self, server: InferenceServer, host: str = "127.0.0.1",
                 port: int = 8477, idle_timeout: float = 30.0) -> None:
        self.server = server
        self.host = host
        self.port = port
        self.idle_timeout = idle_timeout
        self._tcp: asyncio.Server | None = None

    async def start(self) -> None:
        self._tcp = await asyncio.start_server(
            self._handle, self.host, self.port, limit=_MAX_LINE)
        sockets = self._tcp.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._tcp is not None:
            self._tcp.close()
            await self._tcp.wait_closed()
            self._tcp = None

    async def serve_forever(self) -> None:
        assert self._tcp is not None, "call start() first"
        await self._tcp.serve_forever()

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await asyncio.wait_for(reader.readline(),
                                                  timeout=self.idle_timeout)
                except asyncio.TimeoutError:
                    break
                if not line:
                    break
                reply = await self._dispatch(line)
                writer.write(json.dumps(reply).encode() + b"\n")
                await asyncio.wait_for(writer.drain(), timeout=self.idle_timeout)
        finally:
            writer.close()

    async def _dispatch(self, line: bytes) -> dict:
        try:
            message = json.loads(line)
            op = message.get("op")
            if op == "health":
                return self.server.health_report().to_wire()
            if op == "infer":
                deadline_ms = message.get("deadline_ms")
                deadline = (None if deadline_ms is None
                            else self.server.clock() + deadline_ms / 1e3)
                response = await self.server.submit(
                    decode_graph(message["graph"]), deadline=deadline)
                return response.to_wire()
            return {"verdict": "error", "detail": f"unknown op {op!r}"}
        except Exception as error:
            return {"verdict": "error",
                    "detail": f"{type(error).__name__}: {error}"}


class TcpClient:
    """Minimal persistent-connection client for the TCP transport."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8477,
                 timeout: float = 5.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port, limit=_MAX_LINE),
            timeout=self.timeout)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._reader = self._writer = None

    async def request(self, message: dict) -> dict:
        assert self._reader is not None and self._writer is not None
        self._writer.write(json.dumps(message).encode() + b"\n")
        await asyncio.wait_for(self._writer.drain(), timeout=self.timeout)
        line = await asyncio.wait_for(self._reader.readline(),
                                      timeout=self.timeout)
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    async def infer(self, graph: SpatialTemporalGraph,
                    deadline_ms: float | None = None) -> dict:
        message: dict = {"op": "infer", "graph": encode_graph(graph)}
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        return await self.request(message)

    async def health(self) -> dict:
        return await self.request({"op": "health"})

"""The asyncio inference server: admission -> micro-batch -> ladder -> reply.

One background worker task owns the whole pipeline: it pulls
deadline-filtered micro-batches from the :class:`MicroBatcher`, asks the
:class:`CircuitBreaker` which ladder rung to serve at, runs the
synchronous :class:`BatchInferenceEngine` in the default executor under
a hard ``handler_timeout``, and resolves every request's future with a
typed :class:`InferenceResponse`.

Invariants the chaos suite holds this file to:

* every submitted request resolves exactly once -- with an action or a
  typed shed/degraded/error verdict, never silently;
* a stalled or crashing handler cannot wedge the loop: the executor
  call is bounded by ``handler_timeout`` and the batch is answered with
  TTC-gated safety actions while the breaker records the failure;
* shutdown drains: queued requests resolve as ``shed-shutdown`` and the
  worker exits cleanly.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable

from .batcher import BatcherConfig, MicroBatcher, OfferRejected
from .breaker import BreakerConfig, CircuitBreaker
from .engine import BatchInferenceEngine
from .health import HealthReport, HealthTracker
from .types import (BatchStats, InferenceRequest, InferenceResponse,
                    RequestIdSequence, ServiceLevel, Verdict)

__all__ = ["ServerConfig", "InferenceServer"]


@dataclass(frozen=True)
class ServerConfig:
    """Server-level knobs; batcher/breaker carry their own configs."""

    batcher: BatcherConfig = field(default_factory=BatcherConfig)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    #: Hard wall-clock bound on one engine call.  On expiry the batch is
    #: answered with safety-fallback actions and the breaker records a
    #: handler failure.  (The stuck executor thread is abandoned, not
    #: killed -- Python offers no safe preemption -- so sustained stalls
    #: trip the ladder down to rungs that never enter the executor.)
    handler_timeout: float = 2.0
    #: Default per-request deadline when the client does not send one;
    #: ``None`` disables implicit deadlines.
    default_deadline: float | None = None


class InferenceServer:
    """Single-process HEAD-as-a-service facade over one engine."""

    def __init__(self, engine: BatchInferenceEngine,
                 config: ServerConfig | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.engine = engine
        self.config = config or ServerConfig()
        self.clock = clock
        self.batcher = MicroBatcher(self.config.batcher, clock)
        self.breaker = CircuitBreaker(self.config.breaker, clock)
        self.health = HealthTracker(max_batch=self.config.batcher.max_batch)
        self._pending: dict[str, asyncio.Future[InferenceResponse]] = {}
        self._request_ids = RequestIdSequence()
        self._worker: asyncio.Task | None = None
        self._draining = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._worker is not None:
            raise RuntimeError("server already started")
        self._draining = False
        self._worker = asyncio.create_task(self._run(), name="repro-serve-worker")

    async def stop(self) -> None:
        """Drain and shut down; every in-flight request still resolves."""
        self._draining = True
        if self._worker is not None:
            await self._worker
            self._worker = None
        for request in self.batcher.drain_nowait():
            self._resolve(InferenceResponse(
                request_id=request.request_id, verdict=Verdict.SHED_SHUTDOWN,
                detail="server draining"))
        # Anything still pending (shouldn't happen) must not hang callers.
        for request_id in list(self._pending):
            self._resolve(InferenceResponse(
                request_id=request_id, verdict=Verdict.SHED_SHUTDOWN,
                detail="server stopped"))

    @property
    def running(self) -> bool:
        return self._worker is not None and not self._worker.done()

    # ------------------------------------------------------------------
    # client-facing
    # ------------------------------------------------------------------
    def submit_nowait(self, graph, deadline: float | None = None,
                      request_id: str | None = None
                      ) -> asyncio.Future[InferenceResponse]:
        """Admit one request; the returned future always resolves.

        Backpressure and shutdown are delivered as already-resolved
        futures carrying typed shed verdicts -- callers never see an
        exception from admission.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future[InferenceResponse] = loop.create_future()
        rid = request_id if request_id is not None else self._request_ids()
        self.health.note_request()
        now = self.clock()
        if deadline is None and self.config.default_deadline is not None:
            deadline = now + self.config.default_deadline
        if self._draining or not self.running:
            future.set_result(InferenceResponse(
                request_id=rid, verdict=Verdict.SHED_SHUTDOWN,
                detail="server not accepting requests"))
            return future
        request = InferenceRequest(graph=graph, request_id=rid,
                                   deadline=deadline, submitted_at=now)
        try:
            self.batcher.offer(request)
        except OfferRejected as rejection:
            future.set_result(InferenceResponse(
                request_id=rid, verdict=Verdict.SHED_QUEUE_FULL,
                retry_after=rejection.retry_after,
                detail=f"queue depth {rejection.depth}"))
            return future
        self._pending[rid] = future
        return future

    async def submit(self, graph, deadline: float | None = None,
                     request_id: str | None = None) -> InferenceResponse:
        return await self.submit_nowait(graph, deadline=deadline,
                                        request_id=request_id)

    def health_report(self) -> HealthReport:
        capacity = self.config.batcher.capacity
        depth = self.batcher.depth()
        return HealthReport(
            ready=(self.running and not self._draining and depth < capacity),
            level=self.breaker.level,
            breaker_state=self.breaker.state,
            queue_depth=depth,
            queue_capacity=capacity,
            batch_occupancy=self.health.occupancy(),
            requests_total=self.health.requests_total,
            responses_total=self.health.responses_total,
            shed_expired_total=self.batcher.shed_expired_total,
            rejected_total=self.batcher.rejected_total,
            handler_failures_total=self.health.handler_failures_total,
            breaker_trips=self.breaker.trips,
            breaker_recoveries=self.breaker.recoveries,
            p50_latency=self.health.latency_quantile(0.50),
            p99_latency=self.health.latency_quantile(0.99),
            draining=self._draining,
        )

    # ------------------------------------------------------------------
    # worker
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        while True:
            live, expired = await self.batcher.next_batch()
            for request in expired:
                self._resolve(InferenceResponse(
                    request_id=request.request_id, verdict=Verdict.SHED_DEADLINE,
                    latency=self.clock() - request.submitted_at,
                    detail="deadline passed before compute"))
            if not live:
                if self._draining:
                    return
                continue
            try:
                await self._serve_batch(live, shed_expired=len(expired))
            except Exception as error:
                # Last-ditch guard: a bug anywhere in batch accounting
                # must not kill the worker or strand a future.
                for request in live:
                    self._resolve(InferenceResponse(
                        request_id=request.request_id, verdict=Verdict.ERROR,
                        latency=self.clock() - request.submitted_at,
                        detail=f"serve loop {type(error).__name__}: {error}"))

    async def _serve_batch(self, live: list[InferenceRequest],
                           shed_expired: int) -> None:
        level, probe = self.breaker.plan()
        started = self.clock()
        graphs = [request.graph for request in live]
        handler_failure = False
        detail = ""
        loop = asyncio.get_running_loop()
        try:
            results = await asyncio.wait_for(
                loop.run_in_executor(None, self.engine.infer, graphs, level),
                timeout=self.config.handler_timeout)
        except asyncio.TimeoutError:
            handler_failure = True
            detail = f"handler exceeded {self.config.handler_timeout:.3f}s"
        except Exception as error:
            handler_failure = True
            detail = f"handler raised {type(error).__name__}: {error}"
        if handler_failure:
            # The batch still gets typed, safe answers -- computed inline
            # (pure numpy TTC math, no executor) so a wedged thread pool
            # cannot block them.  If even the safety path fails for a
            # request, that request resolves as a typed ERROR: the worker
            # must outlive any engine misbehavior.
            results = []
            for request in live:
                try:
                    results.append(self.engine.infer(
                        [request.graph], ServiceLevel.SAFETY_FALLBACK)[0])
                except Exception as fallback_error:
                    detail = (f"{detail}; fallback raised "
                              f"{type(fallback_error).__name__}")
                    results.append(None)

        service_time = self.clock() - started
        self.batcher.record_service_time(service_time)
        now = self.clock()
        deadline_misses = sum(1 for request in live if request.expired(now))
        # "Degraded" for breaker purposes means *worse than the rung we
        # planned to serve at*: guard-replaced rows, poisoned inputs, or
        # answers that fell to a lower rung.  Serving CV answers while
        # the ladder stands at CV is healthy, not degraded -- otherwise
        # half-open probes could never succeed.
        degraded = sum(1 for result in results
                       if result is None or result.level > level
                       or result.degraded_rows)
        stats = BatchStats(size=len(live), level=level,
                           degraded_requests=degraded,
                           deadline_misses=deadline_misses,
                           shed_expired=shed_expired,
                           handler_failure=handler_failure,
                           service_time=service_time)
        if handler_failure:
            stats.extras["detail"] = detail
        self.breaker.record(stats, probe=probe)
        self.health.note_batch(stats)

        for request, result in zip(live, results):
            if result is None:
                self._resolve(InferenceResponse(
                    request_id=request.request_id, verdict=Verdict.ERROR,
                    latency=now - request.submitted_at, detail=detail))
                continue
            self._resolve(InferenceResponse(
                request_id=request.request_id, verdict=result.verdict,
                action=result.action, level=result.level,
                degraded_rows=result.degraded_rows,
                latency=now - request.submitted_at,
                detail=detail))

    def _resolve(self, response: InferenceResponse) -> None:
        future = self._pending.pop(response.request_id, None)
        if future is None or future.done():
            return
        self.health.note_response(response.latency)
        future.set_result(response)

"""Circuit breaker stepping a degradation ladder, with half-open probes.

Classic circuit breakers are binary (closed / open).  Serving HEAD
offers something better than refusing to answer: the fault-injection
layer already defines a *quality* ordering -- full perception+decision,
then :class:`~repro.faults.guard.PerceptionGuard`-style constant
velocity perception, then TTC-gated safety answers.  The breaker
therefore trips *down a ladder* instead of opening outright: a
guard-fallback/NaN storm or sustained deadline misses at level k move
the server to level k+1, where answers stay typed and safe but cost
less.  After a cooldown the breaker goes half-open: it serves a few
probe batches one rung up, and steps back up only when the probes come
back healthy -- the standard half-open recovery, applied per rung.

The breaker is a pure state machine over an injected clock: feed it
:class:`~repro.serve.types.BatchStats`, ask it :meth:`plan`.  No
asyncio, no wall time in tests.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

from .types import BatchStats, ServiceLevel

__all__ = ["BreakerConfig", "CircuitBreaker"]


@dataclass(frozen=True)
class BreakerConfig:
    """Trip/recover thresholds of the circuit breaker.

    Attributes
    ----------
    window:
        Rolling number of recent requests the trip fractions are
        computed over.
    min_events:
        No trip decision before this many requests are in the window
        (a single degraded request must not collapse the ladder).
    degraded_trip_fraction:
        Fraction of guard-fallback/poisoned requests that trips one rung
        down (the "NaN storm" detector).
    miss_trip_fraction:
        Fraction of deadline-missed or expired-shed requests that trips
        one rung down (the "sustained p99 deadline miss" detector:
        above this fraction the tail latency target is unmeetable by
        definition).
    cooldown:
        Seconds a rung stays open before a half-open probe is allowed.
    probe_batches:
        Consecutive healthy probe batches required to step back up.
    probe_degraded_fraction:
        Health bar a probe batch must clear to count as a success.
    """

    window: int = 64
    min_events: int = 16
    degraded_trip_fraction: float = 0.5
    miss_trip_fraction: float = 0.5
    cooldown: float = 1.0
    probe_batches: int = 2
    probe_degraded_fraction: float = 0.25


class CircuitBreaker:
    """Degradation-ladder breaker; single consumer (the server worker)."""

    def __init__(self, config: BreakerConfig | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config or BreakerConfig()
        self.clock = clock
        self.level = ServiceLevel.FULL_HEAD
        self._opened_at: float | None = None   # set while level > FULL_HEAD
        self._probes_ok = 0
        self._samples: deque[BatchStats] = deque()
        self._window_requests = 0
        self.trips = 0
        self.recoveries = 0
        self.last_trip_reason = ""

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(self) -> tuple[ServiceLevel, bool]:
        """Level for the next batch, plus whether it is a half-open probe.

        While tripped, once the cooldown has elapsed every batch is
        served one rung *up* as a probe; :meth:`record` then decides
        whether the probe streak earns a recovery or re-opens the rung.
        """
        if self.level is ServiceLevel.FULL_HEAD:
            return self.level, False
        assert self._opened_at is not None
        if self.clock() - self._opened_at >= self.config.cooldown:
            return ServiceLevel(self.level - 1), True
        return self.level, False

    @property
    def state(self) -> str:
        """``closed`` / ``open`` / ``half-open`` (for health reporting)."""
        if self.level is ServiceLevel.FULL_HEAD:
            return "closed"
        assert self._opened_at is not None
        if self.clock() - self._opened_at >= self.config.cooldown:
            return "half-open"
        return "open"

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def record(self, stats: BatchStats, probe: bool = False) -> None:
        """Fold one batch's outcome into the trip/recovery state."""
        self._push(stats)
        if probe:
            self._judge_probe(stats)
            return
        if stats.handler_failure:
            self._trip("handler stall/failure")
            return
        self._check_window()

    def _push(self, stats: BatchStats) -> None:
        self._samples.append(stats)
        self._window_requests += stats.size + stats.shed_expired
        while (self._window_requests - (self._samples[0].size
                                        + self._samples[0].shed_expired)
               >= self.config.window and len(self._samples) > 1):
            dropped = self._samples.popleft()
            self._window_requests -= dropped.size + dropped.shed_expired

    def _check_window(self) -> None:
        total = self._window_requests
        if total < self.config.min_events:
            return
        degraded = sum(sample.degraded_requests for sample in self._samples)
        missed = sum(sample.deadline_misses + sample.shed_expired
                     for sample in self._samples)
        if degraded / total >= self.config.degraded_trip_fraction:
            self._trip(f"degraded fraction {degraded}/{total}")
        elif missed / total >= self.config.miss_trip_fraction:
            self._trip(f"deadline-miss fraction {missed}/{total}")

    def _judge_probe(self, stats: BatchStats) -> None:
        healthy = (not stats.handler_failure
                   and stats.size > 0
                   and stats.degraded_requests
                   <= self.config.probe_degraded_fraction * stats.size
                   and stats.deadline_misses
                   <= self.config.probe_degraded_fraction * stats.size)
        if not healthy:
            # Probe failed: stay on the current rung, restart cooldown.
            self._probes_ok = 0
            self._opened_at = self.clock()
            return
        self._probes_ok += 1
        if self._probes_ok >= self.config.probe_batches:
            self.level = ServiceLevel(self.level - 1)
            self.recoveries += 1
            self._probes_ok = 0
            self._samples.clear()
            self._window_requests = 0
            if self.level is ServiceLevel.FULL_HEAD:
                self._opened_at = None
            else:
                # Still below full service: next rung gets its own
                # cooldown before probing continues upward.
                self._opened_at = self.clock()

    def _trip(self, reason: str) -> None:
        if self.level is ServiceLevel.SAFETY_FALLBACK:
            # Bottom rung: nothing further to shed quality from; just
            # restart the cooldown so probes stay spaced out.
            self._opened_at = self.clock()
            self._probes_ok = 0
            return
        self.level = ServiceLevel(self.level + 1)
        self.trips += 1
        self.last_trip_reason = reason
        self._opened_at = self.clock()
        self._probes_ok = 0
        self._samples.clear()
        self._window_requests = 0

"""Retrying client for the inference server: timeouts, backoff, budget.

A client that retries naively *amplifies* overload: when the server
sheds, every client immediately resubmitting doubles the offered load
exactly when capacity is scarcest.  This client applies the three
standard correctives:

* a per-attempt **timeout** so a lost answer never blocks the caller;
* **jittered exponential backoff** (seeded through the repo's central
  RNG policy, so chaos runs replay bit-identically) that also honors
  the server's ``retry_after`` hint -- whichever is later;
* a **retry budget**: retries may only consume a bounded fraction of
  total traffic, so a broken server sees at most ``1 + budget`` times
  the organic load instead of ``max_attempts`` times.

The client only retries verdicts the server marks retryable; degraded
answers are still answers and are returned as-is.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..seeding import resolve_rng
from .server import InferenceServer
from .types import InferenceResponse, Verdict

__all__ = ["ClientConfig", "RetryBudget", "ServeClient"]


@dataclass(frozen=True)
class ClientConfig:
    """Retry discipline of one client."""

    #: Per-attempt bound on waiting for the server's answer, seconds.
    timeout: float = 0.5
    #: Total attempts (first try + retries).
    max_attempts: int = 3
    backoff_base: float = 0.02
    backoff_factor: float = 2.0
    backoff_max: float = 0.5
    #: Fraction of each backoff delay that is uniformly random.
    jitter: float = 0.5
    #: Retries allowed per organic request (token-bucket refill rate).
    retry_budget: float = 0.2
    #: Bucket burst capacity, in retry tokens.
    retry_burst: float = 10.0


class RetryBudget:
    """Token bucket: each first attempt refills ``rate`` retry tokens."""

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self.denied = 0

    def note_request(self) -> None:
        self._tokens = min(self.burst, self._tokens + self.rate)

    def try_spend(self) -> bool:
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        self.denied += 1
        return False


class ServeClient:
    """Asyncio client wrapping :class:`InferenceServer` submissions."""

    def __init__(self, server: InferenceServer,
                 config: ClientConfig | None = None,
                 rng: np.random.Generator | None = None,
                 seed: int | None = None,
                 sleep: Callable[[float], "asyncio.Future"] | None = None) -> None:
        self.server = server
        self.config = config or ClientConfig()
        self.rng = resolve_rng(rng, seed)
        self._sleep = sleep or asyncio.sleep
        self.budget = RetryBudget(self.config.retry_budget,
                                  self.config.retry_burst)
        self.attempts_total = 0
        self.retries_total = 0
        self.timeouts_total = 0

    async def infer(self, graph, deadline_budget: float | None = None
                    ) -> InferenceResponse:
        """Submit one graph, retrying within budget; always returns.

        ``deadline_budget`` is the client's *total* time allowance in
        seconds; the absolute deadline it implies is fixed at the first
        attempt and shared by every retry, so retries never extend how
        stale an answer may be.
        """
        config = self.config
        self.budget.note_request()
        deadline = (None if deadline_budget is None
                    else self.server.clock() + deadline_budget)
        response: InferenceResponse | None = None
        for attempt in range(1, config.max_attempts + 1):
            self.attempts_total += 1
            future = self.server.submit_nowait(graph, deadline=deadline)
            try:
                response = await asyncio.wait_for(future, timeout=config.timeout)
            except asyncio.TimeoutError:
                self.timeouts_total += 1
                response = InferenceResponse(
                    request_id="timeout", verdict=Verdict.CLIENT_TIMEOUT,
                    latency=config.timeout,
                    detail=f"attempt {attempt} exceeded {config.timeout:.3f}s")
            if not response.verdict.retryable or attempt == config.max_attempts:
                break
            if deadline is not None and self.server.clock() >= deadline:
                break
            if not self.budget.try_spend():
                break
            self.retries_total += 1
            await self._sleep(self._delay(attempt, response.retry_after))
        assert response is not None
        response.attempts = attempt
        return response

    def _delay(self, attempt: int, retry_after: float | None) -> float:
        base = min(self.config.backoff_max,
                   self.config.backoff_base
                   * self.config.backoff_factor ** (attempt - 1))
        jittered = base * (1.0 - self.config.jitter
                           + self.config.jitter * float(self.rng.random()))
        if retry_after is not None:
            # The server's drain estimate is a floor, not a cap: backing
            # off less than it would just earn another rejection.
            jittered = max(jittered, retry_after)
        return jittered

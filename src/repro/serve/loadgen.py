"""Seeded open-loop load generation and invariant checking.

The chaos harness and the capacity benchmark both need the same thing:
a reproducible stream of inference requests whose arrival process does
*not* slow down when the server does (open-loop load, the regime where
overload actually happens), plus an audit that every single offered
request came back as an action or a typed verdict.

Arrival times are precomputed from a dedicated seeded RNG -- a Poisson
process whose rate is modulated by periodic bursts -- so two runs with
the same profile offer byte-identical schedules.  Graphs come from a
seeded synthetic pool with physically plausible scaled features
(including closing front vehicles, so the safety rung's TTC gate sees
real decisions).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from ..perception.graph import CONTRIBUTORS, FEATURE_DIM, SpatialTemporalGraph
from ..seeding import resolve_rng
from .client import ServeClient
from .types import InferenceResponse, Verdict

__all__ = ["LoadProfile", "LoadReport", "make_graph_pool", "run_load"]


@dataclass(frozen=True)
class LoadProfile:
    """One offered-load scenario (all randomness derives from ``seed``)."""

    duration: float = 2.0
    #: Mean Poisson arrival rate, requests per second.
    rate: float = 200.0
    #: Extra rate added during bursts (0 disables bursts).
    burst_rate: float = 0.0
    burst_every: float = 0.5
    burst_length: float = 0.1
    #: Per-request total time allowance handed to the client (seconds).
    deadline_budget: float | None = 0.25
    #: Fraction of requests submitted with NaN-poisoned graphs.
    poison_fraction: float = 0.0
    seed: int = 0


def arrival_times(profile: LoadProfile,
                  rng: np.random.Generator) -> list[float]:
    """Offsets (seconds from start) of every arrival in the run."""
    times: list[float] = []
    now = 0.0
    while True:
        in_burst = (profile.burst_rate > 0.0
                    and now % profile.burst_every < profile.burst_length)
        rate = profile.rate + (profile.burst_rate if in_burst else 0.0)
        now += float(rng.exponential(1.0 / rate))
        if now >= profile.duration:
            return times
        times.append(now)


def make_graph_pool(size: int, rng: np.random.Generator | None = None,
                    seed: int | None = None,
                    history_steps: int = 5) -> list[SpatialTemporalGraph]:
    """Plausible scaled graphs: targets within sensor range, fronts closing."""
    rng = resolve_rng(rng, seed)
    pool = []
    for _ in range(size):
        z, n = history_steps, 6
        targets = rng.uniform(-0.5, 0.5, size=(z, n, FEATURE_DIM))
        targets[..., 3] = (rng.random((z, n)) < 0.2).astype(float)
        # Front target (area 2, row 1): positive gap, closing half the time.
        targets[:, 1, 1] = rng.uniform(0.1, 0.6)
        targets[:, 1, 2] = rng.uniform(-0.4, 0.2)
        contributors = rng.uniform(-0.5, 0.5,
                                   size=(z, n, CONTRIBUTORS, FEATURE_DIM))
        ego = np.tile(
            np.array([rng.uniform(0, 0.5), rng.uniform(0, 0.3),
                      rng.uniform(0.3, 1.0), 0.0])[None, None, :], (z, n, 1))
        mask = (rng.random(n) < 0.8).astype(float)
        mask[1] = 1.0
        pool.append(SpatialTemporalGraph(targets, contributors, mask, ego))
    return pool


@dataclass
class LoadReport:
    """Outcome audit of one load run."""

    offered: int = 0
    responses: list[InferenceResponse] = field(default_factory=list)

    def verdict_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for response in self.responses:
            counts[response.verdict.value] = counts.get(response.verdict.value, 0) + 1
        return counts

    @property
    def answered(self) -> int:
        return sum(1 for r in self.responses if r.verdict.has_action)

    @property
    def shed(self) -> int:
        return sum(1 for r in self.responses
                   if r.verdict.is_shed or r.verdict is Verdict.CLIENT_TIMEOUT)

    def latency_quantile(self, q: float) -> float:
        latencies = sorted(r.latency for r in self.responses
                           if r.verdict.has_action)
        if not latencies:
            return 0.0
        return latencies[min(len(latencies) - 1, int(q * len(latencies)))]

    def check_invariants(self) -> None:
        """Raise AssertionError on any silent drop or untyped outcome."""
        assert len(self.responses) == self.offered, (
            f"silent drop: offered {self.offered}, resolved {len(self.responses)}")
        for response in self.responses:
            assert response.verdict.has_action or response.action is None
            assert isinstance(response.verdict, Verdict)


async def run_load(client: ServeClient, profile: LoadProfile,
                   pool: list[SpatialTemporalGraph] | None = None) -> LoadReport:
    """Offer the profile's schedule through ``client``; audit every outcome."""
    from ..faults.service import poison_graph

    rng = resolve_rng(None, profile.seed)
    schedule = arrival_times(profile, rng)
    if pool is None:
        pool = make_graph_pool(16, rng)
    picks = rng.integers(0, len(pool), size=len(schedule))
    poisoned = rng.random(len(schedule)) < profile.poison_fraction

    report = LoadReport(offered=len(schedule))
    clock = client.server.clock
    start = clock()
    tasks: list[asyncio.Task] = []
    for offset, pick, poison in zip(schedule, picks, poisoned):
        delay = start + offset - clock()
        if delay > 0:
            await asyncio.sleep(delay)
        graph = pool[int(pick)]
        if poison:
            graph = poison_graph(graph)
        tasks.append(asyncio.create_task(
            client.infer(graph, deadline_budget=profile.deadline_budget)))
    # The gather IS the no-silent-drop proof: every offered request's
    # task must resolve to a typed response, or this raises.
    report.responses = list(await asyncio.gather(*tasks))
    report.check_invariants()
    return report

"""Batched HEAD inference: one forward per micro-batch, per ladder rung.

The engine is the synchronous compute core under the async server: it
takes a list of perception graphs (one per request) and produces one
action per graph, batched through the entry points the rest of the repo
already trusts -- :func:`~repro.perception.graph.concat_graphs` +
``predictor.predict`` for perception and
:meth:`~repro.decision.agents.PDQNAgent.act_batch` for decision.

Ladder semantics (:class:`~repro.serve.types.ServiceLevel`):

* ``FULL_HEAD`` -- stacked LST-GAT forward (wrapped by the
  :class:`~repro.faults.guard.PerceptionGuard` when available, so NaN
  rows degrade per request instead of poisoning the batch), then one
  ``act_batch`` forward.
* ``CV_PERCEPTION`` -- the guard's own constant-velocity fallback used
  for *every* row (no perception network), then ``act_batch``.
* ``SAFETY_FALLBACK`` -- no networks at all: the TTC gate of
  :class:`~repro.decision.safety.SafetyFallbackPolicy`, evaluated
  directly on each graph's front-target row.

Poisoned inputs (non-finite graph arrays) are filtered *before*
stacking -- one corrupt client must never contaminate a batch -- and
answered with a safety-fallback action and a degraded verdict.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..decision.agents import PDQNAgent
from ..decision.pamdp import (LaneBehavior, ParameterizedAction,
                              augmented_state_from_graph)
from ..perception.graph import (OUTPUT_SCALE, SpatialTemporalGraph,
                                concat_graphs, split_rows)
from ..perception.predictor import StatePredictor
from ..sim import constants
from .types import ServiceLevel, Verdict

__all__ = ["ItemResult", "BatchInferenceEngine", "front_ttc_from_graph",
           "safety_action_from_graph"]

#: Gap below which the front target is effectively touching the ego
#: (mirrors repro.decision.safety._CONTACT_GAP).
_CONTACT_GAP = 0.5

#: Index of the paper's area 2 (directly ahead) in the target axis.
_FRONT_ROW = 1


def front_ttc_from_graph(graph: SpatialTemporalGraph) -> float | None:
    """Time-to-collision against the graph's front target, if closing.

    Graph-space reimplementation of
    :func:`repro.decision.safety.front_ttc`: the front target's scaled
    ``[d_lat, d_lon, v_rel]`` row is converted back to physical units.
    Returns ``None`` for empty/zero slots, non-finite rows, or an
    opening gap; ``0.0`` on (near-)contact.
    """
    row = graph.target_features[-1, _FRONT_ROW]
    if not np.isfinite(row).all() or not row.any():
        return None
    d_lon = float(row[1]) * float(OUTPUT_SCALE[1])
    v_rel = float(row[2]) * float(OUTPUT_SCALE[2])
    gap = d_lon - constants.VEHICLE_LENGTH
    if gap <= _CONTACT_GAP:
        return 0.0
    closing = -v_rel            # v_rel = v_target - v_ego
    if closing <= 0.0:
        return None
    return gap / closing


def safety_action_from_graph(graph: SpatialTemporalGraph,
                             ttc_brake: float = 3.0) -> ParameterizedAction:
    """The bottom-rung answer: keep the lane, brake when TTC demands it.

    Uses the *degraded* threshold of
    :class:`~repro.decision.safety.SafetyFallbackPolicy` -- at this rung
    perception is by definition untrusted, so braking starts early.  A
    graph too corrupt to yield a TTC brakes unconditionally: unknown is
    treated as imminent.
    """
    finite = np.isfinite(graph.target_features).all()
    ttc = front_ttc_from_graph(graph)
    if not finite or (ttc is not None and ttc < ttc_brake):
        return ParameterizedAction(LaneBehavior.KEEP, -constants.A_MAX)
    return ParameterizedAction(LaneBehavior.KEEP, 0.0)


@dataclass
class ItemResult:
    """Engine outcome for one request of a micro-batch."""

    action: ParameterizedAction
    verdict: Verdict
    level: ServiceLevel
    degraded_rows: int = 0


def _graph_is_finite(graph: SpatialTemporalGraph) -> bool:
    return bool(np.isfinite(graph.target_features).all()
                and np.isfinite(graph.contributor_features).all()
                and np.isfinite(graph.ego_features).all()
                and np.isfinite(graph.target_mask).all())


class BatchInferenceEngine:
    """Stateless-per-call compute core mapping graphs -> actions.

    Parameters
    ----------
    agent:
        The decision policy (greedy ``act_batch`` path).
    predictor:
        Perception network, a
        :class:`~repro.faults.guard.PerceptionGuard` wrapping one, or
        ``None`` (every FULL_HEAD batch then serves at CV level).
    ttc_brake:
        Threshold of the bottom-rung TTC gate, seconds.
    """

    def __init__(self, agent: PDQNAgent, predictor=None,
                 ttc_brake: float = 3.0) -> None:
        self.agent = agent
        self.predictor = predictor
        self.ttc_brake = ttc_brake
        guard_env = getattr(predictor, "envelope", None)
        self.envelope = (np.array(guard_env) if guard_env is not None
                         else np.array([(constants.NUM_LANES + 2) * constants.LANE_WIDTH,
                                        2.0 * constants.SENSOR_RANGE,
                                        2.0 * constants.V_MAX]))

    @classmethod
    def from_head(cls, head, ttc_brake: float = 3.0) -> "BatchInferenceEngine":
        """Build from a :class:`repro.core.head.HEAD` instance."""
        return cls(head.agent, head.guard or head.predictor, ttc_brake=ttc_brake)

    # ------------------------------------------------------------------
    # the one entry point
    # ------------------------------------------------------------------
    def infer(self, graphs: list[SpatialTemporalGraph],
              level: ServiceLevel) -> list[ItemResult]:
        """Answer every graph at the given ladder rung.

        Always returns exactly ``len(graphs)`` results in input order;
        corrupt inputs degrade individually rather than failing the
        batch.
        """
        if not graphs:
            return []
        if level is ServiceLevel.SAFETY_FALLBACK:
            return [self._safety_result(graph) for graph in graphs]

        finite_mask = [_graph_is_finite(graph) for graph in graphs]
        clean = [graph for graph, good in zip(graphs, finite_mask) if good]
        clean_results = self._infer_clean(clean, level) if clean else []

        results: list[ItemResult] = []
        clean_iter = iter(clean_results)
        for graph, good in zip(graphs, finite_mask):
            if good:
                results.append(next(clean_iter))
            else:
                poisoned = self._safety_result(graph)
                poisoned.degraded_rows = graph.target_features.shape[1]
                results.append(poisoned)
        return results

    # ------------------------------------------------------------------
    # rungs
    # ------------------------------------------------------------------
    def _infer_clean(self, graphs: list[SpatialTemporalGraph],
                     level: ServiceLevel) -> list[ItemResult]:
        counts = [graph.target_features.shape[1] for graph in graphs]
        stacked = concat_graphs(graphs)
        if level is ServiceLevel.FULL_HEAD and self.predictor is not None:
            prediction = np.asarray(self.predictor.predict(stacked), dtype=np.float64)
            bad_rows = getattr(self.predictor, "last_bad_rows", None)
            if bad_rows is None or len(bad_rows) != len(prediction):
                bad_rows = ~np.isfinite(prediction).all(axis=1)
                prediction = np.where(np.isfinite(prediction), prediction, 0.0)
        else:
            # CV rung (or no predictor wired): the guard's own fallback
            # formula, applied to every row -- no perception network.
            level = ServiceLevel.CV_PERCEPTION
            with np.errstate(all="ignore"):
                baseline = StatePredictor.kinematic_baseline(stacked) * OUTPUT_SCALE
            baseline = np.where(np.isfinite(baseline), baseline, 0.0)
            prediction = np.clip(baseline, -self.envelope, self.envelope)
            bad_rows = np.zeros(len(prediction), dtype=bool)

        states = [augmented_state_from_graph(graph, rows)
                  for graph, rows in zip(graphs, split_rows(prediction, counts))]
        actions = self.agent.act_batch(states, explore=False)

        results = []
        for graph, action, bad in zip(graphs, actions,
                                      split_rows(bad_rows, counts)):
            degraded = int(bad.sum())
            if level is ServiceLevel.FULL_HEAD and degraded == 0:
                verdict = Verdict.OK
            else:
                verdict = Verdict.DEGRADED_PERCEPTION
            results.append(ItemResult(action=action, verdict=verdict,
                                      level=level, degraded_rows=degraded))
        return results

    def _safety_result(self, graph: SpatialTemporalGraph) -> ItemResult:
        action = safety_action_from_graph(graph, ttc_brake=self.ttc_brake)
        return ItemResult(action=action, verdict=Verdict.DEGRADED_FALLBACK,
                          level=ServiceLevel.SAFETY_FALLBACK)

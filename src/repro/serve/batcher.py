"""Deadline-aware micro-batching with bounded admission.

The batcher is the server's only buffer, and it is *bounded*: when the
queue is full, :meth:`MicroBatcher.offer` fails immediately with a
retry-after hint instead of growing without limit -- overload turns
into explicit backpressure at the edge, never into unbounded memory and
latency.  Dequeued requests whose deadline already passed are shed
*before* the forward pass so an overloaded server stops wasting compute
on answers nobody is waiting for.

Determinism: micro-batches are sorted by ``request_id`` before they are
handed to the engine.  Concurrent clients race into the queue in
nondeterministic order; canonical ordering makes the stacked arrays --
and therefore every per-request numeric result -- a pure function of
the batch *membership*, never of arrival interleaving.  (Batch
membership itself can still shift results by an ulp: BLAS kernels pick
different block schedules for different batch sizes.  See
``docs/serving.md``.)
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Callable

from .types import InferenceRequest

__all__ = ["BatcherConfig", "OfferRejected", "MicroBatcher"]


@dataclass(frozen=True)
class BatcherConfig:
    """Tuning knobs of the micro-batcher.

    Attributes
    ----------
    max_batch:
        Hard cap on requests per forward pass.
    batch_window:
        Seconds the batcher waits after the first request of a batch for
        more to coalesce.  The central latency/throughput dial: larger
        windows fill bigger batches (amortizing the forward) at the cost
        of added queueing latency.  ``BENCH_serve.json`` sweeps it.
    capacity:
        Bound of the admission queue.  Requests beyond it are rejected
        with a retry-after hint.
    idle_poll:
        How often an idle worker wakes to check for shutdown.
    """

    max_batch: int = 32
    batch_window: float = 0.005
    capacity: int = 256
    idle_poll: float = 0.05

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")
        if self.batch_window < 0:
            raise ValueError("batch_window must be >= 0")


class OfferRejected(Exception):
    """Admission failed: the bounded queue is full.

    Carries the backpressure hint the server surfaces to clients as a
    typed shed response.
    """

    def __init__(self, retry_after: float, depth: int) -> None:
        super().__init__(f"queue full ({depth} waiting); retry in {retry_after:.3f}s")
        self.retry_after = retry_after
        self.depth = depth


class MicroBatcher:
    """Bounded queue + window-based coalescing, single-consumer."""

    def __init__(self, config: BatcherConfig | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config or BatcherConfig()
        self.clock = clock
        self._queue: asyncio.Queue[InferenceRequest] = asyncio.Queue(
            maxsize=self.config.capacity)
        #: EWMA of seconds one full service round takes (collect + forward),
        #: seeding the retry-after estimate before any batch completed.
        self._service_ewma = max(self.config.batch_window, 1e-3)
        self.shed_expired_total = 0
        self.rejected_total = 0

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def offer(self, request: InferenceRequest) -> None:
        """Admit a request or raise :class:`OfferRejected` immediately.

        Admission never blocks the caller: a full queue is an explicit,
        typed rejection whose ``retry_after`` estimates when the backlog
        will have drained enough to admit again.
        """
        try:
            self._queue.put_nowait(request)
        except asyncio.QueueFull:
            self.rejected_total += 1
            raise OfferRejected(self.retry_after(), self.depth()) from None

    def depth(self) -> int:
        return self._queue.qsize()

    def retry_after(self) -> float:
        """Estimated drain time of the current backlog (seconds)."""
        batches_queued = self.depth() / self.config.max_batch
        return max(self._service_ewma, (1.0 + batches_queued) * self._service_ewma)

    def record_service_time(self, seconds: float) -> None:
        """Feed one completed batch's wall time into the EWMA."""
        self._service_ewma += 0.2 * (max(seconds, 1e-6) - self._service_ewma)

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    async def next_batch(self) -> tuple[list[InferenceRequest], list[InferenceRequest]]:
        """Collect one micro-batch: ``(live, expired)``.

        Waits up to ``idle_poll`` for a first request (returning two
        empty lists if none arrived, so the caller can check shutdown),
        then coalesces arrivals for ``batch_window`` seconds or until
        ``max_batch`` is reached.  Expired requests are separated out so
        the server sheds them without a forward pass; survivors come
        back in canonical ``request_id`` order.
        """
        raw: list[InferenceRequest] = []
        try:
            first = await asyncio.wait_for(self._queue.get(),
                                           timeout=self.config.idle_poll)
        except asyncio.TimeoutError:
            return [], []
        raw.append(first)

        window_ends = self.clock() + self.config.batch_window
        while len(raw) < self.config.max_batch:
            remaining = window_ends - self.clock()
            if remaining <= 0.0:
                # Window closed: top up with whatever is already queued,
                # but never wait for more.
                while len(raw) < self.config.max_batch:
                    try:
                        raw.append(self._queue.get_nowait())
                    except asyncio.QueueEmpty:
                        break
                break
            try:
                raw.append(await asyncio.wait_for(self._queue.get(),
                                                  timeout=remaining))
            except asyncio.TimeoutError:
                continue

        now = self.clock()
        live = [request for request in raw if not request.expired(now)]
        expired = [request for request in raw if request.expired(now)]
        self.shed_expired_total += len(expired)
        live.sort(key=lambda request: request.request_id)
        return live, expired

    def drain_nowait(self) -> list[InferenceRequest]:
        """Pull every queued request synchronously (shutdown path)."""
        drained: list[InferenceRequest] = []
        while True:
            try:
                drained.append(self._queue.get_nowait())
            except asyncio.QueueEmpty:
                return drained

"""Health and readiness reporting for the inference server.

A load balancer (or the chaos harness) asks two different questions:
*liveness* ("is the process making progress?") and *readiness* ("should
new traffic be routed here right now?").  The report answers both from
counters the server already keeps -- queue depth against capacity,
recent batch occupancy, breaker rung and state, shed/rejection totals --
without taking any locks or touching the model.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from .types import BatchStats, ServiceLevel

__all__ = ["HealthReport", "HealthTracker"]


@dataclass(frozen=True)
class HealthReport:
    """Point-in-time snapshot; ``to_wire()`` is the /health response body."""

    ready: bool
    level: ServiceLevel
    breaker_state: str
    queue_depth: int
    queue_capacity: int
    batch_occupancy: float      # mean recent batch size / max_batch
    requests_total: int
    responses_total: int
    shed_expired_total: int
    rejected_total: int
    handler_failures_total: int
    breaker_trips: int
    breaker_recoveries: int
    p50_latency: float
    p99_latency: float
    draining: bool

    def to_wire(self) -> dict:
        payload = dict(self.__dict__)
        payload["level"] = self.level.label
        return payload


@dataclass
class HealthTracker:
    """Rolling accumulators behind :class:`HealthReport`.

    Owned by the server; fed once per resolved response / completed
    batch from the single worker task, so plain ints suffice.
    """

    max_batch: int = 32
    window: int = 128
    requests_total: int = 0
    responses_total: int = 0
    handler_failures_total: int = 0
    _batch_sizes: deque[int] = field(default_factory=lambda: deque(maxlen=64))
    _latencies: deque[float] = field(default_factory=lambda: deque(maxlen=512))

    def note_request(self) -> None:
        self.requests_total += 1

    def note_response(self, latency: float) -> None:
        self.responses_total += 1
        self._latencies.append(latency)

    def note_batch(self, stats: BatchStats) -> None:
        if stats.size:
            self._batch_sizes.append(stats.size)
        if stats.handler_failure:
            self.handler_failures_total += 1

    def occupancy(self) -> float:
        if not self._batch_sizes:
            return 0.0
        return (sum(self._batch_sizes) / len(self._batch_sizes)) / self.max_batch

    def latency_quantile(self, q: float) -> float:
        if not self._latencies:
            return 0.0
        ordered = sorted(self._latencies)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

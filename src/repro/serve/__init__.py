"""HEAD-as-a-service: overload-resilient async micro-batching inference.

The simulation loop calls HEAD once per ego vehicle per decision step;
a fleet backend calls it for thousands of vehicles concurrently.  This
package turns the (already batched) LST-GAT forward and
:meth:`~repro.decision.agents.PDQNAgent.act_batch` into a service that
stays safe and explicit under overload:

* :mod:`~repro.serve.types` -- the request/response vocabulary and the
  :class:`ServiceLevel` degradation ladder;
* :mod:`~repro.serve.batcher` -- bounded admission + deadline-aware
  micro-batch coalescing (backpressure, never unbounded queues);
* :mod:`~repro.serve.breaker` -- circuit breaker stepping the ladder
  down under NaN storms / deadline-miss storms, half-open probes up;
* :mod:`~repro.serve.engine` -- the synchronous compute core executing
  one micro-batch at a given rung;
* :mod:`~repro.serve.server` -- the asyncio worker loop tying the above
  together, with health/readiness reporting;
* :mod:`~repro.serve.client` -- timeouts, jittered backoff, retry
  budget;
* :mod:`~repro.serve.loadgen` -- seeded open-loop load + invariants
  (the chaos harness drives this against :mod:`repro.faults.service`);
* :mod:`~repro.serve.transport` -- newline-JSON TCP edge.

See ``docs/serving.md`` for the architecture and tuning guide.
"""

from .types import (BatchStats, InferenceRequest, InferenceResponse,
                    RequestIdSequence, ServiceLevel, Verdict,
                    next_request_id)
from .batcher import BatcherConfig, MicroBatcher, OfferRejected
from .breaker import BreakerConfig, CircuitBreaker
from .engine import (BatchInferenceEngine, ItemResult, front_ttc_from_graph,
                     safety_action_from_graph)
from .health import HealthReport, HealthTracker
from .server import InferenceServer, ServerConfig
from .client import ClientConfig, RetryBudget, ServeClient
from .loadgen import LoadProfile, LoadReport, make_graph_pool, run_load
from .transport import TcpClient, TcpTransport, decode_graph, encode_graph

__all__ = [
    "ServiceLevel", "Verdict", "InferenceRequest", "InferenceResponse",
    "BatchStats", "RequestIdSequence", "next_request_id",
    "BatcherConfig", "MicroBatcher", "OfferRejected",
    "BreakerConfig", "CircuitBreaker",
    "BatchInferenceEngine", "ItemResult", "front_ttc_from_graph",
    "safety_action_from_graph",
    "HealthReport", "HealthTracker",
    "InferenceServer", "ServerConfig",
    "ClientConfig", "RetryBudget", "ServeClient",
    "LoadProfile", "LoadReport", "make_graph_pool", "run_load",
    "TcpTransport", "TcpClient", "encode_graph", "decode_graph",
]

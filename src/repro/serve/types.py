"""Request/response vocabulary of the HEAD inference service.

Every request submitted to the server resolves to exactly one
:class:`InferenceResponse`, and every response is either an action or a
*typed* shed verdict -- "the server never answers with silence" is the
core robustness invariant the chaos suite asserts.  The degradation
ladder (:class:`ServiceLevel`) reuses the guard/fallback ordering
introduced with the fault-injection layer: full HEAD first, the
:class:`~repro.faults.guard.PerceptionGuard` constant-velocity
perception next, TTC-gated :class:`~repro.decision.safety` emergency
answers last.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum, IntEnum

from ..decision.pamdp import ParameterizedAction
from ..perception.graph import SpatialTemporalGraph

__all__ = ["ServiceLevel", "Verdict", "InferenceRequest", "InferenceResponse"]


class ServiceLevel(IntEnum):
    """Rungs of the degradation ladder, best (0) to most degraded (2)."""

    FULL_HEAD = 0        # batched LST-GAT prediction + BP-DQN decision
    CV_PERCEPTION = 1    # constant-velocity perception + BP-DQN decision
    SAFETY_FALLBACK = 2  # TTC-gated emergency answers only, no networks

    @property
    def label(self) -> str:
        return self.name.lower()


class Verdict(Enum):
    """Typed outcome of one request.  Values are wire-stable strings."""

    OK = "ok"                              # full-quality answer
    DEGRADED_PERCEPTION = "degraded-perception"  # guard/CV stepped in
    DEGRADED_FALLBACK = "degraded-fallback"      # safety-ladder answer
    SHED_QUEUE_FULL = "shed-queue-full"    # backpressure at admission
    SHED_DEADLINE = "shed-deadline"        # expired before/while queued
    SHED_SHUTDOWN = "shed-shutdown"        # submitted to a draining server
    CLIENT_TIMEOUT = "client-timeout"      # client-side await timed out
    ERROR = "error"                        # handler raised; typed, not silent

    @property
    def is_shed(self) -> bool:
        return self in (Verdict.SHED_QUEUE_FULL, Verdict.SHED_DEADLINE,
                        Verdict.SHED_SHUTDOWN)

    @property
    def has_action(self) -> bool:
        return self in (Verdict.OK, Verdict.DEGRADED_PERCEPTION,
                        Verdict.DEGRADED_FALLBACK)

    @property
    def retryable(self) -> bool:
        """Verdicts a well-behaved client may retry with fresh budget."""
        return self.is_shed or self in (Verdict.CLIENT_TIMEOUT, Verdict.ERROR)


class RequestIdSequence:
    """Monotonic fallback ids for requests submitted without one.

    Request ids are also the canonical micro-batch sort key (see the
    batcher), so they must be unique and orderable within a server's
    lifetime.  The counter is *per instance* -- the server owns one --
    rather than a module global: a module-level counter mutated from
    coroutine context couples unrelated servers in one process and is
    silently duplicated per worker on fork, colliding ids across
    workers (the ``coroutine-shared-mutable-global`` lint rule).
    """

    def __init__(self) -> None:
        self._counter = itertools.count()

    def __call__(self) -> str:
        return f"r{next(self._counter):08d}"


def next_request_id(sequence: RequestIdSequence | None = None) -> str:
    """Produce one fallback id (kept for API compatibility).

    Without an explicit ``sequence`` each call builds a fresh one and
    returns ``r00000000`` -- callers needing the monotonic stream (the
    server) must hold their own :class:`RequestIdSequence`.
    """
    return (sequence if sequence is not None else RequestIdSequence())()


@dataclass
class InferenceRequest:
    """One client question: a perception graph plus its time budget.

    Attributes
    ----------
    graph:
        The spatial-temporal graph G(t) perceived by the client AV.
    request_id:
        Unique orderable id; the batcher sorts micro-batches by it so
        arrival-order races never change numerics.
    deadline:
        Absolute monotonic-clock instant after which the answer is
        worthless to the client; ``None`` means no deadline.
    submitted_at:
        Monotonic enqueue instant (stamped by the server).
    """

    graph: SpatialTemporalGraph
    request_id: str
    deadline: float | None = None
    submitted_at: float = 0.0

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline


@dataclass
class InferenceResponse:
    """The single, typed resolution of one request."""

    request_id: str
    verdict: Verdict
    action: ParameterizedAction | None = None
    level: ServiceLevel | None = None
    #: Rows of this request's prediction the guard had to replace
    #: (0 when perception was healthy or never ran).
    degraded_rows: int = 0
    #: Seconds from submit to resolution (0 for admission-time sheds).
    latency: float = 0.0
    #: Backpressure hint: suggested client wait before retrying.
    retry_after: float | None = None
    detail: str = ""
    #: Attempts consumed when the response came through the retry client.
    attempts: int = 1

    def __post_init__(self) -> None:
        if self.verdict.has_action and self.action is None:
            raise ValueError(f"verdict {self.verdict.value} requires an action")
        if not self.verdict.has_action and self.action is not None:
            raise ValueError(f"verdict {self.verdict.value} must not carry an action")

    @property
    def ok(self) -> bool:
        return self.verdict.has_action

    def to_wire(self) -> dict:
        """JSON-serializable view (the TCP transport's response body)."""
        payload: dict = {"id": self.request_id, "verdict": self.verdict.value,
                         "latency_ms": self.latency * 1e3,
                         "degraded_rows": self.degraded_rows,
                         "detail": self.detail, "attempts": self.attempts}
        if self.level is not None:
            payload["level"] = self.level.label
        if self.action is not None:
            payload["action"] = {"behavior": self.action.behavior.name,
                                 "accel": self.action.accel}
        if self.retry_after is not None:
            payload["retry_after_ms"] = self.retry_after * 1e3
        return payload


@dataclass
class BatchStats:
    """Per-micro-batch health sample consumed by the circuit breaker."""

    size: int = 0
    level: ServiceLevel = ServiceLevel.FULL_HEAD
    degraded_requests: int = 0      # guard fallback and/or poisoned inputs
    deadline_misses: int = 0        # resolved after their deadline
    shed_expired: int = 0           # shed before compute
    handler_failure: bool = False   # stall/timeout/exception in the handler
    service_time: float = 0.0

    extras: dict = field(default_factory=dict)


__all__.append("BatchStats")
__all__.append("RequestIdSequence")
__all__.append("next_request_id")

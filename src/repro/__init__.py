"""repro: a full reproduction of HEAD (ICDE 2023).

"Impact-aware Maneuver Decision with Enhanced Perception for Autonomous
Vehicle" -- an enhanced perception module (LST-GAT with phantom vehicle
construction) feeding a maneuver decision module (BP-DQN over a
parameterized-action MDP with a hybrid safety/efficiency/comfort/impact
reward), evaluated in a microscopic traffic simulator.

Quickstart::

    import numpy as np
    from repro import HEAD, HEADConfig
    from repro.data import generate_real_dataset

    head = HEAD(HEADConfig().scaled(), rng=np.random.default_rng(0))
    head.train_perception(generate_real_dataset(seed=0, steps=150))
    head.train_decision(episodes=40)
    print(head.evaluate(seeds=range(10)))

Subpackages: :mod:`repro.nn` (numpy autograd substrate),
:mod:`repro.sim` (traffic simulator), :mod:`repro.perception`,
:mod:`repro.decision`, :mod:`repro.data`, :mod:`repro.core`,
:mod:`repro.eval`.
"""

from .core import HEAD, HEADConfig

__version__ = "1.0.0"
__all__ = ["HEAD", "HEADConfig", "__version__"]

# Opt-in runtime sanitizer: REPRO_SANITIZE=1 instruments the autograd
# tape and the sim engine for every entry point (tests, CLI, scripts).
# The guard keeps the default import free of the analysis machinery.
import os as _os

if _os.environ.get("REPRO_SANITIZE", "") not in ("", "0"):
    from .analysis.sanitize import install as _install_sanitizer
    _install_sanitizer()
del _os

"""Command-line interface for the HEAD reproduction.

Subcommands cover the full experimental workflow::

    python -m repro.cli generate-data --steps 300 --out real.npz
    python -m repro.cli train --scale quick --out checkpoints/head
    python -m repro.cli evaluate --checkpoint checkpoints/head --episodes 20
    python -m repro.cli drive --checkpoint checkpoints/head --seed 7
    python -m repro.cli info

``drive`` replays one episode with an ASCII visualization of the
traffic around the autonomous vehicle.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import HEAD, HEADConfig, __version__
from .data import generate_real_dataset
from .decision import EpsilonSchedule, IDMLCPolicy
from .eval import evaluate_controller, render_metric_table
from .seeding import default_generator
from .sim.render import render_window

__all__ = ["main", "build_parser"]

SCALES = {
    "quick": lambda: HEADConfig().scaled(),
    "medium": lambda: HEADConfig().scaled(road_length=1000.0, density_per_km=140,
                                          training_episodes=400,
                                          max_episode_steps=300,
                                          attention_dim=64, lstm_dim=64,
                                          hidden_dim=64),
    "paper": HEADConfig.paper,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro",
                                     description="HEAD (ICDE 2023) reproduction")
    parser.add_argument("--version", action="version", version=__version__)
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate-data",
                                   help="synthesize the REAL trajectory substitute")
    generate.add_argument("--steps", type=int, default=300)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--density", type=float, default=170.0)
    generate.add_argument("--out", default="real.npz")

    train = commands.add_parser("train", help="train perception + decision")
    train.add_argument("--scale", choices=sorted(SCALES), default="quick")
    train.add_argument("--episodes", type=int, default=None,
                       help="override the decision-training episode count")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--out", default="checkpoints/head")
    train.add_argument("--checkpoint-every", type=int, default=0,
                       help="snapshot full training state every N episodes "
                            "(0 disables crash-safe checkpointing)")
    train.add_argument("--no-resume", action="store_true",
                       help="ignore an existing training checkpoint")
    train.add_argument("--skip-perception", action="store_true",
                       help="train the decision module only")
    train.add_argument("--max-steps", type=int, default=None,
                       help="cap each training episode at this many steps")
    train.add_argument("--workers", type=int, default=1,
                       help="actor processes for decision training; >=2 "
                            "uses the parallel actor-learner trainer "
                            "(worker-count invariant), 1 keeps the serial "
                            "loop (see docs/training.md)")
    train.add_argument("--sync-every", type=int, default=8,
                       help="episodes per policy broadcast in parallel "
                            "training (staleness bound; part of the "
                            "schedule identity)")
    train.add_argument("--learn-every", type=int, default=1,
                       help="environment steps between optimization steps")
    train.add_argument("--log-json", default=None,
                       help="write the per-episode training log to this file")

    evaluate = commands.add_parser("evaluate", help="paper metrics on test episodes")
    evaluate.add_argument("--checkpoint", default=None)
    evaluate.add_argument("--scale", choices=sorted(SCALES), default="quick")
    evaluate.add_argument("--episodes", type=int, default=10)
    evaluate.add_argument("--baseline", action="store_true",
                          help="also evaluate IDM-LC for comparison")

    degradation = commands.add_parser(
        "degradation", help="sweep fault intensity and report robustness")
    degradation.add_argument("--checkpoint", default=None)
    degradation.add_argument("--scale", choices=sorted(SCALES), default="quick")
    degradation.add_argument("--episodes", type=int, default=5)
    degradation.add_argument("--intensities", default="0,0.25,0.5,1.0",
                             help="comma-separated fault intensities")
    degradation.add_argument("--max-steps", type=int, default=None)
    degradation.add_argument("--fault-seed", type=int, default=0)
    degradation.add_argument("--no-fallback", action="store_true",
                             help="disable the TTC safety fallback policy")
    degradation.add_argument("--out", default=None,
                             help="write the sweep as JSON to this file")

    fleet = commands.add_parser(
        "fleet", help="evaluate M HEAD agents sharing one engine")
    fleet.add_argument("--checkpoint", default=None)
    fleet.add_argument("--scale", choices=sorted(SCALES), default="quick")
    fleet.add_argument("--avs", type=int, default=4,
                       help="fleet size M (autonomous vehicles per episode)")
    fleet.add_argument("--vehicles", type=int, default=None,
                       help="total vehicle target N (overrides the scale's "
                            "density: N / road-length)")
    fleet.add_argument("--episodes", type=int, default=3)
    fleet.add_argument("--steps", type=int, default=None,
                       help="cap each episode at this many steps")
    fleet.add_argument("--seed", type=int, default=500,
                       help="first episode seed (episodes use seed..seed+E-1)")
    fleet.add_argument("--out", default=None,
                       help="write the fleet report as JSON to this file")

    drive = commands.add_parser("drive", help="replay one episode as ASCII art")
    drive.add_argument("--checkpoint", default=None)
    drive.add_argument("--scale", choices=sorted(SCALES), default="quick")
    drive.add_argument("--seed", type=int, default=7)
    drive.add_argument("--steps", type=int, default=40)
    drive.add_argument("--every", type=int, default=5,
                       help="render every N-th step")

    serve = commands.add_parser(
        "serve", help="run the HEAD inference service on a TCP port")
    serve.add_argument("--checkpoint", default=None)
    serve.add_argument("--scale", choices=sorted(SCALES), default="quick")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8477)
    serve.add_argument("--max-batch", type=int, default=32)
    serve.add_argument("--batch-window-ms", type=float, default=5.0)
    serve.add_argument("--capacity", type=int, default=256,
                       help="admission queue bound (backpressure beyond it)")
    serve.add_argument("--handler-timeout", type=float, default=2.0)
    serve.add_argument("--default-deadline-ms", type=float, default=None,
                       help="implicit per-request deadline when the client "
                            "sends none")

    loadgen = commands.add_parser(
        "loadgen", help="seeded open-loop load against an in-process server")
    loadgen.add_argument("--checkpoint", default=None)
    loadgen.add_argument("--scale", choices=sorted(SCALES), default="quick")
    loadgen.add_argument("--duration", type=float, default=2.0)
    loadgen.add_argument("--rate", type=float, default=200.0,
                         help="mean Poisson arrivals per second")
    loadgen.add_argument("--burst-rate", type=float, default=0.0,
                         help="extra rate during periodic bursts")
    loadgen.add_argument("--deadline-ms", type=float, default=250.0)
    loadgen.add_argument("--poison-fraction", type=float, default=0.0,
                         help="fraction of requests with NaN-poisoned graphs")
    loadgen.add_argument("--stall-rate", type=float, default=0.0,
                         help="per-batch probability of an injected handler "
                              "stall (chaos)")
    loadgen.add_argument("--batch-window-ms", type=float, default=5.0)
    loadgen.add_argument("--max-batch", type=int, default=32)
    loadgen.add_argument("--capacity", type=int, default=256)
    loadgen.add_argument("--handler-timeout", type=float, default=0.5)
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--out", default=None,
                         help="write the load report as JSON to this file")

    lint = commands.add_parser(
        "lint", help="run the reprolint static analyzer (v2: whole-program)")
    lint.add_argument("paths", nargs="*", default=None,
                      help="files or directories to lint (default: every "
                           "existing one of src tests examples scripts "
                           "benchmarks)")
    lint.add_argument("--fail-on-findings", action="store_true",
                      help="exit non-zero when any finding survives "
                           "suppressions (the CI gate)")
    lint.add_argument("--fail-on-new", action="store_true",
                      help="exit non-zero only for findings not in the "
                           "baseline file")
    lint.add_argument("--baseline", default=None,
                      help="baseline path (default: .reprolint-baseline.json)")
    lint.add_argument("--write-baseline", action="store_true",
                      help="write current findings to the baseline and exit 0")
    lint.add_argument("--changed", action="store_true",
                      help="lint only files differing from git HEAD "
                           "(composes with the cache; full tree still "
                           "anchors the program pass)")
    lint.add_argument("--no-cache", action="store_true",
                      help="disable the incremental result cache")
    lint.add_argument("--cache-dir", default=None,
                      help="cache directory (default: .reprolint-cache)")
    lint.add_argument("--no-program", action="store_true",
                      help="per-file rules only; skip the whole-program pass")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text")
    lint.add_argument("--output", default=None,
                      help="write formatted findings to this file instead "
                           "of stdout")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalogue and exit")

    commands.add_parser("info", help="print configuration summary")
    return parser


def _make_head(scale: str, seed: int, checkpoint: str | None) -> HEAD:
    head = HEAD(SCALES[scale](), rng=default_generator(seed))
    head.agent.epsilon = EpsilonSchedule(decay_steps=4000)
    if checkpoint:
        head.load(checkpoint)
    return head


def cmd_generate_data(args: argparse.Namespace) -> int:
    dataset = generate_real_dataset(seed=args.seed, steps=args.steps,
                                    density_per_km=args.density)
    path = dataset.save(args.out)
    print(f"wrote {len(dataset)} snapshots "
          f"({len(dataset.vehicle_ids())} vehicles) to {path}")
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    head = _make_head(args.scale, args.seed, checkpoint=None)
    if args.skip_perception:
        print("skipping LST-GAT training (--skip-perception)")
    else:
        print("training LST-GAT ...")
        trajectories = generate_real_dataset(seed=args.seed, steps=200)
        perception = head.train_perception(trajectories, max_egos=6)
        print(f"  final loss {perception.final_loss:.4f}")
    episodes = args.episodes or head.config.training_episodes
    mode = (f"{args.workers} actor workers" if args.workers >= 2
            else "serial loop")
    print(f"training BP-DQN for {episodes} episodes ({mode}) ...")
    checkpoint_dir = args.out if args.checkpoint_every > 0 else None
    decision = head.train_decision(episodes=episodes,
                                   checkpoint_dir=checkpoint_dir,
                                   checkpoint_every=args.checkpoint_every,
                                   resume=not args.no_resume,
                                   max_episode_steps=args.max_steps,
                                   workers=args.workers,
                                   sync_every=args.sync_every,
                                   learn_every=args.learn_every)
    if decision.resumed_episodes:
        print(f"  resumed from episode {decision.resumed_episodes}")
    print(f"  collisions {decision.collisions}/{decision.episodes}, "
          f"recent reward {decision.mean_recent_reward():.3f}")
    if args.log_json:
        import json
        from pathlib import Path
        log_path = Path(args.log_json)
        log_path.parent.mkdir(parents=True, exist_ok=True)
        log_path.write_text(json.dumps({
            "episode_rewards": decision.episode_rewards,
            "episode_steps": decision.episode_steps,
            "collisions": decision.collisions,
            "nan_rollbacks": decision.nan_rollbacks,
            "resumed_episodes": decision.resumed_episodes,
            "transition_digest": decision.transition_digest,
        }, indent=2) + "\n")
        print(f"  training log written to {log_path}")
    path = head.save(args.out)
    print(f"checkpoint saved to {path}")
    return 0


def cmd_degradation(args: argparse.Namespace) -> int:
    from .eval import degradation_sweep

    head = _make_head(args.scale, 0, args.checkpoint)
    intensities = [float(value) for value in args.intensities.split(",")]
    seeds = range(900, 900 + args.episodes)
    report = degradation_sweep(head, intensities, seeds,
                               max_steps=args.max_steps,
                               use_fallback=not args.no_fallback,
                               fault_seed=args.fault_seed)
    print(report.render())
    if args.out:
        path = report.save(args.out)
        print(f"sweep written to {path}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    head = _make_head(args.scale, 0, args.checkpoint)
    seeds = range(500, 500 + args.episodes)
    reports = {"HEAD": head.evaluate(seeds=seeds)}
    if args.baseline:
        reports["IDM-LC"] = evaluate_controller(IDMLCPolicy(), head.make_env(), seeds)
    print(render_metric_table("Evaluation", reports))
    print("collisions:", {name: report.collisions
                          for name, report in reports.items()})
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    import dataclasses
    import json

    from .eval import evaluate_fleet

    head = _make_head(args.scale, 0, args.checkpoint)
    env = head.make_fleet_env(args.avs, max_steps=args.steps)
    if args.vehicles is not None:
        env.density_per_km = args.vehicles / (env.road.length / 1000.0)
    seeds = range(args.seed, args.seed + args.episodes)
    report = evaluate_fleet(head.fleet_controller(), env, seeds,
                            max_steps=args.steps)
    print(f"fleet of {report.num_avs} AVs, {args.episodes} episode(s), "
          f"~{env.density_per_km * env.road.length / 1000.0:.0f} vehicles")
    print(f"  avg speed {report.avg_v_fleet:.2f} m/s, "
          f"avg jerk {report.avg_j_fleet:.2f}, "
          f"min TTC {report.min_ttc_fleet:.2f} s")
    print(f"  impact on conventional: {report.avg_count_av_on_cv:.2f}/ep "
          f"(avg drop {report.avg_d_av_on_cv:.2f} m/s)")
    print(f"  impact on fleet:        {report.avg_count_av_on_av:.2f}/ep "
          f"(avg drop {report.avg_d_av_on_av:.2f} m/s)")
    print(f"  collision rate {report.collision_rate:.3f}, "
          f"AV-AV collisions {report.av_av_collision_rate:.2f}/ep, "
          f"finished {report.finished_rate:.0%}, "
          f"mean fleet reward {report.mean_reward:+.2f}")
    if args.out:
        from pathlib import Path
        Path(args.out).write_text(
            json.dumps(dataclasses.asdict(report), indent=2) + "\n")
        print(f"report written to {args.out}")
    return 0


def cmd_drive(args: argparse.Namespace) -> int:
    head = _make_head(args.scale, 0, args.checkpoint)
    env = head.make_env()
    state = env.reset(args.seed)
    for step in range(args.steps):
        action = head.agent.act(state, explore=False)
        state, breakdown, done, _ = env.step(action)
        if step % args.every == 0 and env.av is not None:
            print(render_window(env.engine, env.AV_ID))
            print(f"  action: {action.behavior.name} a={action.accel:+.2f}  "
                  f"reward {breakdown.total:+.3f}\n")
        if done or state is None:
            print(f"episode ended at step {step + 1}: "
                  f"finished={env.result.finished} collided={env.result.collided}")
            break
    return 0


def _make_engine(args: argparse.Namespace):
    from .serve import BatchInferenceEngine

    head = _make_head(args.scale, 0, args.checkpoint)
    return BatchInferenceEngine.from_head(head)


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve import (BatcherConfig, InferenceServer, ServerConfig,
                        TcpTransport)

    engine = _make_engine(args)
    config = ServerConfig(
        batcher=BatcherConfig(max_batch=args.max_batch,
                              batch_window=args.batch_window_ms / 1e3,
                              capacity=args.capacity),
        handler_timeout=args.handler_timeout,
        default_deadline=(None if args.default_deadline_ms is None
                          else args.default_deadline_ms / 1e3))

    async def run() -> None:
        server = InferenceServer(engine, config)
        await server.start()
        transport = TcpTransport(server, host=args.host, port=args.port)
        await transport.start()
        print(f"serving HEAD on {args.host}:{transport.port} "
              f"(max_batch={args.max_batch}, "
              f"window={args.batch_window_ms:.1f}ms, "
              f"capacity={args.capacity})")
        try:
            await transport.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await transport.stop()
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("\nserver stopped")
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from .faults.service import FaultyEngine, ServiceFaultSchedule
    from .serve import (BatcherConfig, ClientConfig, InferenceServer,
                        LoadProfile, ServeClient, ServerConfig,
                        make_graph_pool, run_load)

    engine = _make_engine(args)
    if args.stall_rate > 0.0:
        engine = FaultyEngine(engine, ServiceFaultSchedule(
            stall_rate=args.stall_rate,
            stall_seconds=2.0 * args.handler_timeout, seed=args.seed))
    config = ServerConfig(
        batcher=BatcherConfig(max_batch=args.max_batch,
                              batch_window=args.batch_window_ms / 1e3,
                              capacity=args.capacity),
        handler_timeout=args.handler_timeout)
    profile = LoadProfile(duration=args.duration, rate=args.rate,
                          burst_rate=args.burst_rate,
                          deadline_budget=args.deadline_ms / 1e3,
                          poison_fraction=args.poison_fraction,
                          seed=args.seed)
    pool = make_graph_pool(16, seed=args.seed + 1)

    async def run():
        server = InferenceServer(engine, config)
        await server.start()
        client = ServeClient(server, ClientConfig(), seed=args.seed + 2)
        report = await run_load(client, profile, pool)
        await server.stop()
        return report, server.health_report()

    report, health = asyncio.run(run())
    summary = {
        "offered": report.offered,
        "answered": report.answered,
        "shed": report.shed,
        "verdicts": report.verdict_counts(),
        "p50_latency_ms": report.latency_quantile(0.5) * 1e3,
        "p99_latency_ms": report.latency_quantile(0.99) * 1e3,
        "breaker_trips": health.breaker_trips,
        "breaker_recoveries": health.breaker_recoveries,
        "final_level": health.level.label,
        "handler_failures": health.handler_failures_total,
    }
    print(f"offered {summary['offered']}, answered {summary['answered']}, "
          f"shed {summary['shed']}")
    print(f"p50 {summary['p50_latency_ms']:.1f}ms, "
          f"p99 {summary['p99_latency_ms']:.1f}ms")
    print(f"breaker: {summary['breaker_trips']} trips, "
          f"{summary['breaker_recoveries']} recoveries, "
          f"final level {summary['final_level']}")
    print(f"verdicts: {summary['verdicts']}")
    if args.out:
        from pathlib import Path
        Path(args.out).write_text(json.dumps(summary, indent=2) + "\n")
        print(f"report written to {args.out}")
    return 0


DEFAULT_LINT_PATHS = ("src", "tests", "examples", "scripts", "benchmarks")


def cmd_lint(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .analysis import RULES
    from .analysis.cache import DEFAULT_CACHE_DIR, LintCache
    from .analysis.driver import (DEFAULT_BASELINE, changed_files,
                                  lint_project, load_baseline, new_findings,
                                  write_baseline)
    from .analysis.program import PROGRAM_RULES
    from .analysis.sarif import render_sarif

    if args.list_rules:
        for rule_id, lint_rule in RULES.items():
            print(f"{rule_id:>32}  {lint_rule.summary}")
        for rule_id, program_lint_rule in PROGRAM_RULES.items():
            print(f"{rule_id:>32}  [program] {program_lint_rule.summary}")
        return 0

    paths = args.paths
    if not paths:
        paths = [path for path in DEFAULT_LINT_PATHS if Path(path).is_dir()]

    only = None
    if args.changed:
        only = changed_files()
        if only is None:
            print("reprolint: --changed needs a git work tree; "
                  "linting everything", file=sys.stderr)
        elif not only:
            print("reprolint: no files changed vs HEAD; nothing to lint")
            return 0

    cache = None
    if not args.no_cache:
        cache = LintCache(Path(args.cache_dir) if args.cache_dir
                          else DEFAULT_CACHE_DIR)
    report = lint_project(paths, cache=cache, only=only,
                          run_program=not args.no_program)
    findings = report.findings

    baseline_path = Path(args.baseline) if args.baseline else DEFAULT_BASELINE
    if args.write_baseline:
        write_baseline(findings, baseline_path)
        print(f"reprolint: baseline with {len(findings)} finding(s) "
              f"written to {baseline_path}")
        return 0
    fresh = new_findings(findings, load_baseline(baseline_path))

    if args.format == "sarif":
        rendered = render_sarif(findings)
    elif args.format == "json":
        rendered = json.dumps([vars(finding) for finding in findings],
                              indent=2)
    else:
        rendered = "\n".join(finding.render() for finding in findings)
    if args.output:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
    elif rendered:
        print(rendered)

    if args.format == "text" and not args.output:
        noun = "finding" if len(findings) == 1 else "findings"
        cached = (f", {report.cache_hits}/{report.files_total} files from "
                  f"cache" if cache is not None else "")
        program_note = ("cached" if report.program_from_cache else "fresh") \
            if not args.no_program else "skipped"
        print(f"reprolint: {len(findings)} {noun} "
              f"({len(fresh)} above baseline) in {report.files_total} files "
              f"in {report.duration:.2f}s "
              f"(program pass {program_note}{cached})")

    if args.fail_on_findings and findings:
        return 1
    if args.fail_on_new and fresh:
        return 1
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    print(f"repro {__version__} -- HEAD (ICDE 2023) reproduction")
    for name, factory in SCALES.items():
        config = factory()
        print(f"  scale {name:>6}: road {config.road_length:.0f} m, "
              f"{config.density_per_km:.0f} veh/km, "
              f"{config.training_episodes} training episodes")
    return 0


COMMANDS = {
    "generate-data": cmd_generate_data,
    "train": cmd_train,
    "evaluate": cmd_evaluate,
    "degradation": cmd_degradation,
    "fleet": cmd_fleet,
    "drive": cmd_drive,
    "serve": cmd_serve,
    "loadgen": cmd_loadgen,
    "lint": cmd_lint,
    "info": cmd_info,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

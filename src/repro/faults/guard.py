"""Runtime guard around state predictors: never emit NaN, inf, or nonsense.

LST-GAT (or any compared predictor) can diverge -- exploding weights,
a corrupted checkpoint, or degenerate inputs under heavy sensor faults
can produce NaN/inf or physically impossible predictions.  Down-stream,
one bad row silently poisons the augmented state, the replay buffer and
eventually the Q-networks.  :class:`PerceptionGuard` wraps the
predictor and enforces, per target, the paper's own fallback ordering:

1. the network prediction, when finite and inside the physical envelope;
2. the constant-velocity kinematic baseline (what the paper's phantom
   construction assumes for unobserved vehicles);
3. zeros (the phantom-style padding state) if even the baseline is
   corrupt, which can only happen when the graph itself carries
   non-finite features.

The guard is bit-transparent for healthy predictions: rows that pass
validation are returned exactly as the predictor produced them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..perception.graph import OUTPUT_SCALE, SpatialTemporalGraph
from ..perception.predictor import StatePredictor
from ..sim import constants

__all__ = ["GuardStats", "PerceptionGuard"]


@dataclass
class GuardStats:
    """Degradation bookkeeping accumulated across :meth:`predict` calls."""

    frames: int = 0
    degraded_frames: int = 0
    degraded_targets: int = 0

    def degraded_fraction(self) -> float:
        return self.degraded_frames / max(self.frames, 1)

    def as_dict(self) -> dict[str, int]:
        return {"frames": self.frames, "degraded_frames": self.degraded_frames,
                "degraded_targets": self.degraded_targets}


class PerceptionGuard:
    """Fallback wrapper implementing the ``StatePredictor.predict`` duck type.

    Parameters
    ----------
    predictor:
        The wrapped predictor (anything with ``predict(graph)``).
    d_lat_max / d_lon_max / v_rel_max:
        Physical envelope on the predicted relative state, in meters /
        meters / m-per-s.  Defaults are generous multiples of the road
        geometry and sensor range so a healthy (even untrained) network
        never trips them.
    """

    def __init__(self, predictor,
                 d_lat_max: float = (constants.NUM_LANES + 2) * constants.LANE_WIDTH,
                 d_lon_max: float = 2.0 * constants.SENSOR_RANGE,
                 v_rel_max: float = 2.0 * constants.V_MAX) -> None:
        if predictor is None:
            raise ValueError("PerceptionGuard needs a predictor to wrap")
        self.predictor = predictor
        self.envelope = np.array([d_lat_max, d_lon_max, v_rel_max])
        self.stats = GuardStats()
        self.last_degraded = 0
        self.last_confidence = 1.0
        #: Per-row validation mask of the last predict() call (True where
        #: the fallback replaced the predictor's row).  Batched callers
        #: (the inference server stacks many requests into one graph)
        #: slice it to attribute degradation to individual requests.
        self.last_bad_rows = np.zeros(0, dtype=bool)

    # ------------------------------------------------------------------
    # StatePredictor duck type
    # ------------------------------------------------------------------
    def predict(self, graph: SpatialTemporalGraph) -> np.ndarray:
        """Validated one-step prediction in physical units, always finite."""
        try:
            raw = np.asarray(self.predictor.predict(graph), dtype=np.float64)
        except FloatingPointError:
            raw = np.full((graph.target_features.shape[1], 3), np.nan)
        return self._validate(graph, raw)

    def predict_many(self, graphs: list[SpatialTemporalGraph]) -> list[np.ndarray]:
        """Validated batched prediction: one stacked forward, per-graph guard.

        Each graph still counts as one frame in :attr:`stats`, and each
        prediction is validated against the same envelope as
        :meth:`predict`; ``last_*`` attributes reflect the final graph.
        """
        inner = getattr(self.predictor, "predict_many", None)
        if inner is None:
            return [self.predict(graph) for graph in graphs]
        try:
            raws = inner(graphs)
        except FloatingPointError:
            raws = [np.full((graph.target_features.shape[1], 3), np.nan)
                    for graph in graphs]
        return [self._validate(graph, np.asarray(raw, dtype=np.float64))
                for graph, raw in zip(graphs, raws)]

    def _validate(self, graph: SpatialTemporalGraph, raw: np.ndarray) -> np.ndarray:
        bad = self._invalid_rows(raw)
        self.stats.frames += 1
        self.last_bad_rows = bad
        self.last_degraded = int(bad.sum())
        self.last_confidence = 1.0 - self.last_degraded / max(len(bad), 1)
        if not bad.any():
            return raw
        self.stats.degraded_frames += 1
        self.stats.degraded_targets += self.last_degraded
        fallback = self._fallback(graph)
        result = raw.copy()
        result[bad] = fallback[bad]
        return result

    def reset_stats(self) -> None:
        self.stats = GuardStats()
        self.last_degraded = 0
        self.last_confidence = 1.0
        self.last_bad_rows = np.zeros(0, dtype=bool)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _invalid_rows(self, prediction: np.ndarray) -> np.ndarray:
        """Boolean mask of rows that are non-finite or out of envelope."""
        if prediction.ndim != 2 or prediction.shape[1] != 3:
            raise ValueError(f"prediction must be (n, 3), got {prediction.shape}")
        finite = np.isfinite(prediction).all(axis=1)
        inside = np.zeros(len(prediction), dtype=bool)
        inside[finite] = (np.abs(prediction[finite]) <= self.envelope).all(axis=1)
        return ~inside

    def _fallback(self, graph: SpatialTemporalGraph) -> np.ndarray:
        """Constant-velocity baseline, zeros where the graph itself is bad."""
        with np.errstate(all="ignore"):
            baseline = StatePredictor.kinematic_baseline(graph) * OUTPUT_SCALE
        baseline = np.where(np.isfinite(baseline), baseline, 0.0)
        return np.clip(baseline, -self.envelope, self.envelope)

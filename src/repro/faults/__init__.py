"""Fault injection and graceful degradation for the HEAD pipeline.

The paper's central claim is that HEAD keeps driving safely when
perception is *structurally* degraded (occlusion, sensor range, road
boundaries).  This package extends that to *operational* degradation:

* :mod:`repro.faults.schedule` -- :class:`FaultSchedule`, a declarative,
  seedable description of sensor and actuator fault processes;
* :mod:`repro.faults.injector` -- :class:`FaultInjector` and
  :class:`FaultySensor`, applying the schedule at the
  ``Sensor.observe`` / actuator boundary;
* :mod:`repro.faults.guard` -- :class:`PerceptionGuard`, a NaN/envelope
  guard around any state predictor with the paper's own fallback
  ordering (constant velocity, then phantom-style zeros);
* :mod:`repro.faults.checkpoint` -- atomic training checkpoints
  (agent + optimizers + replay buffer + RNG) for crash-safe RL runs;
* :mod:`repro.faults.service` -- :class:`ServiceFaultSchedule` and
  :class:`FaultyEngine`, chaos injection (slow/stalled handlers,
  crashes, NaN storms, poisoned graphs) for the inference server.

All fault randomness is drawn from a dedicated RNG stream, so a
schedule with every rate at zero is bit-identical to no injection.
"""

from .schedule import FaultSchedule
from .injector import FaultInjector, FaultLog, FaultySensor
from .guard import GuardStats, PerceptionGuard
from .checkpoint import (CheckpointError, latest_checkpoint, load_checkpoint,
                         save_checkpoint)
from .service import (FaultyEngine, InjectedHandlerError,
                      ServiceFaultSchedule, poison_graph)

__all__ = [
    "FaultSchedule",
    "FaultInjector", "FaultLog", "FaultySensor",
    "GuardStats", "PerceptionGuard",
    "CheckpointError", "latest_checkpoint", "load_checkpoint", "save_checkpoint",
    "ServiceFaultSchedule", "FaultyEngine", "InjectedHandlerError", "poison_graph",
]

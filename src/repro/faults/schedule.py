"""Declarative fault schedules: which faults occur, how often, how hard.

A :class:`FaultSchedule` is a frozen value object; the stateful
realization (which vehicle drops out at which step) lives in
:class:`~repro.faults.injector.FaultInjector`, driven by a dedicated
RNG stream derived from ``seed`` and the episode seed.  Rates are
per-vehicle per-decision-step event probabilities; an event latches for
its configured duration (a dropout *burst*, a freeze *duration*), which
matches how real sensor faults manifest -- a flaky channel stays flaky
for a stretch, not for isolated single frames.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

__all__ = ["FaultSchedule"]

#: Event probabilities at intensity 1.0 (see :meth:`FaultSchedule.scaled`).
_BASE_RATES = {
    "dropout_rate": 0.06,
    "freeze_rate": 0.04,
    "noise_rate": 0.08,
    "latency_rate": 0.04,
    "actuator_delay_rate": 0.04,
    "actuator_clamp_rate": 0.02,
}


@dataclass(frozen=True)
class FaultSchedule:
    """Composable description of every supported fault process.

    Sensor-side faults (applied per observed vehicle, per step):

    * **dropout** -- the detection disappears for ``dropout_burst``
      consecutive steps (the track goes stale, then phantoms take over);
    * **freeze** -- the track keeps reporting its last delivered state
      for ``freeze_duration`` steps (a stuck tracker);
    * **noise spike** -- one measurement is perturbed by zero-mean
      Gaussian noise of ``noise_position`` / ``noise_velocity`` sigma,
      clamped into the physical envelope;
    * **latency** -- the delivered measurement is ``latency_steps``
      decision steps old.

    Actuator-side faults (applied to the AV command):

    * **delay** -- the previously commanded acceleration is executed
      instead of the fresh one;
    * **clamp** -- the acceleration magnitude saturates at
      ``actuator_clamp_limit`` (a weakened actuator).
    """

    dropout_rate: float = 0.0
    dropout_burst: int = 3
    freeze_rate: float = 0.0
    freeze_duration: int = 3
    noise_rate: float = 0.0
    noise_position: float = 5.0
    noise_velocity: float = 3.0
    latency_rate: float = 0.0
    latency_steps: int = 1
    actuator_delay_rate: float = 0.0
    actuator_clamp_rate: float = 0.0
    actuator_clamp_limit: float = 1.0
    seed: int = 0

    _RATE_FIELDS = tuple(_BASE_RATES)

    def __post_init__(self) -> None:
        for name in self._RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be a probability, got {rate}")
        for name in ("dropout_burst", "freeze_duration", "latency_steps"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be at least 1")
        for name in ("noise_position", "noise_velocity", "actuator_clamp_limit"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be non-negative")

    def is_zero(self) -> bool:
        """True when no fault can ever fire under this schedule."""
        return all(getattr(self, name) == 0.0 for name in self._RATE_FIELDS)

    @classmethod
    def none(cls, seed: int = 0) -> "FaultSchedule":
        """The all-zero schedule: injection becomes the identity."""
        return cls(seed=seed)

    @classmethod
    def scaled(cls, intensity: float, seed: int = 0, **overrides) -> "FaultSchedule":
        """Every fault process at ``intensity`` times its base rate.

        ``intensity`` 0.0 is :meth:`none`; 1.0 is a heavily degraded
        sensor suite; values in between sweep the degradation curve
        (see :mod:`repro.eval.degradation`).  Rates are capped at 1.
        """
        if intensity < 0.0:
            raise ValueError("intensity must be non-negative")
        rates = {name: min(base * intensity, 1.0)
                 for name, base in _BASE_RATES.items()}
        rates.update(overrides)
        return cls(seed=seed, **rates)

    def with_seed(self, seed: int) -> "FaultSchedule":
        """The same fault process with a different RNG stream."""
        return replace(self, seed=seed)

    def describe(self) -> dict[str, float | int]:
        """Plain-dict view (for JSON reports and logging)."""
        return {field.name: getattr(self, field.name) for field in fields(self)}

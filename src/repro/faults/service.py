"""Service-level fault injection for the inference server (chaos harness).

:mod:`repro.faults.schedule` perturbs what the AV *senses*; this module
perturbs how the *service* behaves: slow or stalled batch handlers,
latency spikes, and poisoned (non-finite) request graphs.  The same
contract applies as everywhere in :mod:`repro.faults`: every fault
process draws from a dedicated seeded RNG stream, and a schedule with
all rates at zero is bit-identical to no injection at all.

:class:`FaultyEngine` wraps a
:class:`~repro.serve.engine.BatchInferenceEngine` -- it injects *inside*
the executor call, exactly where a real model stall (lock contention,
page faults, a wedged accelerator) would bite, so the server's
``handler_timeout`` and circuit breaker are exercised for real.
Poisoning is applied by :func:`poison_graph` on the client side of the
queue, because corrupt inputs arrive from clients, not from the model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields

import numpy as np

from ..perception.graph import SpatialTemporalGraph
from ..seeding import resolve_rng

__all__ = ["ServiceFaultSchedule", "FaultyEngine", "poison_graph"]


@dataclass(frozen=True)
class ServiceFaultSchedule:
    """Per-batch fault probabilities for the serving path.

    Attributes
    ----------
    slow_rate / slow_seconds:
        Probability that a batch handler sleeps ``slow_seconds`` before
        answering (a latency spike that should *not* trip the handler
        timeout on its own).
    stall_rate / stall_seconds:
        Probability of a hard stall, sized to exceed the server's
        ``handler_timeout`` so the breaker's failure path fires.
    error_rate:
        Probability the handler raises instead of answering.
    nan_storm_rate:
        Probability a batch's predictions are degraded wholesale (the
        wrapped engine is bypassed and every request reports guard
        fallback), emulating a diverged network.
    """

    slow_rate: float = 0.0
    slow_seconds: float = 0.05
    stall_rate: float = 0.0
    stall_seconds: float = 5.0
    error_rate: float = 0.0
    nan_storm_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name.endswith("_rate") and not 0.0 <= value <= 1.0:
                raise ValueError(f"{spec.name} must be a probability, got {value}")
            if spec.name.endswith("_seconds") and value < 0.0:
                raise ValueError(f"{spec.name} must be non-negative")

    @property
    def inert(self) -> bool:
        return (self.slow_rate == self.stall_rate == self.error_rate
                == self.nan_storm_rate == 0.0)


class InjectedHandlerError(RuntimeError):
    """Typed marker so tests can tell injected crashes from real bugs."""


__all__.append("InjectedHandlerError")


class FaultyEngine:
    """Chaos wrapper around a batch inference engine.

    Duck-types ``infer(graphs, level)``; the server cannot tell it from
    the real engine, which is the point.
    """

    def __init__(self, engine, schedule: ServiceFaultSchedule,
                 rng: np.random.Generator | None = None,
                 sleep=time.sleep) -> None:
        self.engine = engine
        self.schedule = schedule
        self.rng = resolve_rng(rng, schedule.seed)
        self._sleep = sleep
        self.injected = {"slow": 0, "stall": 0, "error": 0, "nan_storm": 0}

    def infer(self, graphs, level):
        from ..serve.types import ServiceLevel, Verdict

        schedule = self.schedule
        # The safety rung is pure numpy and never enters the executor --
        # the fault processes model a stalled/diverged *model*, so they
        # do not apply there (and must not: the server leans on this
        # rung to answer a batch whose handler just failed).
        if not schedule.inert and level is not ServiceLevel.SAFETY_FALLBACK:
            # One draw per fault process per batch, in fixed order, so a
            # given seed produces the same fault trace regardless of
            # which rates are enabled.
            draws = self.rng.random(4)
            if draws[0] < schedule.stall_rate:
                self.injected["stall"] += 1
                self._sleep(schedule.stall_seconds)
            elif draws[1] < schedule.slow_rate:
                self.injected["slow"] += 1
                self._sleep(schedule.slow_seconds)
            if draws[2] < schedule.error_rate:
                self.injected["error"] += 1
                raise InjectedHandlerError("injected handler crash")
            if draws[3] < schedule.nan_storm_rate:
                self.injected["nan_storm"] += 1
                results = self.engine.infer(graphs, level)
                for result in results:
                    result.verdict = Verdict.DEGRADED_PERCEPTION
                    result.degraded_rows = max(result.degraded_rows, 1)
                return results
        return self.engine.infer(graphs, level)


def poison_graph(graph: SpatialTemporalGraph) -> SpatialTemporalGraph:
    """Return a copy of ``graph`` with NaN target features (a corrupt client).

    The serving engine must quarantine such inputs before stacking; the
    chaos suite submits poisoned graphs and asserts the neighbors in the
    same micro-batch still get full-quality answers.
    """
    bad = graph.target_features.copy()
    bad[-1, 0, :] = np.nan
    return SpatialTemporalGraph(
        target_features=bad,
        contributor_features=graph.contributor_features.copy(),
        ego_features=graph.ego_features.copy(),
        target_mask=graph.target_mask.copy(),
    )

"""Fault realization at the sensor and actuator boundaries.

:class:`FaultInjector` turns a :class:`~repro.faults.schedule.FaultSchedule`
into concrete per-step events.  It is deliberately stateful -- bursts
and freezes latch across steps -- and deterministic: the event stream
is a pure function of ``(schedule.seed, episode_seed)``, drawn from its
own ``numpy`` Generator so the simulator's, sensor's and agent's RNG
streams are untouched.  With an all-zero schedule every filter method
returns its input unchanged without drawing randomness, so fault-free
runs are bit-identical to a build without this module.

:class:`FaultySensor` composes an injector with any
:class:`~repro.perception.sensor.Sensor`-like object, keeping the
``observe`` signature, so the rest of the perception stack is unaware
faults exist.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..perception.sensor import Sensor, clamp_measurement
from ..seeding import default_generator
from ..sim import constants
from ..sim.road import Road
from ..sim.vehicle import VehicleState
from .schedule import FaultSchedule

__all__ = ["FaultLog", "FaultInjector", "FaultySensor"]


@dataclass
class FaultLog:
    """Counters of every fault event fired since the last reset."""

    dropped: int = 0
    frozen: int = 0
    spiked: int = 0
    delayed: int = 0
    actions_delayed: int = 0
    actions_clamped: int = 0

    def total(self) -> int:
        return (self.dropped + self.frozen + self.spiked + self.delayed
                + self.actions_delayed + self.actions_clamped)

    def as_dict(self) -> dict[str, int]:
        return {"dropped": self.dropped, "frozen": self.frozen,
                "spiked": self.spiked, "delayed": self.delayed,
                "actions_delayed": self.actions_delayed,
                "actions_clamped": self.actions_clamped}

    def merge(self, other: "FaultLog") -> None:
        """Accumulate another log's counters into this one."""
        self.dropped += other.dropped
        self.frozen += other.frozen
        self.spiked += other.spiked
        self.delayed += other.delayed
        self.actions_delayed += other.actions_delayed
        self.actions_clamped += other.actions_clamped


@dataclass
class _TrackFaults:
    """Latched fault state of one observed vehicle id."""

    dropout_left: int = 0
    freeze_left: int = 0
    frozen_state: VehicleState | None = None
    history: deque = field(default_factory=deque)


class FaultInjector:
    """Apply a :class:`FaultSchedule` to observations and actuator commands.

    Call :meth:`reset` at episode start (the driving environment does
    this automatically when wired with ``faults=``), then
    :meth:`filter_observation` once per sensor frame and
    :meth:`filter_accel` / :meth:`filter_action` once per command.
    """

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self.log = FaultLog()
        self._rng = default_generator(schedule.seed)
        self._tracks: dict[str, _TrackFaults] = {}
        self._last_accel: float | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def reset(self, episode_seed: int = 0) -> None:
        """Start a fresh episode: new event stream, cleared latches.

        The stream is seeded from ``(schedule.seed, episode_seed)`` so
        episode k of a run always replays the same faults regardless of
        what happened in episodes 0..k-1.
        """
        self._rng = default_generator([self.schedule.seed, episode_seed])
        self._tracks.clear()
        self._last_accel = None
        self.log = FaultLog()

    # ------------------------------------------------------------------
    # sensor boundary
    # ------------------------------------------------------------------
    def filter_observation(self, observed: dict[str, VehicleState],
                           road: Road) -> dict[str, VehicleState]:
        """Degrade one sensor frame according to the schedule.

        Vehicles are processed in sorted-id order so the event stream is
        independent of dict insertion order.  Dropped vehicles are
        removed from the frame entirely -- the tracker then ages the
        track out and phantom construction fills the hole, exactly the
        paper's structural-degradation path.
        """
        schedule = self.schedule
        if schedule.is_zero():
            return observed
        result: dict[str, VehicleState] = {}
        for vid in sorted(observed):
            state = observed[vid]
            track = self._tracks.setdefault(vid, _TrackFaults())
            track.history.append(state)
            while len(track.history) > schedule.latency_steps + 1:
                track.history.popleft()

            if track.dropout_left > 0:
                track.dropout_left -= 1
                self.log.dropped += 1
                continue
            if schedule.dropout_rate and self._rng.random() < schedule.dropout_rate:
                track.dropout_left = schedule.dropout_burst - 1
                self.log.dropped += 1
                continue

            if track.freeze_left > 0 and track.frozen_state is not None:
                track.freeze_left -= 1
                self.log.frozen += 1
                result[vid] = track.frozen_state
                continue
            delivered = state
            if (schedule.latency_rate and len(track.history) > 1
                    and self._rng.random() < schedule.latency_rate):
                delivered = track.history[0]
                self.log.delayed += 1
            if schedule.noise_rate and self._rng.random() < schedule.noise_rate:
                delivered = self._spike(delivered, road)
                self.log.spiked += 1
            if schedule.freeze_rate and self._rng.random() < schedule.freeze_rate:
                track.freeze_left = schedule.freeze_duration - 1
                track.frozen_state = delivered
                self.log.frozen += 1
            result[vid] = delivered
        for vid in list(self._tracks):
            if vid not in observed:
                del self._tracks[vid]
        return result

    def _spike(self, state: VehicleState, road: Road) -> VehicleState:
        noisy = VehicleState(
            lat=state.lat,
            lon=state.lon + float(self._rng.normal(0.0, self.schedule.noise_position)),
            v=state.v + float(self._rng.normal(0.0, self.schedule.noise_velocity)),
        )
        return clamp_measurement(noisy, road)

    # ------------------------------------------------------------------
    # actuator boundary
    # ------------------------------------------------------------------
    def filter_accel(self, accel: float) -> float:
        """Degrade one commanded acceleration (delay and/or clamp)."""
        schedule = self.schedule
        if schedule.is_zero():
            return accel
        executed = accel
        if (schedule.actuator_delay_rate and self._last_accel is not None
                and self._rng.random() < schedule.actuator_delay_rate):
            executed = self._last_accel
            self.log.actions_delayed += 1
        if (schedule.actuator_clamp_rate
                and self._rng.random() < schedule.actuator_clamp_rate):
            limit = min(schedule.actuator_clamp_limit, constants.A_MAX)
            clamped = float(np.clip(executed, -limit, limit))
            if clamped != executed:
                self.log.actions_clamped += 1
            executed = clamped
        self._last_accel = accel
        return executed

    def filter_action(self, action):
        """ParameterizedAction variant of :meth:`filter_accel`.

        The import is local to keep this package free of a hard
        dependency edge into :mod:`repro.decision`.
        """
        executed = self.filter_accel(action.accel)
        if executed == action.accel:
            return action
        from ..decision.pamdp import ParameterizedAction
        return ParameterizedAction(action.behavior, executed)


class FaultySensor:
    """A :class:`Sensor` with a :class:`FaultInjector` at its output.

    Drop-in replacement anywhere a sensor is expected: ``observe`` runs
    the wrapped sensor and then degrades the frame; every other
    attribute (``detection_range``, noise parameters, geometry helpers)
    is delegated to the wrapped sensor.
    """

    def __init__(self, base: Sensor, injector: FaultInjector) -> None:
        self.base = base
        self.injector = injector

    def observe(self, ego_id: str, ego: VehicleState,
                world: dict[str, VehicleState], road: Road,
                arrays=None) -> dict[str, VehicleState]:
        observed = self.base.observe(ego_id, ego, world, road, arrays=arrays)
        return self.injector.filter_observation(observed, road)

    def __getattr__(self, name: str):
        return getattr(self.base, name)

"""Atomic training checkpoints: agent + optimizers + replay + RNG state.

A crash-safe RL run must be able to resume to *the same learning
curve*, which means a checkpoint has to capture every piece of mutable
training state, not just network weights:

* all :class:`~repro.nn.module.Module` attributes (online and target
  networks), parameter by parameter;
* all optimizer moments (Adam ``m``/``v``/step count, SGD velocity);
* the full replay buffer contents, size and cursor;
* every ``numpy`` Generator attribute, by bit-generator state (restored
  *in place* so objects sharing the Generator -- the replay buffer
  samples from the agent's stream -- keep sharing it);
* plain scalar/array bookkeeping attributes (``total_steps``,
  phase counters, cached action payloads).

The structure is discovered by introspection, so every
:class:`~repro.decision.agents.PamdpAgent` subclass checkpoints without
per-class code.  Files are single ``.npz`` archives written through
:func:`repro.nn.serialization.atomic_savez`, so a kill mid-save leaves
the previous checkpoint intact.  Loads are strict: key or shape
mismatches raise :class:`CheckpointError` instead of silently loading a
different architecture.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from ..nn.module import Module
from ..nn.optim import Adam, Optimizer, SGD
from ..nn.serialization import atomic_savez


def _replay_buffer_type():
    # deferred: decision.trainer imports this module at load time, and
    # importing repro.decision.replay here at the top would close an
    # import cycle through repro.decision.__init__
    from ..decision.replay import ReplayBuffer
    return ReplayBuffer

__all__ = ["CheckpointError", "ScheduleMismatchError", "save_checkpoint",
           "load_checkpoint", "check_schedule", "latest_checkpoint",
           "CHECKPOINT_VERSION"]

CHECKPOINT_VERSION = 1

_META_KEY = "__meta__"

#: Replay-buffer internals that constitute its full mutable state.
_BUFFER_ARRAYS = ("_current", "_future", "_behavior", "_accel", "_reward",
                  "_next_current", "_next_future", "_done", "_aux")


class CheckpointError(RuntimeError):
    """A checkpoint file does not match the object it is loaded into."""


class ScheduleMismatchError(CheckpointError):
    """A checkpoint was produced under a different training schedule."""


def check_schedule(extra: dict, expected: dict, path=None) -> None:
    """Validate a checkpoint's recorded training schedule against ours.

    Parallel training is only bit-reproducible when the *schedule
    constants* -- root seed, sync interval, learn cadence, seed offset
    -- match between the run that wrote the checkpoint and the run
    resuming from it (worker *count* is deliberately absent: it is the
    one thing the contract says may change).  Resuming under different
    constants would silently produce a third learning curve that is
    neither the old run nor a fresh one, so it fails loudly instead.
    """
    recorded = extra.get("schedule")
    if recorded is None:
        raise ScheduleMismatchError(
            f"{path or 'checkpoint'} records no training schedule -- it was "
            f"not written by the parallel trainer")
    mismatched = {key: (recorded.get(key), value)
                  for key, value in expected.items()
                  if recorded.get(key) != value}
    if mismatched:
        detail = ", ".join(f"{key}: checkpoint={old!r} run={new!r}"
                           for key, (old, new) in sorted(mismatched.items()))
        raise ScheduleMismatchError(
            f"{path or 'checkpoint'} was written under a different "
            f"schedule ({detail}); resuming would not reproduce either run")


# ----------------------------------------------------------------------
# snapshot
# ----------------------------------------------------------------------
def _snapshot(agent) -> tuple[dict[str, np.ndarray], dict[str, dict]]:
    """Introspect ``agent`` into flat arrays plus RNG states."""
    arrays: dict[str, np.ndarray] = {}
    rng_states: dict[str, dict] = {}
    ReplayBuffer = _replay_buffer_type()
    for name in sorted(vars(agent)):
        value = getattr(agent, name)
        if isinstance(value, Module):
            for pname, parameter in value.named_parameters():
                arrays[f"module.{name}.{pname}"] = parameter.data.copy()
        elif isinstance(value, Optimizer):
            if isinstance(value, Adam):
                arrays[f"opt.{name}.step"] = np.array(value._step_count)
                for index, moment in enumerate(value._m):
                    arrays[f"opt.{name}.m.{index}"] = moment.copy()
                for index, moment in enumerate(value._v):
                    arrays[f"opt.{name}.v.{index}"] = moment.copy()
            elif isinstance(value, SGD):
                for index, velocity in enumerate(value._velocity):
                    arrays[f"opt.{name}.vel.{index}"] = velocity.copy()
        elif isinstance(value, ReplayBuffer):
            for attr in _BUFFER_ARRAYS:
                arrays[f"buffer.{name}.{attr}"] = getattr(value, attr).copy()
            arrays[f"buffer.{name}._size"] = np.array(value._size)
            arrays[f"buffer.{name}._cursor"] = np.array(value._cursor)
        elif isinstance(value, np.random.Generator):
            rng_states[name] = value.bit_generator.state
        elif isinstance(value, np.ndarray):
            arrays[f"array.{name}"] = value.copy()
        elif isinstance(value, (bool, np.bool_)):
            arrays[f"scalar.{name}"] = np.array(bool(value))
        elif isinstance(value, (int, np.integer, float, np.floating)):
            arrays[f"scalar.{name}"] = np.array(value)
        # other attributes (schedules, config objects) are construction-
        # time constants and are recreated by building the agent anew
    return arrays, rng_states


def save_checkpoint(path: str | os.PathLike, agent,
                    extra: dict | None = None) -> Path:
    """Atomically write a full training checkpoint for ``agent``.

    ``extra`` is any JSON-serializable metadata (episode counters,
    reward history) returned verbatim by :func:`load_checkpoint`.
    """
    arrays, rng_states = _snapshot(agent)
    meta = {
        "version": CHECKPOINT_VERSION,
        "agent": type(agent).__name__,
        "rng": rng_states,
        "extra": extra or {},
    }
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    return atomic_savez(path, arrays)


# ----------------------------------------------------------------------
# restore
# ----------------------------------------------------------------------
def load_checkpoint(path: str | os.PathLike, agent) -> dict:
    """Restore ``agent`` in place from ``path``; returns the ``extra`` dict.

    The agent must be structurally identical to the one that was saved
    (same class, same network architecture, same buffer capacity); any
    deviation raises :class:`CheckpointError`.
    """
    path = Path(path)
    with np.load(path) as archive:
        stored = {name: archive[name] for name in archive.files}
    if _META_KEY not in stored:
        raise CheckpointError(f"{path} is not a training checkpoint (no metadata)")
    meta = json.loads(stored.pop(_META_KEY).tobytes().decode("utf-8"))
    if meta.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path} has checkpoint version {meta.get('version')}, "
            f"expected {CHECKPOINT_VERSION}")
    if meta.get("agent") != type(agent).__name__:
        raise CheckpointError(
            f"{path} was saved from a {meta.get('agent')}, cannot load into "
            f"a {type(agent).__name__}")

    expected, rng_names = _snapshot(agent)
    missing = sorted(set(expected) - set(stored))
    # agents create some bookkeeping attributes lazily (e.g. the cached
    # action payload appears on the first act()), so extra array/scalar
    # keys are restored via setattr rather than rejected; structural
    # keys (modules, optimizers, buffers) stay strict
    unexpected = sorted(key for key in set(stored) - set(expected)
                        if not key.startswith(("array.", "scalar.")))
    if missing or unexpected:
        raise CheckpointError(
            f"{path} does not match the agent: missing={missing} "
            f"unexpected={unexpected}")
    for key, template in expected.items():
        if stored[key].shape != template.shape:
            raise CheckpointError(
                f"{path}: shape mismatch for {key}: "
                f"{stored[key].shape} vs {template.shape}")
    saved_rng = meta.get("rng", {})
    if sorted(saved_rng) != sorted(rng_names):
        raise CheckpointError(
            f"{path}: RNG streams {sorted(saved_rng)} do not match the "
            f"agent's {sorted(rng_names)}")

    _apply(agent, stored, saved_rng)
    return meta.get("extra", {})


def _apply(agent, stored: dict[str, np.ndarray], rng_states: dict) -> None:
    """Write checkpoint contents back into the live agent."""
    ReplayBuffer = _replay_buffer_type()
    known = set(vars(agent))
    for key, value in stored.items():
        # lazily-created bookkeeping the fresh agent does not have yet
        prefix, _, name = key.partition(".")
        if name in known or prefix not in ("array", "scalar"):
            continue
        if prefix == "array":
            setattr(agent, name, value.copy())
        elif value.dtype == np.bool_:
            setattr(agent, name, bool(value))
        elif np.issubdtype(value.dtype, np.integer):
            setattr(agent, name, int(value))
        else:
            setattr(agent, name, float(value))
    for name in sorted(vars(agent)):
        value = getattr(agent, name)
        if isinstance(value, Module):
            state = {pname: stored[f"module.{name}.{pname}"]
                     for pname, _ in value.named_parameters()}
            value.load_state_dict(state)
        elif isinstance(value, Adam):
            value._step_count = int(stored[f"opt.{name}.step"])
            for index in range(len(value._m)):
                value._m[index] = stored[f"opt.{name}.m.{index}"].copy()
                value._v[index] = stored[f"opt.{name}.v.{index}"].copy()
        elif isinstance(value, SGD):
            for index in range(len(value._velocity)):
                value._velocity[index] = stored[f"opt.{name}.vel.{index}"].copy()
        elif isinstance(value, ReplayBuffer):
            for attr in _BUFFER_ARRAYS:
                getattr(value, attr)[...] = stored[f"buffer.{name}.{attr}"]
            value._size = int(stored[f"buffer.{name}._size"])
            value._cursor = int(stored[f"buffer.{name}._cursor"])
        elif isinstance(value, np.random.Generator):
            # in place, so objects sharing this Generator keep sharing it
            value.bit_generator.state = rng_states[name]
        elif isinstance(value, np.ndarray):
            setattr(agent, name, stored[f"array.{name}"].copy())
        elif isinstance(value, (bool, np.bool_)):
            setattr(agent, name, bool(stored[f"scalar.{name}"]))
        elif isinstance(value, (int, np.integer)):
            setattr(agent, name, int(stored[f"scalar.{name}"]))
        elif isinstance(value, (float, np.floating)):
            setattr(agent, name, float(stored[f"scalar.{name}"]))


def latest_checkpoint(directory: str | os.PathLike,
                      pattern: str = "*.ckpt.npz") -> Path | None:
    """The most recently modified checkpoint under ``directory``, if any."""
    directory = Path(directory)
    if not directory.is_dir():
        return None
    candidates = sorted(directory.glob(pattern),
                        key=lambda p: (p.stat().st_mtime, p.name))
    return candidates[-1] if candidates else None

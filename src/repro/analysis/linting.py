"""reprolint: a tiny AST lint framework with repo-specific rules.

The framework is deliberately small: a rule registry, per-file parsing,
and comment-based suppressions.  Rules live in
:mod:`repro.analysis.rules`; each one encodes an invariant of *this*
codebase (seeded RNG streams, tape hygiene, ``no_grad`` discipline)
rather than generic style.

Suppression syntax (checked -- malformed comments are themselves
findings):

* ``code  # reprolint: disable=rule-a,rule-b`` silences the named rules
  on that line;
* ``# reprolint: disable-file=rule-a`` anywhere in a file silences the
  named rules for the whole file.

Directory walks skip ``fixtures`` directories and ``__pycache__``: the
lint test corpus under ``tests/analysis/fixtures`` is deliberately
broken and is linted by passing the files explicitly.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

__all__ = ["Finding", "LintContext", "Rule", "RULES", "EXTRA_RULE_IDS",
           "rule", "iter_python_files", "lint_file", "lint_paths",
           "lint_source"]

#: Directory names skipped by recursive walks (not by explicit paths).
EXCLUDED_DIRS = frozenset({"fixtures", "__pycache__", ".git"})

#: Rule ids registered outside the per-file registry (the whole-program
#: pass in :mod:`repro.analysis.program` adds its ids here) so that
#: suppression comments naming them are not flagged as unknown.
EXTRA_RULE_IDS: set[str] = set()

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*(?P<verb>[\w-]+)\s*(?:=\s*(?P<rules>[\w,\s-]*))?")
_RULE_ID_RE = re.compile(r"^[a-z][a-z0-9]*(-[a-z0-9]+)*$")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


@dataclass
class _Suppressions:
    """Parsed suppression comments for one file."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    whole_file: set[str] = field(default_factory=set)
    malformed: list[tuple[int, str]] = field(default_factory=list)

    def covers(self, finding: Finding) -> bool:
        if finding.rule in self.whole_file:
            return True
        return finding.rule in self.by_line.get(finding.line, ())


class LintContext:
    """Everything a rule needs to inspect one file."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self._parents: dict[ast.AST, ast.AST] | None = None

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        return Finding(rule_id, self.path, getattr(node, "lineno", 1),
                       getattr(node, "col_offset", 0), message)

    def parents(self) -> dict[ast.AST, ast.AST]:
        """Child -> parent map over the whole tree (built lazily once)."""
        if self._parents is None:
            parents: dict[ast.AST, ast.AST] = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    parents[child] = parent
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        parents = self.parents()
        while node in parents:
            node = parents[node]
            yield node


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`id` (kebab-case, stable -- it is the public
    suppression handle) and :attr:`summary`, and implement :meth:`run`
    yielding :class:`Finding` objects.  Register with the :func:`rule`
    decorator.
    """

    id: str = ""
    summary: str = ""

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        raise NotImplementedError


#: Registry of rule id -> rule instance, in registration order.
RULES: dict[str, Rule] = {}


def rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator registering a :class:`Rule` subclass."""
    if not cls.id or not _RULE_ID_RE.match(cls.id):
        raise ValueError(f"rule class {cls.__name__} needs a kebab-case id")
    if cls.id in RULES:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    RULES[cls.id] = cls()
    return cls


def _iter_comments(source: str) -> Iterator[tuple[int, str]]:
    """Yield ``(lineno, text)`` for real comment tokens only.

    Tokenizing (rather than scanning raw lines) keeps ``reprolint:``
    examples inside strings and docstrings from being parsed as live
    suppressions.
    """
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return  # unparseable files are reported via syntax-error instead


def _parse_suppressions(source: str, known_rules: Iterable[str]) -> _Suppressions:
    known = set(known_rules)
    result = _Suppressions()
    for lineno, comment in _iter_comments(source):
        if "reprolint" not in comment:
            continue
        match = _SUPPRESS_RE.search(comment)
        if match is None:
            continue
        verb = match.group("verb")
        names = [name.strip() for name in (match.group("rules") or "").split(",")
                 if name.strip()]
        if verb not in ("disable", "disable-file"):
            result.malformed.append(
                (lineno, f"unknown reprolint directive {verb!r}"))
            continue
        if not names:
            result.malformed.append(
                (lineno, f"'{verb}' needs an explicit rule list "
                         f"(e.g. '# reprolint: {verb}=unseeded-rng')"))
            continue
        unknown = [name for name in names if name not in known]
        if unknown:
            result.malformed.append(
                (lineno, f"suppression names unknown rule(s): {', '.join(unknown)}"))
            names = [name for name in names if name in known]
        target = result.whole_file if verb == "disable-file" else \
            result.by_line.setdefault(lineno, set())
        target.update(names)
    return result


def lint_source(source: str, path: str = "<string>",
                rules: Iterable[Rule] | None = None) -> list[Finding]:
    """Lint python ``source``; returns surviving findings sorted by line.

    Syntax errors are reported as a single ``syntax-error`` finding so a
    broken file fails the lint run instead of being skipped silently.
    """
    active = list(RULES.values()) if rules is None else list(rules)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [Finding("syntax-error", path, error.lineno or 1,
                        (error.offset or 1) - 1, f"file does not parse: {error.msg}")]
    ctx = LintContext(path, source, tree)
    suppressions = _parse_suppressions(source, set(RULES) | EXTRA_RULE_IDS)

    findings: list[Finding] = [
        Finding("bad-suppression", path, lineno, 0, message)
        for lineno, message in suppressions.malformed
    ]
    for lint_rule in active:
        for finding in lint_rule.run(ctx):
            if not suppressions.covers(finding):
                findings.append(finding)
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def lint_file(path: str | Path, rules: Iterable[Rule] | None = None) -> list[Finding]:
    """Lint one file on disk."""
    path = Path(path)
    return lint_source(path.read_text(encoding="utf-8"), str(path), rules)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into python files, honoring exclusions.

    Explicit file arguments are always yielded (that is how the fixture
    corpus gets linted by its tests); directory walks skip
    :data:`EXCLUDED_DIRS` and are sorted for deterministic output.
    """
    seen: set[Path] = set()
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            candidates: Iterable[Path] = sorted(
                candidate for candidate in entry.rglob("*.py")
                if not EXCLUDED_DIRS.intersection(part.name for part in candidate.parents))
        elif entry.suffix == ".py":
            candidates = [entry]
        else:
            candidates = []
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def lint_paths(paths: Iterable[str | Path],
               rules: Iterable[Rule] | None = None,
               on_file: Callable[[Path], None] | None = None) -> list[Finding]:
    """Lint every python file reachable from ``paths``."""
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        if on_file is not None:
            on_file(path)
        findings.extend(lint_file(path, rules))
    return findings


# Importing the rule catalogue registers every rule; done last so the
# decorator above is defined.  (Rules import nothing back from here at
# call time, only at module import.)  The program pass is imported for
# the same reason: registering its rule ids into EXTRA_RULE_IDS keeps
# suppression comments naming them from being flagged as unknown.
from . import rules as _rules  # noqa: E402  (registration side effect)
from . import program as _program  # noqa: E402  (registration side effect)

del _rules, _program

"""Incremental result cache for reprolint.

Per-file findings are pure functions of (file content, analyzer
version), so they are cached under ``.reprolint-cache/`` keyed on a
sha256 content hash plus an analyzer fingerprint that covers every
registered rule id and the cache format version.  Whole-program
findings depend on *every* file (a callee edit can change a caller's
findings), so they are cached as one entry keyed on the digest of all
``(path, content-hash)`` pairs: any edit anywhere invalidates the
program entry while per-file entries for untouched files still hit.

The cache is a single JSON document rewritten atomically per run --
small enough at this repo's scale that one file beats a directory of
key-shards, and trivially safe to delete.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from .linting import Finding

__all__ = ["LintCache", "analyzer_fingerprint", "content_hash",
           "DEFAULT_CACHE_DIR"]

DEFAULT_CACHE_DIR = Path(".reprolint-cache")

#: Bump when the cache document layout changes.
_FORMAT_VERSION = 1


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def analyzer_fingerprint() -> str:
    """Hash of the active rule set; any rule change invalidates everything.

    Rule *behaviour* changes without an id change are expected to ride
    along with a repro version bump or a cache wipe; ids + format
    version catch the common cases (rules added/removed/renamed).
    """
    from .linting import RULES
    from .program import PROGRAM_RULES
    basis = ",".join(sorted(RULES) + sorted(PROGRAM_RULES))
    return hashlib.sha256(
        f"v{_FORMAT_VERSION}:{basis}".encode("utf-8")).hexdigest()[:16]


def _encode(findings: list[Finding]) -> list[dict]:
    return [{"rule": f.rule, "path": f.path, "line": f.line,
             "col": f.col, "message": f.message} for f in findings]


def _decode(rows: list[dict]) -> list[Finding]:
    return [Finding(row["rule"], row["path"], row["line"], row["col"],
                    row["message"]) for row in rows]


@dataclass
class LintCache:
    """Hash-keyed findings cache with hit/miss accounting."""

    root: Path = DEFAULT_CACHE_DIR
    hits: int = 0
    misses: int = 0
    _files: dict[str, dict] = field(default_factory=dict)
    _program: dict | None = None
    _loaded_fingerprint: str | None = None

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self._fingerprint = analyzer_fingerprint()
        self._load()

    @property
    def path(self) -> Path:
        return self.root / "cache.json"

    def _load(self) -> None:
        try:
            document = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if document.get("fingerprint") != self._fingerprint:
            return  # analyzer changed: every entry is stale
        self._files = document.get("files", {})
        self._program = document.get("program")
        self._loaded_fingerprint = document.get("fingerprint")

    # ------------------------------------------------------------------
    # per-file entries
    # ------------------------------------------------------------------
    # Keys are "relpath::hash" rather than bare relpath: an edited file
    # keeps its pre-edit entry, so reverting the edit is a cache hit
    # again.  Entries for dead hashes linger until the analyzer
    # fingerprint rotates -- at this repo's scale that is bytes, and
    # the directory is always safe to delete.
    def get_file(self, relpath: str, digest: str) -> list[Finding] | None:
        entry = self._files.get(f"{relpath}::{digest}")
        if entry is not None:
            self.hits += 1
            return _decode(entry["findings"])
        self.misses += 1
        return None

    def put_file(self, relpath: str, digest: str,
                 findings: list[Finding]) -> None:
        self._files[f"{relpath}::{digest}"] = {"findings": _encode(findings)}

    # ------------------------------------------------------------------
    # whole-program entry
    # ------------------------------------------------------------------
    @staticmethod
    def program_digest(hashes: dict[str, str]) -> str:
        """One digest over every (path, content-hash) pair."""
        basis = "\n".join(f"{path}\0{digest}"
                          for path, digest in sorted(hashes.items()))
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()

    def get_program(self, digest: str) -> list[Finding] | None:
        entry = (self._program or {}).get(digest)
        return _decode(entry) if entry is not None else None

    def put_program(self, digest: str, findings: list[Finding]) -> None:
        if self._program is None:
            self._program = {}
        self._program[digest] = _encode(findings)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self) -> None:
        document = {"fingerprint": self._fingerprint, "files": self._files,
                    "program": self._program}
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(document, indent=0, sort_keys=True),
                       encoding="utf-8")
        os.replace(tmp, self.path)

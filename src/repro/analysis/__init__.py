"""Static and runtime analysis enforcing the repo's correctness invariants.

Two halves:

* :mod:`repro.analysis.linting` + :mod:`repro.analysis.rules` --
  **reprolint**, an ``ast``-walking lint framework whose rules encode
  invariants no off-the-shelf linter knows about (seeded RNG streams,
  autograd-tape hygiene, ``no_grad`` around target networks).  Run it
  with ``python -m repro.cli lint src tests`` or ``scripts/lint.sh``.
* :mod:`repro.analysis.sanitize` -- an opt-in **runtime sanitizer** that
  instruments the autograd tape and the simulation engine with
  finiteness/dtype/shape checks.  Activate with ``REPRO_SANITIZE=1``;
  when the variable is unset nothing is patched and the hot paths run
  untouched.

See ``docs/static_analysis.md`` for the rule catalogue and the
suppression syntax.
"""

from .linting import (Finding, LintContext, Rule, RULES, iter_python_files,
                      lint_file, lint_paths, lint_source, rule)
from .sanitize import (SanitizerError, install, install_if_enabled,
                       is_active, uninstall)

__all__ = [
    "Finding", "LintContext", "Rule", "RULES", "iter_python_files",
    "lint_file", "lint_paths", "lint_source", "rule",
    "SanitizerError", "install", "install_if_enabled", "is_active",
    "uninstall",
]

"""The reprolint rule catalogue.

Every rule encodes an invariant this repository actually depends on --
see ``docs/static_analysis.md`` for the rationale behind each one and
for how to add a new rule.  Rule ids are stable public API: they are the
handles used by ``# reprolint: disable=...`` comments.
"""

from __future__ import annotations

import ast
from decimal import Decimal, InvalidOperation
from typing import Iterable, Iterator

from .linting import Finding, LintContext, Rule, rule

__all__ = ["NumpyAliases"]

#: Capitalized attributes of ``numpy.random`` that are legitimate to
#: call: explicit bit-generator / SeedSequence construction is always
#: deliberate about its seed.
_CONSTRUCTOR_PREFIXES = ("Generator", "SeedSequence", "PCG64", "Philox",
                         "SFC64", "MT19937", "BitGenerator", "RandomState")


class NumpyAliases:
    """Resolved import aliases for numpy and numpy.random in one file."""

    def __init__(self, tree: ast.Module) -> None:
        self.numpy: set[str] = set()           # import numpy as np -> {"np"}
        self.numpy_random: set[str] = set()    # from numpy import random -> {"random"}
        self.from_random: dict[str, str] = {}  # from numpy.random import default_rng as d
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        self.numpy.add(alias.asname or "numpy")
                    elif alias.name == "numpy.random":
                        # "import numpy.random as npr" binds npr; plain
                        # "import numpy.random" binds "numpy".
                        if alias.asname:
                            self.numpy_random.add(alias.asname)
                        else:
                            self.numpy.add("numpy")
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            self.numpy_random.add(alias.asname or "random")
                elif node.module == "numpy.random":
                    for alias in node.names:
                        self.from_random[alias.asname or alias.name] = alias.name

    def random_call_name(self, call: ast.Call) -> str | None:
        """Return the ``numpy.random`` function name behind ``call``, if any."""
        func = call.func
        if isinstance(func, ast.Name):
            return self.from_random.get(func.id)
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name) and value.id in self.numpy_random:
                return func.attr
            if (isinstance(value, ast.Attribute) and value.attr == "random"
                    and isinstance(value.value, ast.Name)
                    and value.value.id in self.numpy):
                return func.attr
        return None


def _iter_calls(ctx: LintContext) -> Iterator[tuple[ast.Call, str]]:
    aliases = NumpyAliases(ctx.tree)
    if not (aliases.numpy or aliases.numpy_random or aliases.from_random):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            name = aliases.random_call_name(node)
            if name is not None:
                yield node, name


@rule
class UnseededRng(Rule):
    """Stochastic code must draw from an explicit seeded Generator.

    Flags ``np.random.default_rng()`` with no arguments (OS-entropy
    seeded -- unreproducible, and invisible to the checkpoint machinery
    that restores generator state on resume) and any call into the
    legacy ``np.random.*`` global-state API, whose hidden singleton
    stream cannot be injected, checkpointed, or split per component.
    """

    id = "unseeded-rng"
    summary = "np.random call without an explicit seed or injected Generator"

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        for call, name in _iter_calls(ctx):
            if name == "default_rng":
                if not call.args and not call.keywords:
                    yield ctx.finding(
                        self.id, call,
                        "default_rng() without a seed draws from OS entropy; "
                        "pass an explicit seed or use repro.seeding.resolve_rng")
            elif not name.startswith(_CONSTRUCTOR_PREFIXES):
                yield ctx.finding(
                    self.id, call,
                    f"legacy global-state np.random.{name}() cannot be seeded "
                    "per component; draw from an injected np.random.Generator")


@rule
class RngFallback(Rule):
    """Ban the ``rng or np.random.default_rng(...)`` fallback idiom.

    Even a *seeded* inline fallback scatters ad-hoc default streams
    through the codebase; :func:`repro.seeding.resolve_rng` is the one
    sanctioned fallback so the default seed lives in exactly one place.
    """

    id = "rng-fallback"
    summary = "inline `x or default_rng(...)` fallback instead of resolve_rng"

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        aliases = NumpyAliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            operands: list[ast.expr]
            if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.Or):
                operands = node.values
            elif isinstance(node, ast.IfExp):
                operands = [node.body, node.orelse]
            else:
                continue
            for operand in operands:
                if (isinstance(operand, ast.Call)
                        and aliases.random_call_name(operand) == "default_rng"):
                    yield ctx.finding(
                        self.id, node,
                        "inline default_rng fallback; use "
                        "repro.seeding.resolve_rng(rng) so the default "
                        "stream is seeded and defined in one place")
                    break


def _is_exact_decimal(text: str) -> bool:
    """True when the decimal literal round-trips exactly through float64."""
    try:
        return Decimal(text) == Decimal(float(text))
    except (InvalidOperation, ValueError, OverflowError):
        return True  # unparseable/inf: leave to other tooling


@rule
class NakedFloatEq(Rule):
    """Equality against a float literal that binary64 cannot represent.

    ``x == 0.1`` compares against ``0.1000000000000000055511...`` -- the
    comparison silently tests something other than what is written.
    Exactly-representable literals (``0.0``, ``0.5``, ``-3.0``) are
    allowed: this codebase leans on bit-exact arithmetic and compares
    against exact sentinels deliberately.
    """

    id = "naked-float-eq"
    summary = "==/!= against a float literal not exactly representable"

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            comparators = [node.left, *node.comparators]
            flagged: set[int] = set()
            for op, left, right in zip(node.ops, comparators[:-1], comparators[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for candidate in (left, right):
                    if (id(candidate) not in flagged
                            and isinstance(candidate, ast.Constant)
                            and isinstance(candidate.value, float)):
                        text = ast.get_source_segment(ctx.source, candidate)
                        if text is not None and not _is_exact_decimal(text):
                            flagged.add(id(candidate))
                            yield ctx.finding(
                                self.id, candidate,
                                f"{text} is not exactly representable in "
                                "float64; equality will not test the written "
                                "value -- compare with a tolerance")


@rule
class MutableDefault(Rule):
    """Mutable default argument values are shared across calls."""

    id = "mutable-default"
    summary = "list/dict/set default argument shared across calls"

    _LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                 ast.SetComp)
    _CALLS = frozenset({"list", "dict", "set", "deque", "defaultdict"})

    def _is_mutable(self, node: ast.expr | None) -> bool:
        if node is None:
            return False
        if isinstance(node, self._LITERALS):
            return True
        return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in self._CALLS)

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                defaults = [*node.args.defaults, *node.args.kw_defaults]
                for default in defaults:
                    if self._is_mutable(default):
                        yield ctx.finding(
                            self.id, default,
                            "mutable default is evaluated once and shared "
                            "across calls; default to None and construct "
                            "inside the function")


@rule
class BareExcept(Rule):
    """``except:`` swallows KeyboardInterrupt/SystemExit and hides bugs."""

    id = "bare-except"
    summary = "bare `except:` clause"

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield ctx.finding(
                    self.id, node,
                    "bare except catches KeyboardInterrupt and SystemExit; "
                    "name the exception type (or use `except Exception`)")


def _imports_asyncio(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(alias.name.split(".")[0] == "asyncio" for alias in node.names):
                return True
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module and node.module.split(".")[0] == "asyncio":
                return True
    return False


@rule
class UnsupervisedTask(Rule):
    """Async work must be supervised: no orphan tasks, no unbounded waits.

    Two failure modes this repository's serving layer cannot afford:

    * **Fire-and-forget tasks** -- ``asyncio.create_task(...)`` /
      ``ensure_future(...)`` used as a bare statement.  The returned
      task is never awaited, so its exceptions vanish into the event
      loop's default handler and the task itself may be garbage
      collected mid-flight.  Keep a reference and await (or gather) it.
    * **Unbounded awaits on external work** -- ``await x.get()`` /
      ``reader.readline()`` / ``lock.acquire()`` and friends with no
      timeout.  A peer that never answers then wedges the coroutine
      forever; wrap the await in ``asyncio.wait_for(...)`` or an
      ``async with asyncio.timeout(...)`` block.

    Only files importing asyncio are inspected.
    """

    id = "unsupervised-task"
    summary = "fire-and-forget asyncio task or unbounded await on external work"

    _SPAWNERS = frozenset({"create_task", "ensure_future"})
    #: Methods that wait on a peer (queue, stream, socket, lock) and can
    #: therefore block forever if the peer misbehaves.
    _WAIT_METHODS = frozenset({
        "get", "put", "join", "wait", "acquire", "drain", "readline",
        "readexactly", "readuntil", "recv", "recv_into", "accept",
    })

    @staticmethod
    def _call_name(call: ast.Call) -> str | None:
        func = call.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None

    @staticmethod
    def _inside_timeout_block(ctx: LintContext, node: ast.AST) -> bool:
        for parent in ctx.ancestors(node):
            if not isinstance(parent, ast.AsyncWith):
                continue
            for item in parent.items:
                expr = item.context_expr
                func = expr.func if isinstance(expr, ast.Call) else expr
                name = (func.id if isinstance(func, ast.Name)
                        else func.attr if isinstance(func, ast.Attribute)
                        else None)
                if name in ("timeout", "timeout_at"):
                    return True
        return False

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        if not _imports_asyncio(ctx.tree):
            return
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)
                    and self._call_name(node.value) in self._SPAWNERS):
                yield ctx.finding(
                    self.id, node,
                    f"{self._call_name(node.value)}(...) result is discarded; "
                    "the task is unsupervised -- exceptions vanish and the "
                    "task may be garbage collected. Keep a reference and "
                    "await/gather it")
            elif isinstance(node, ast.Await) and isinstance(node.value, ast.Call):
                name = self._call_name(node.value)
                if name in self._WAIT_METHODS and not self._inside_timeout_block(ctx, node):
                    yield ctx.finding(
                        self.id, node,
                        f"await {name}(...) has no timeout and can block "
                        "forever; wrap it in asyncio.wait_for(...) or an "
                        "`async with asyncio.timeout(...)` block")


def _is_no_grad_with(node: ast.With) -> bool:
    for item in node.items:
        expr = item.context_expr
        func = expr.func if isinstance(expr, ast.Call) else expr
        if isinstance(func, ast.Name) and func.id == "no_grad":
            return True
        if isinstance(func, ast.Attribute) and func.attr == "no_grad":
            return True
    return False


@rule
class MissingNoGrad(Rule):
    """Target-network forwards must run under ``no_grad``.

    Calling ``self.q_target(...)`` outside ``no_grad`` records the
    target forward on the tape: gradients silently flow into frozen
    weights and the tape grows with every TD-target evaluation.
    """

    id = "missing-no-grad"
    summary = "target-network forward outside a no_grad block"

    @staticmethod
    def _is_target_forward(call: ast.Call) -> bool:
        # The repo's frozen copies all follow the `<net>_target` naming
        # (q_target, x_target, actor_target, ...).  A `target_*` prefix
        # is NOT matched: names like target_mask/target_encoder are
        # regular data/modules, not frozen networks.
        func = call.func
        return isinstance(func, ast.Attribute) and func.attr.endswith("_target")

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and self._is_target_forward(node)):
                continue
            if any(isinstance(parent, ast.With) and _is_no_grad_with(parent)
                   for parent in ctx.ancestors(node)):
                continue
            assert isinstance(node.func, ast.Attribute)
            yield ctx.finding(
                self.id, node,
                f"target-network forward {node.func.attr}(...) outside "
                "no_grad records frozen weights on the tape; wrap it in "
                "`with nn.no_grad():`")


def _guarded_by_requires_grad(ctx: LintContext, node: ast.AST) -> bool:
    for parent in ctx.ancestors(node):
        if isinstance(parent, ast.If):
            for part in ast.walk(parent.test):
                if isinstance(part, ast.Attribute) and part.attr == "requires_grad":
                    return True
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            break
    return False


@rule
class TapeOpContract(Rule):
    """Structural contract for ops that record work on the tape.

    Two recording styles exist.  Closure-style ops (the frozen legacy
    engine in ``repro.nn.reference``) assign ``out._backward``; they
    must (a) declare their inputs by building ``out`` through
    ``_make_child(data, parents)`` in the same function -- that is what
    registers parent shapes on the tape and routes gradients -- (b)
    guard the recording under a ``requires_grad`` check so inference
    never pays for closure construction, and (c) record a one-argument
    ``grad`` callable.

    Registry-style ops (the live VJP engine in ``repro.nn.tensor``)
    assign ``out._op`` instead; the same (a)/(b) apply, and the op name
    must be a string literal registered through ``defvjp("name", ...)``
    in the same module -- an unregistered name only fails at
    ``backward()`` time, far from the definition site.
    """

    id = "tape-op-contract"
    summary = "tape op breaks the _backward/_op recording contract"

    @staticmethod
    def _enclosing_function(ctx: LintContext,
                            node: ast.AST) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        for parent in ctx.ancestors(node):
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return parent
        return None

    @staticmethod
    def _closure_arg_count(scope: ast.AST, value: ast.expr) -> int | None:
        """Positional-arg count of the assigned backward callable, if known."""
        if isinstance(value, ast.Lambda):
            return len(value.args.args) + len(value.args.posonlyargs)
        if isinstance(value, ast.Name):
            for node in ast.walk(scope):
                if isinstance(node, ast.FunctionDef) and node.name == value.id:
                    return len(node.args.args) + len(node.args.posonlyargs)
        return None

    @staticmethod
    def _registered_vjp_names(ctx: LintContext) -> set[str]:
        """Op names registered via ``defvjp("name", ...)`` in this module."""
        names: set[str] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            callee = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None)
            if callee != "defvjp":
                continue
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                names.add(first.value)
        return names

    def run(self, ctx: LintContext) -> Iterable[Finding]:
        registered: set[str] | None = None
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not (isinstance(target, ast.Attribute)
                    and target.attr in ("_backward", "_op")):
                continue
            slot = target.attr
            if isinstance(node.value, ast.Constant) and node.value.value is None:
                continue  # clearing the slot is always fine
            scope = self._enclosing_function(ctx, node)
            if scope is None:
                yield ctx.finding(self.id, node,
                                  f"{slot} recorded at module scope")
                continue
            calls_make_child = any(
                isinstance(part, ast.Call)
                and ((isinstance(part.func, ast.Attribute)
                      and part.func.attr == "_make_child")
                     or (isinstance(part.func, ast.Name)
                         and part.func.id == "_make_child"))
                for part in ast.walk(scope))
            if not calls_make_child:
                yield ctx.finding(
                    self.id, node,
                    f"op records {slot} without declaring its inputs via "
                    "_make_child(data, parents)")
            if not _guarded_by_requires_grad(ctx, node):
                yield ctx.finding(
                    self.id, node,
                    f"{slot} assignment must be guarded by a requires_grad "
                    "check so inference skips tape bookkeeping")
            if slot == "_backward":
                arg_count = self._closure_arg_count(scope, node.value)
                if arg_count is not None and arg_count != 1:
                    yield ctx.finding(
                        self.id, node,
                        f"backward closure takes {arg_count} arguments; the "
                        "tape replays closures with exactly one (the output "
                        "gradient)")
            else:
                if not (isinstance(node.value, ast.Constant)
                        and isinstance(node.value.value, str)):
                    yield ctx.finding(
                        self.id, node,
                        "_op must be assigned a string literal so the VJP "
                        "lookup is statically checkable")
                else:
                    if registered is None:
                        registered = self._registered_vjp_names(ctx)
                    if node.value.value not in registered:
                        yield ctx.finding(
                            self.id, node,
                            f"_op name {node.value.value!r} has no matching "
                            "defvjp(...) registration in this module; "
                            "backward() would fail at replay time")

"""Incremental lint driver: per-file pass + program pass + cache + baseline.

:func:`lint_project` is the one entry point the CLI and the repo-clean
tests use.  It runs the per-file rule registry over every file, the
whole-program packs (:mod:`repro.analysis.program`) over the
program-eligible subset, and serves both from the hash-keyed
:class:`~repro.analysis.cache.LintCache` when nothing changed.  A
``--changed`` invocation restricts *reporting* to files that differ
from git ``HEAD`` while the program digest still spans the whole tree
-- interprocedural findings stay sound, the fast path stays fast.

The baseline (:func:`load_baseline` / :func:`new_findings`) matches on
``(rule, path, message)`` fingerprints -- deliberately no line numbers,
so reformatting above a grandfathered finding does not resurrect it.
The checked-in baseline for this repo is **empty**: every real finding
the v2 packs surfaced was fixed, not grandfathered.
"""

from __future__ import annotations

import json
import subprocess
import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from .cache import LintCache, content_hash
from .linting import Finding, iter_python_files, lint_source
from .program import PROGRAM_EXCLUDED_PARTS, build_program, lint_program

__all__ = ["LintReport", "lint_project", "changed_files", "load_baseline",
           "new_findings", "write_baseline", "DEFAULT_BASELINE"]

DEFAULT_BASELINE = Path(".reprolint-baseline.json")


@dataclass
class LintReport:
    """Findings plus the accounting the CLI and the cache tests print."""

    findings: list[Finding]
    files_total: int = 0
    cache_hits: int = 0
    program_from_cache: bool = False
    duration: float = 0.0
    #: Findings not covered by the baseline (== findings when no baseline).
    fresh: list[Finding] = field(default_factory=list)

    @property
    def cache_hit_ratio(self) -> float:
        return self.cache_hits / self.files_total if self.files_total else 0.0


def _program_eligible(path: Path) -> bool:
    return not PROGRAM_EXCLUDED_PARTS.intersection(
        part.name for part in path.resolve().parents)


def lint_project(paths: Iterable[str | Path],
                 cache: LintCache | None = None,
                 only: set[str] | None = None,
                 run_program: bool = True) -> LintReport:
    """Lint ``paths`` with both passes, serving unchanged files from cache.

    ``only`` (relpath strings, as produced by :func:`changed_files`)
    restricts which files are linted *and reported*; the program digest
    still covers everything under ``paths`` so a cached program entry
    is only trusted when the whole tree is untouched.
    """
    started = time.perf_counter()
    files = list(iter_python_files(paths))
    sources: dict[str, str] = {}
    hashes: dict[str, str] = {}
    for path in files:
        source = path.read_text(encoding="utf-8")
        sources[str(path)] = source
        hashes[str(path)] = content_hash(source)

    selected = [path for path in files
                if only is None or str(path) in only]

    findings: list[Finding] = []
    for path in selected:
        key = str(path)
        cached = cache.get_file(key, hashes[key]) if cache else None
        if cached is None:
            cached = lint_source(sources[key], key)
            if cache is not None:
                cache.put_file(key, hashes[key], cached)
        findings.extend(cached)

    program_from_cache = False
    if run_program:
        eligible = {key: digest for key, digest in hashes.items()
                    if _program_eligible(Path(key))}
        digest = LintCache.program_digest(eligible)
        program_findings = cache.get_program(digest) if cache else None
        if program_findings is None:
            program_findings = lint_program(build_program(paths))
            if cache is not None:
                cache.put_program(digest, program_findings)
        else:
            program_from_cache = True
        if only is not None:
            program_findings = [finding for finding in program_findings
                                if finding.path in only]
        findings.extend(program_findings)

    if cache is not None:
        cache.save()
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return LintReport(findings=findings, files_total=len(selected),
                      cache_hits=cache.hits if cache else 0,
                      program_from_cache=program_from_cache,
                      duration=time.perf_counter() - started,
                      fresh=list(findings))


# ----------------------------------------------------------------------
# --changed support
# ----------------------------------------------------------------------
def changed_files(root: str | Path = ".") -> set[str] | None:
    """Python files differing from git ``HEAD`` (tracked edits + untracked).

    Returns ``None`` when git is unavailable or this is not a work tree
    -- callers fall back to a full lint rather than linting nothing.
    """
    commands = (
        ["git", "diff", "--name-only", "HEAD", "--", "*.py"],
        ["git", "ls-files", "--others", "--exclude-standard", "--", "*.py"],
    )
    changed: set[str] = set()
    for command in commands:
        try:
            proc = subprocess.run(command, cwd=str(root), capture_output=True,
                                  text=True, timeout=30)
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            return None
        changed.update(line.strip() for line in proc.stdout.splitlines()
                       if line.strip())
    return changed


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------
def _fingerprint(finding: Finding) -> str:
    # No line number: edits above a grandfathered finding must not
    # resurrect it, and duplicates are handled as a multiset.
    return f"{finding.rule}::{finding.path}::{finding.message}"


def load_baseline(path: str | Path = DEFAULT_BASELINE) -> Counter:
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return Counter()
    return Counter({str(key): int(count) for key, count
                    in document.get("fingerprints", {}).items()})


def new_findings(findings: Iterable[Finding],
                 baseline: Counter) -> list[Finding]:
    """Findings not absorbed by the baseline multiset."""
    remaining = Counter(baseline)
    fresh = []
    for finding in findings:
        key = _fingerprint(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            fresh.append(finding)
    return fresh


def write_baseline(findings: Iterable[Finding],
                   path: str | Path = DEFAULT_BASELINE) -> None:
    counts = Counter(_fingerprint(finding) for finding in findings)
    document = {"version": 1,
                "fingerprints": {key: counts[key] for key in sorted(counts)}}
    Path(path).write_text(json.dumps(document, indent=2) + "\n",
                          encoding="utf-8")

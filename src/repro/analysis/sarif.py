"""SARIF 2.1.0 serialization of reprolint findings.

Only the schema-required subset is emitted: tool driver metadata with
the full rule catalogue, and one ``result`` per finding carrying rule
id, message, and physical location.  CI uploads the document so code
hosts can annotate PR lines; findings are emitted at ``error`` level
because the build fails on them.
"""

from __future__ import annotations

import json
from pathlib import PurePath

from .linting import RULES, Finding

__all__ = ["to_sarif", "render_sarif", "SARIF_SCHEMA_URI", "SARIF_VERSION"]

SARIF_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")
SARIF_VERSION = "2.1.0"

#: Findings the framework emits without a registered Rule instance.
_META_RULES = {
    "syntax-error": "file does not parse",
    "bad-suppression": "malformed reprolint suppression comment",
}


def _rule_catalogue() -> list[dict]:
    from .program import PROGRAM_RULES
    catalogue = []
    for rule_id, rule in list(RULES.items()) + list(PROGRAM_RULES.items()):
        catalogue.append({
            "id": rule_id,
            "shortDescription": {"text": rule.summary or rule_id},
        })
    for rule_id, summary in _META_RULES.items():
        catalogue.append({"id": rule_id,
                          "shortDescription": {"text": summary}})
    return catalogue


def _uri(path: str) -> str:
    # as_posix() alone is not enough: on posix hosts a backslash is a
    # valid filename character, so normalize it explicitly too.
    return PurePath(path).as_posix().replace("\\", "/")


def to_sarif(findings: list[Finding], tool_version: str = "2.0") -> dict:
    """Build the SARIF document as a plain dict."""
    results = [{
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": _uri(finding.path)},
                "region": {"startLine": max(finding.line, 1),
                           "startColumn": finding.col + 1},
            },
        }],
    } for finding in findings]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": "reprolint",
                "informationUri":
                    "https://example.invalid/repro/docs/static_analysis.md",
                "version": tool_version,
                "rules": _rule_catalogue(),
            }},
            "results": results,
        }],
    }


def render_sarif(findings: list[Finding]) -> str:
    return json.dumps(to_sarif(findings), indent=2, sort_keys=False)

"""Import graph and approximate call graph over a set of python files.

This is the substrate of reprolint's whole-program pass
(:mod:`repro.analysis.program`).  Given a set of files it derives

* a **module name** per file (``src/repro/serve/server.py`` ->
  ``repro.serve.server``; entry scripts without a package become
  top-level modules named after their stem);
* per-module **import bindings** (``import numpy as np`` ->
  ``np -> numpy``; ``from .types import next_request_id`` ->
  ``next_request_id -> repro.serve.types.next_request_id``), including
  relative imports;
* a catalogue of every function/method/nested def with a stable
  qualified name (``repro.serve.server.InferenceServer.submit``); and
* an approximate **call graph**: caller qualname -> callee qualnames.

Resolution strategy (deliberately conservative -- see
``docs/static_analysis.md`` for the known false-negative edges):

* bare names resolve through enclosing nested defs, module top-level
  functions/classes, then import bindings;
* ``self.m()`` / ``cls.m()`` resolve within the enclosing class, then
  through base classes resolvable inside the program;
* dotted chains rooted at an imported module alias resolve into that
  module's functions and classes;
* ``x = SomeClass(...)`` followed by ``x.m()`` resolves through
  one level of local instance typing;
* calling a class adds an edge to its ``__init__`` when defined.

Anything else (callbacks, dynamic dispatch, values crossing data
structures, callables passed as arguments -- e.g. into
``run_in_executor``) produces **no edge**: the graph under-approximates
so that reachability-based rules err toward missing a finding rather
than inventing one.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = ["FunctionInfo", "ClassInfo", "ModuleInfo", "CallGraph",
           "module_name_for", "build_call_graph", "dotted_name"]


def module_name_for(path: str | Path) -> str:
    """Derive a dotted module name from a file path.

    Walks up while the parent directory holds an ``__init__.py`` (the
    package root), so ``.../src/repro/serve/server.py`` maps to
    ``repro.serve.server`` regardless of where the tree lives.  Files
    outside any package (entry scripts, examples) become top-level
    modules named after their stem.
    """
    path = Path(path).resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    current = path.parent
    while (current / "__init__.py").exists():
        parts.insert(0, current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    return ".".join(parts) if parts else path.stem


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class FunctionInfo:
    """One function, method, or nested def in the program."""

    qualname: str                 # repro.serve.server.InferenceServer.submit
    module: str
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    is_async: bool
    class_name: str | None = None  # unqualified, when this is a method


@dataclass
class ClassInfo:
    """One class: its methods plus the base-name strings for MRO walks."""

    qualname: str
    name: str
    module: str
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    base_names: list[str] = field(default_factory=list)


@dataclass
class ModuleInfo:
    """One file's namespace: bindings, functions, classes."""

    name: str
    path: str
    tree: ast.Module
    #: local name -> dotted target ("numpy", "repro.seeding.resolve_rng", ...)
    bindings: dict[str, str] = field(default_factory=dict)
    #: top-level function name -> info
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: top-level class name -> info
    classes: dict[str, ClassInfo] = field(default_factory=dict)

    def resolve_local(self, name: str) -> str | None:
        """Resolve a bare name in this module's top-level namespace."""
        if name in self.functions:
            return self.functions[name].qualname
        if name in self.classes:
            return self.classes[name].qualname
        return self.bindings.get(name)


def _collect_bindings(module: ModuleInfo) -> None:
    """Record import bindings anywhere in the module (incl. local imports)."""
    package = module.name.rsplit(".", 1)[0] if "." in module.name else ""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    module.bindings[alias.asname] = alias.name
                else:
                    # "import a.b.c" binds the root "a".
                    root = alias.name.split(".")[0]
                    module.bindings.setdefault(root, root)
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # Relative import: climb from the containing package.
                anchor = module.name if module.path.endswith("__init__.py") \
                    else package
                steps = anchor.split(".") if anchor else []
                climbed = steps[:len(steps) - (node.level - 1)] \
                    if node.level > 1 else steps
                prefix = ".".join(climbed)
                base = f"{prefix}.{base}" if base and prefix else (prefix or base)
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = f"{base}.{alias.name}" if base else alias.name
                module.bindings[alias.asname or alias.name] = target


def _collect_defs(module: ModuleInfo,
                  registry: dict[str, FunctionInfo]) -> None:
    """Walk the tree recording every def/class with qualified names."""

    def visit(node: ast.AST, prefix: str, class_info: ClassInfo | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{child.name}"
                info = FunctionInfo(
                    qualname=qualname, module=module.name, path=module.path,
                    node=child, is_async=isinstance(child, ast.AsyncFunctionDef),
                    class_name=class_info.name if class_info else None)
                registry[qualname] = info
                if class_info is not None and prefix == class_info.qualname:
                    class_info.methods[child.name] = info
                if prefix == module.name:
                    module.functions[child.name] = info
                visit(child, qualname, None)
            elif isinstance(child, ast.ClassDef):
                qualname = f"{prefix}.{child.name}"
                info = ClassInfo(qualname=qualname, name=child.name,
                                 module=module.name,
                                 base_names=[name for base in child.bases
                                             if (name := dotted_name(base))])
                if prefix == module.name:
                    module.classes[child.name] = info
                visit(child, qualname, info)
            else:
                visit(child, prefix, class_info)

    visit(module.tree, module.name, None)


class CallGraph:
    """Modules + functions + caller->callee edges over one program."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.edges: dict[str, set[str]] = {}
        #: caller qualname -> surface syntax of calls we could not resolve.
        self.unresolved: dict[str, set[str]] = {}
        #: class qualname -> {attribute name -> class qualname} inferred
        #: from ``self.x = SomeClass(...)`` assignments in ``__init__``.
        self.attr_types: dict[str, dict[str, str]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_module(self, name: str, path: str, tree: ast.Module) -> ModuleInfo:
        module = ModuleInfo(name=name, path=path, tree=tree)
        _collect_bindings(module)
        _collect_defs(module, self.functions)
        self.modules[name] = module
        return module

    def finalize(self) -> None:
        """Infer instance-attribute types, then resolve call edges."""
        for module in self.modules.values():
            for cls in module.classes.values():
                self._collect_attr_types(module, cls)
        for info in list(self.functions.values()):
            module = self.modules[info.module]
            self.edges[info.qualname] = set()
            self._resolve_calls(info, module)

    def _collect_attr_types(self, module: ModuleInfo, cls: ClassInfo) -> None:
        """``self.x = SomeClass(...)`` in ``__init__`` types attribute x."""
        init = cls.methods.get("__init__")
        if init is None:
            return
        types: dict[str, str] = {}
        for node in ast.walk(init.node):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and isinstance(node.value, ast.Call)):
                continue
            called = dotted_name(node.value.func)
            if called is None:
                continue
            attr_cls = self._class_by_dotted(module, called)
            if attr_cls is not None:
                types[target.attr] = attr_cls.qualname
        if types:
            self.attr_types[cls.qualname] = types

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def class_of(self, info: FunctionInfo) -> ClassInfo | None:
        if info.class_name is None:
            return None
        return self.modules[info.module].classes.get(info.class_name)

    def _class_by_dotted(self, module: ModuleInfo,
                         name: str) -> ClassInfo | None:
        """Resolve a (possibly dotted) class name visible in ``module``."""
        head, _, rest = name.partition(".")
        if not rest:
            if name in module.classes:
                return module.classes[name]
            target = module.bindings.get(name)
        else:
            base = module.bindings.get(head) or head
            target = f"{base}.{rest}"
        if target is None:
            return None
        owner, _, cls = target.rpartition(".")
        owning = self.modules.get(owner)
        if owning is not None:
            return owning.classes.get(cls)
        return None

    def _method_in_class(self, module: ModuleInfo, cls: ClassInfo | None,
                         attr: str, seen: set[str] | None = None
                         ) -> FunctionInfo | None:
        """Look up ``attr`` in ``cls`` then its resolvable bases."""
        if cls is None:
            return None
        seen = seen or set()
        if cls.qualname in seen:
            return None
        seen.add(cls.qualname)
        if attr in cls.methods:
            return cls.methods[attr]
        for base_name in cls.base_names:
            owning = self.modules.get(cls.module)
            base = self._class_by_dotted(owning, base_name) if owning else None
            found = self._method_in_class(module, base, attr, seen)
            if found is not None:
                return found
        return None

    def resolve_call(self, call: ast.Call, info: FunctionInfo,
                     local_types: dict[str, str]) -> str | None:
        """Resolve one call inside ``info`` to a target qualname or dotted name.

        Returns either a program-function qualname, a program-class
        qualname (the constructor), or a dotted external name such as
        ``time.sleep`` -- or ``None`` when nothing can be said.
        ``local_types`` maps local variable names to program-class
        qualnames inferred from single ``x = Cls(...)`` assignments.
        """
        module = self.modules[info.module]
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            # Nested defs of enclosing functions shadow module scope.
            nested = f"{info.qualname}.{name}"
            if nested in self.functions:
                return nested
            owner = info.qualname.rsplit(".", 1)[0]
            while owner and owner != module.name:
                candidate = f"{owner}.{name}"
                if candidate in self.functions:
                    return candidate
                owner = owner.rsplit(".", 1)[0]
            return module.resolve_local(name)
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if (isinstance(receiver, ast.Attribute)
                    and isinstance(receiver.value, ast.Name)
                    and receiver.value.id in ("self", "cls")
                    and info.class_name):
                # self.batcher.offer(...) through __init__-typed attributes.
                cls = self.class_of(info)
                attr_qual = (self.attr_types.get(cls.qualname, {})
                             .get(receiver.attr) if cls else None)
                if attr_qual is not None:
                    found = self._method_in_class(
                        module, self._class_by_qualname(attr_qual), func.attr)
                    if found is not None:
                        return found.qualname
                return None
            if isinstance(receiver, ast.Name):
                if receiver.id in ("self", "cls") and info.class_name:
                    found = self._method_in_class(
                        module, self.class_of(info), func.attr)
                    if found is not None:
                        return found.qualname
                    return None
                if receiver.id in local_types:
                    found = self._method_in_class(
                        module,
                        self._class_by_qualname(local_types[receiver.id]),
                        func.attr)
                    return found.qualname if found is not None else None
            dotted = dotted_name(func)
            if dotted is None:
                return None
            head, _, rest = dotted.partition(".")
            base = module.resolve_local(head)
            if base is None:
                return None
            resolved = f"{base}.{rest}" if rest else base
            # Strip trailing attributes until we land on a known symbol.
            if resolved in self.functions:
                return resolved
            owner, _, attr = resolved.rpartition(".")
            owning = self.modules.get(owner)
            if owning is not None:
                if attr in owning.functions:
                    return owning.functions[attr].qualname
                if attr in owning.classes:
                    return owning.classes[attr].qualname
            return resolved  # external dotted name (time.sleep, np.load, ...)
        return None

    def _class_by_qualname(self, qualname: str) -> ClassInfo | None:
        owner, _, cls = qualname.rpartition(".")
        owning = self.modules.get(owner)
        return owning.classes.get(cls) if owning else None

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------
    def _resolve_calls(self, info: FunctionInfo, module: ModuleInfo) -> None:
        local_types = infer_local_types(info.node, self, module)
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            target = self.resolve_call(node, info, local_types)
            if target is None:
                surface = dotted_name(node.func)
                if surface:
                    self.unresolved.setdefault(info.qualname, set()).add(surface)
                continue
            if target in self.functions:
                self.edges[info.qualname].add(target)
            else:
                cls = self._class_by_qualname(target)
                if cls is not None:
                    init = cls.methods.get("__init__")
                    if init is not None:
                        self.edges[info.qualname].add(init.qualname)
                # external targets produce no edge; rules inspect them
                # through resolve_call directly.

    def callees(self, qualname: str) -> set[str]:
        return self.edges.get(qualname, set())

    def reachable_from(self, roots: Iterable[str]) -> set[str]:
        """Transitive closure over call edges from ``roots``."""
        seen: set[str] = set()
        stack = list(roots)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.edges.get(current, ()))
        return seen

    def async_reachable(self) -> set[str]:
        """Functions executing in coroutine context: every ``async def``
        plus everything reachable from one through synchronous call
        edges.  (Callables handed to ``run_in_executor`` produce no
        edge, so executor work is correctly excluded.)"""
        roots = [qualname for qualname, info in self.functions.items()
                 if info.is_async]
        return self.reachable_from(roots)

    def iter_functions(self) -> Iterator[FunctionInfo]:
        yield from self.functions.values()


def infer_local_types(scope: ast.AST, graph: CallGraph,
                      module: ModuleInfo) -> dict[str, str]:
    """``x = Cls(...)`` single-level local instance typing inside ``scope``.

    A name assigned more than once, or from anything but a direct
    program-class construction, is dropped (no type claimed).
    """
    counts: dict[str, int] = {}
    types: dict[str, str] = {}
    for node in ast.walk(scope):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)):
            continue
        name = node.targets[0].id
        counts[name] = counts.get(name, 0) + 1
        if isinstance(node.value, ast.Call):
            called = dotted_name(node.value.func)
            if called is not None:
                cls = graph._class_by_dotted(module, called)
                if cls is not None:
                    types[name] = cls.qualname
                    continue
        types.pop(name, None)
    return {name: qual for name, qual in types.items()
            if counts.get(name, 0) == 1}


def build_call_graph(files: Iterable[tuple[str, ast.Module]]) -> CallGraph:
    """Build the program graph from ``(path, parsed-tree)`` pairs.

    Two package-less entry scripts can share a stem (``a/run.py`` and
    ``b/run.py``); later arrivals get a suffixed module name so neither
    file's namespace is silently clobbered.
    """
    graph = CallGraph()
    for path, tree in files:
        name = module_name_for(path)
        while name in graph.modules:
            name += "_"
        graph.add_module(name, str(path), tree)
    graph.finalize()
    return graph

"""reprolint's whole-program pass: project-level rule packs.

Where :mod:`repro.analysis.rules` checks one file at a time, the rules
here see the *program*: every file is parsed, an import graph and an
approximate call graph are built (:mod:`repro.analysis.callgraph`), and
rules reason over call edges -- a ``time.sleep`` buried two synchronous
calls below an ``async def``, or an RNG constructed in one module and
laundered through a helper into simulator numerics in another.

Three packs ship on top of the graph:

**Async-concurrency pack** (aimed at ``repro.serve`` and the upcoming
multi-process trainer):

* ``blocking-call-in-async`` -- blocking primitives (``time.sleep``,
  sync file/socket IO, subprocess spawns, numpy file IO) executed in
  coroutine context, directly or through synchronous call chains.
* ``lock-held-across-await`` -- a ``threading`` lock held over an
  ``await`` (the whole event loop wedges until the lock frees), or
  acquired at all in coroutine context.
* ``coroutine-shared-mutable-global`` -- module-level mutable state
  mutated from coroutine context: invisible coupling between
  concurrent tasks today, and silently duplicated per-process state
  the day the ROADMAP's worker processes fork.
* ``nondeterministic-iteration`` -- iterating a ``set`` where element
  order can reach numerics or ordered output.  Set iteration order
  depends on hash seeding and insertion history; ``dict`` is
  insertion-ordered in every supported python and is deliberately NOT
  flagged.

**Determinism-taint pack**:

* ``rng-taint`` -- interprocedural upgrade of ``unseeded-rng``: every
  ``np.random`` generator that reaches program code (sim/nn/serve
  numerics, an ``rng=`` argument, object state) must provably
  originate in :mod:`repro.seeding`.  Seeded-at-the-call-site is no
  longer enough; the seed policy lives in exactly one module.

**Process-boundary pack** (guarding the actor-learner trainer):

* ``cross-process-rng`` -- a live ``Generator`` shipped through
  ``multiprocessing.Process(args=...)`` (pickling duplicates the
  stream state), or a module-level RNG read by code reachable from a
  ``Process`` target (``spawn`` re-executes the module per child, so
  every worker gets an identically seeded private copy).

**Performance pack** (guarding the fleet-scale neighbor kernels):

* ``quadratic-neighbor-scan`` -- an all-pairs pass over one
  population: a loop over a collection nested inside a loop over the
  same collection, or a loop that hands the collection to a helper
  which scans it again.  O(N^2) where a
  :class:`repro.sim.spatial.SpatialHash` answers the same per-entity
  queries after one sort.

The pass runs over the *shipped program* -- ``src``, ``examples``,
``scripts`` -- not over ``tests``/``benchmarks``/fixture corpora, whose
ad-hoc seeded generators and intentionally-broken files are their own
point.  See ``docs/static_analysis.md`` for the approximation
boundaries (known false-negative edges) of each rule.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from .callgraph import (CallGraph, FunctionInfo, ModuleInfo, build_call_graph,
                        dotted_name, infer_local_types, module_name_for)
from .linting import (EXTRA_RULE_IDS, Finding, LintContext, _parse_suppressions,
                      iter_python_files)

__all__ = ["ProgramFile", "Program", "ProgramRule", "PROGRAM_RULES",
           "program_rule", "build_program", "lint_program",
           "PROGRAM_EXCLUDED_PARTS"]

#: Path parts that exclude a file from the whole-program pass even when
#: it is linted per-file: test suites and benchmarks construct ad-hoc
#: seeded generators deliberately, and fixture corpora are broken on
#: purpose.
PROGRAM_EXCLUDED_PARTS = frozenset({"tests", "benchmarks", "fixtures",
                                    "__pycache__"})


@dataclass
class ProgramFile:
    """One parsed file participating in the program pass."""

    path: str
    source: str
    tree: ast.Module
    module: str
    ctx: LintContext


class Program:
    """Parsed files + call graph + per-function ownership maps."""

    def __init__(self, files: list[ProgramFile], graph: CallGraph) -> None:
        self.files = files
        self.graph = graph
        self.by_module: dict[str, ProgramFile] = {
            file.module: file for file in files}
        #: id(function node) -> FunctionInfo, for enclosing-scope lookups.
        self.info_by_node: dict[int, FunctionInfo] = {
            id(info.node): info for info in graph.functions.values()}
        self._async_context: set[str] | None = None

    def async_context(self) -> set[str]:
        """Qualnames executing in coroutine context (cached)."""
        if self._async_context is None:
            self._async_context = self.graph.async_reachable()
        return self._async_context

    def file_for(self, info: FunctionInfo) -> ProgramFile:
        return self.by_module[info.module]

    def iter_functions(self) -> Iterator[tuple[FunctionInfo, ProgramFile]]:
        for info in self.graph.iter_functions():
            yield info, self.by_module[info.module]


def own_nodes(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root`` without descending into nested def/class/lambda.

    Nested functions are program functions in their own right; walking
    into them from the enclosing scope would double-report their
    findings under the wrong owner.
    """
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class ProgramRule:
    """Base class for whole-program rules.

    Like :class:`repro.analysis.linting.Rule` but :meth:`run` receives
    the :class:`Program` instead of a single-file context.
    """

    id: str = ""
    summary: str = ""

    def run(self, program: Program) -> Iterable[Finding]:
        raise NotImplementedError


#: Registry of program-rule id -> instance, in registration order.
PROGRAM_RULES: dict[str, ProgramRule] = {}


def program_rule(cls: type[ProgramRule]) -> type[ProgramRule]:
    """Class decorator registering a :class:`ProgramRule` subclass."""
    from .linting import _RULE_ID_RE
    if not cls.id or not _RULE_ID_RE.match(cls.id):
        raise ValueError(f"program rule {cls.__name__} needs a kebab-case id")
    if cls.id in PROGRAM_RULES:
        raise ValueError(f"duplicate program rule id {cls.id!r}")
    PROGRAM_RULES[cls.id] = cls()
    EXTRA_RULE_IDS.add(cls.id)
    return cls


def build_program(paths: Iterable[str | Path]) -> Program:
    """Parse every program-eligible python file under ``paths``.

    Files that fail to parse are skipped here; the per-file pass
    reports them as ``syntax-error`` findings.
    """
    sources: dict[str, str] = {}
    parsed: list[tuple[str, ast.Module]] = []
    seen: set[str] = set()
    for entry in paths:
        entry = Path(entry)
        explicit = not entry.is_dir()
        for path in iter_python_files([entry]):
            # Directory walks honor the exclusions; files passed
            # explicitly are always analyzed (same convention as
            # iter_python_files -- that is how the program-rule fixture
            # corpus gets linted by its tests).
            if not explicit and PROGRAM_EXCLUDED_PARTS.intersection(
                    part.name for part in path.resolve().parents):
                continue
            if str(path) in seen:
                continue
            seen.add(str(path))
            source = path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError:
                continue
            sources[str(path)] = source
            parsed.append((str(path), tree))
    graph = build_call_graph(parsed)
    # Module names come back from the graph (which de-duplicates stem
    # collisions between package-less scripts), keyed by path.
    files = [
        ProgramFile(path=module.path, source=sources[module.path],
                    tree=module.tree, module=module.name,
                    ctx=LintContext(module.path, sources[module.path],
                                    module.tree))
        for module in graph.modules.values()]
    files.sort(key=lambda file: file.path)
    return Program(files, graph)


def lint_program(program_or_paths: Program | Iterable[str | Path],
                 rules: Iterable[ProgramRule] | None = None) -> list[Finding]:
    """Run the program rule packs; returns suppression-filtered findings."""
    if isinstance(program_or_paths, Program):
        program = program_or_paths
    else:
        program = build_program(program_or_paths)
    active = list(PROGRAM_RULES.values()) if rules is None else list(rules)
    suppressions = {
        file.path: _parse_suppressions(file.source, EXTRA_RULE_IDS
                                       | set(_file_rule_ids()))
        for file in program.files}
    findings: list[Finding] = []
    for program_lint_rule in active:
        for finding in program_lint_rule.run(program):
            cover = suppressions.get(finding.path)
            if cover is not None and cover.covers(finding):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def _file_rule_ids() -> set[str]:
    from .linting import RULES
    return set(RULES)


# ----------------------------------------------------------------------
# async-concurrency pack
# ----------------------------------------------------------------------

#: Resolved dotted names that block the calling thread.  numpy file IO
#: is included (disk-bound); numpy *compute* is deliberately not -- the
#: serving layer runs small, bounded numpy math inline by design and
#: routes heavy forwards through the executor.
_BLOCKING_DOTTED = frozenset({
    "time.sleep",
    "os.system", "os.popen", "os.wait", "os.waitpid",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "socket.create_connection", "socket.getaddrinfo",
    "socket.gethostbyname", "socket.gethostbyaddr",
    "urllib.request.urlopen",
    "requests.get", "requests.post", "requests.put", "requests.request",
    "numpy.load", "numpy.save", "numpy.savez", "numpy.savez_compressed",
    "numpy.loadtxt", "numpy.savetxt", "numpy.genfromtxt",
})
#: Blocking builtins (flagged only when the name is not rebound).
_BLOCKING_BUILTINS = frozenset({"open", "input"})
#: Method names that are unambiguously synchronous file IO wherever they
#: appear (Path methods; no builtin type shares these names).
_BLOCKING_METHODS = frozenset({"read_text", "write_text", "read_bytes",
                               "write_bytes"})

_THREADING_LOCKS = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
    "multiprocessing.Lock", "multiprocessing.RLock",
})


def _resolve_module_call(module: ModuleInfo, call: ast.Call) -> str | None:
    """Resolve a call's dotted target using module bindings only."""
    dotted = dotted_name(call.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    base = module.resolve_local(head)
    if base is None:
        return None
    return f"{base}.{rest}" if rest else base


def _sync_lock_names(module: ModuleInfo) -> set[str]:
    """Names/attributes bound to ``threading`` locks anywhere in the file."""
    names: set[str] = set()
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
            continue
        resolved = _resolve_module_call(module, node.value)
        if resolved not in _THREADING_LOCKS:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, ast.Attribute):
                names.add(target.attr)
    return names


def _is_lock_expr(expr: ast.expr, lock_names: set[str]) -> bool:
    if isinstance(expr, ast.Name):
        return expr.id in lock_names
    if isinstance(expr, ast.Attribute):
        return expr.attr in lock_names
    return False


@program_rule
class BlockingCallInAsync(ProgramRule):
    """Blocking primitives must never run on the event loop thread.

    A coroutine that calls ``time.sleep`` (or sync file/socket IO, or a
    subprocess spawn) freezes *every* request the server is juggling
    for the duration -- the micro-batcher stops batching, deadlines
    expire unobserved, health probes stall.  The reach is transitive:
    a synchronous helper is just as blocking when an ``async def``
    calls it three frames up, so this rule walks the call graph, not
    just the ``async def`` bodies.  Route blocking work through
    ``loop.run_in_executor`` (whose callable correctly produces no
    call edge) or an async equivalent (``asyncio.sleep``,
    ``asyncio.to_thread``).
    """

    id = "blocking-call-in-async"
    summary = "blocking primitive (sleep/IO/subprocess) in coroutine context"

    def run(self, program: Program) -> Iterable[Finding]:
        graph = program.graph
        async_context = program.async_context()
        for qualname in sorted(async_context):
            info = graph.functions.get(qualname)
            if info is None:
                continue
            file = program.file_for(info)
            module = graph.modules[info.module]
            local_types = infer_local_types(info.node, graph, module)
            where = ("inside async def" if info.is_async
                     else "in sync function reachable from coroutine context:")
            for node in own_nodes(info.node):
                if not isinstance(node, ast.Call):
                    continue
                resolved = graph.resolve_call(node, info, local_types)
                surface = dotted_name(node.func) or "<call>"
                blocking = False
                if resolved in _BLOCKING_DOTTED:
                    blocking = True
                elif (isinstance(node.func, ast.Name)
                        and node.func.id in _BLOCKING_BUILTINS
                        and module.resolve_local(node.func.id) is None):
                    blocking = True
                elif (isinstance(node.func, ast.Attribute)
                        and node.func.attr in _BLOCKING_METHODS
                        and resolved is None):
                    blocking = True
                if blocking:
                    yield file.ctx.finding(
                        self.id, node,
                        f"{surface}(...) blocks the event loop {where} "
                        f"{info.qualname}; use an async equivalent or "
                        "loop.run_in_executor")


@program_rule
class LockHeldAcrossAwait(ProgramRule):
    """``threading`` locks and coroutines do not mix.

    Holding a sync lock across an ``await`` parks the *event loop
    thread's* only execution context on lock release while every other
    coroutine that wants the lock deadlocks behind it; even a bare
    ``.acquire()`` in coroutine context can block the loop for as long
    as an executor thread holds the lock.  Use ``asyncio.Lock`` for
    coroutine mutual exclusion, or confine the ``threading`` lock to
    executor-side code.
    """

    id = "lock-held-across-await"
    summary = "threading lock held across an await (or acquired in a coroutine)"

    def run(self, program: Program) -> Iterable[Finding]:
        graph = program.graph
        async_context = program.async_context()
        for qualname in sorted(async_context):
            info = graph.functions.get(qualname)
            if info is None:
                continue
            file = program.file_for(info)
            lock_names = _sync_lock_names(graph.modules[info.module])
            if not lock_names:
                continue
            for node in own_nodes(info.node):
                if isinstance(node, ast.With):
                    held = [item for item in node.items
                            if _is_lock_expr(item.context_expr, lock_names)]
                    if held and any(isinstance(part, ast.Await)
                                    for part in ast.walk(node)):
                        yield file.ctx.finding(
                            self.id, node,
                            "threading lock held across an await in "
                            f"{info.qualname}: the event loop cannot switch "
                            "to the task that would release it; use "
                            "asyncio.Lock")
                elif (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "acquire"
                        and _is_lock_expr(node.func.value, lock_names)):
                    yield file.ctx.finding(
                        self.id, node,
                        f"sync lock .acquire() in coroutine context "
                        f"({info.qualname}) can block the event loop; use "
                        "asyncio.Lock or move the critical section into the "
                        "executor")


_MUTABLE_GLOBAL_CALLS = frozenset({
    "list", "dict", "set", "collections.deque", "collections.defaultdict",
    "collections.Counter", "collections.OrderedDict", "itertools.count",
})
_MUTATOR_METHODS = frozenset({
    "append", "appendleft", "add", "update", "pop", "popleft", "popitem",
    "remove", "discard", "clear", "extend", "extendleft", "insert",
    "setdefault",
})


def _module_mutable_globals(module: ModuleInfo) -> dict[str, int]:
    """Module-scope names bound to mutable containers -> definition line."""
    found: dict[str, int] = {}
    for node in module.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        mutable = isinstance(value, (ast.List, ast.Dict, ast.Set,
                                     ast.ListComp, ast.DictComp, ast.SetComp))
        if not mutable and isinstance(value, ast.Call):
            resolved = _resolve_module_call(module, value)
            name = (value.func.id if isinstance(value.func, ast.Name)
                    else None)
            mutable = (resolved in _MUTABLE_GLOBAL_CALLS
                       or name in ("list", "dict", "set"))
        if not mutable:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                found[target.id] = node.lineno
    return found


@program_rule
class CoroutineSharedMutableGlobal(ProgramRule):
    """Module-global mutable state must not be written from coroutines.

    A module-level dict/list/set/counter mutated from coroutine context
    couples every concurrent task through invisible shared state, and
    -- the sharper edge for the ROADMAP's actor-learner workers -- is
    silently *duplicated per process* on fork: each worker advances its
    own copy while believing the state is shared (colliding request
    ids, double-counted metrics).  Hang the state off the owning
    instance, or pass it explicitly.
    """

    id = "coroutine-shared-mutable-global"
    summary = "module-global mutable state mutated from coroutine context"

    def _mutations(self, func: FunctionInfo,
                   globals_: dict[str, int]) -> Iterator[tuple[ast.AST, str, str]]:
        declared_global = {
            name for node in own_nodes(func.node)
            if isinstance(node, ast.Global) for name in node.names}
        for node in own_nodes(func.node):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATOR_METHODS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in globals_):
                yield node, node.func.value.id, f".{node.func.attr}(...)"
            elif (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                    and node.func.id == "next" and node.args
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id in globals_):
                yield node, node.args[0].id, "next(...)"
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if (isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)
                            and target.value.id in globals_):
                        yield node, target.value.id, "subscript store"
                    elif (isinstance(target, ast.Name)
                            and target.id in globals_
                            and target.id in declared_global):
                        yield node, target.id, "rebinding"

    def run(self, program: Program) -> Iterable[Finding]:
        graph = program.graph
        async_context = program.async_context()
        globals_by_module = {
            name: _module_mutable_globals(module)
            for name, module in graph.modules.items()}
        for qualname in sorted(async_context):
            info = graph.functions.get(qualname)
            if info is None:
                continue
            globals_ = globals_by_module.get(info.module, {})
            if not globals_:
                continue
            file = program.file_for(info)
            for node, name, how in self._mutations(info, globals_):
                yield file.ctx.finding(
                    self.id, node,
                    f"module-global {name!r} (defined line "
                    f"{globals_[name]}) mutated via {how} in coroutine "
                    f"context ({info.qualname}); coroutines and forked "
                    "workers would share or silently duplicate it -- move "
                    "the state onto the owning instance")


#: Consumers for which element order provably cannot matter.
_ORDER_INSENSITIVE_CONSUMERS = frozenset({
    "sorted", "len", "any", "all", "min", "max", "set", "frozenset",
})


@program_rule
class NondeterministicIteration(ProgramRule):
    """Iterating a ``set`` leaks hash-order into whatever consumes it.

    Set iteration order depends on element hashes (randomized per
    process for strings) and insertion history.  When that order
    reaches numerics (float accumulation is not associative), a list,
    or ordered output, two identical runs can disagree.  Iterate
    ``sorted(the_set)`` instead, or keep the data in an
    insertion-ordered dict.  ``dict`` iteration is NOT flagged:
    insertion order is guaranteed in every supported python.
    """

    id = "nondeterministic-iteration"
    summary = "iteration over a set where order can reach numerics/output"

    _SET_METHODS = frozenset({"union", "intersection", "difference",
                              "symmetric_difference"})
    _SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

    def _set_names(self, scope: ast.AST) -> set[str]:
        names: set[str] = set()
        for node in own_nodes(scope):
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                if self._is_set_expr(node.value, names):
                    names.add(node.targets[0].id)
                else:
                    names.discard(node.targets[0].id)
        return names

    def _is_set_expr(self, node: ast.expr, set_names: set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.Call):
            if (isinstance(node.func, ast.Name)
                    and node.func.id in ("set", "frozenset")):
                return True
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._SET_METHODS
                    and self._is_set_expr(node.func.value, set_names)):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, self._SET_OPS):
            return (self._is_set_expr(node.left, set_names)
                    or self._is_set_expr(node.right, set_names))
        return False

    def _consumer_is_order_insensitive(self, ctx: LintContext,
                                       node: ast.AST) -> bool:
        parents = ctx.parents()
        parent = parents.get(node)
        if isinstance(parent, ast.Call) and node in parent.args:
            func = parent.func
            name = (func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute) else None)
            return name in _ORDER_INSENSITIVE_CONSUMERS
        return False

    def _scan_scope(self, ctx: LintContext, scope: ast.AST,
                    module_sets: set[str]) -> Iterator[Finding]:
        set_names = module_sets | self._set_names(scope)
        for node in own_nodes(scope):
            if isinstance(node, ast.For):
                if self._is_set_expr(node.iter, set_names):
                    yield ctx.finding(
                        self.id, node,
                        "for-loop iterates a set: element order is "
                        "hash/insertion dependent and reaches the loop "
                        "body; iterate sorted(...) instead")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                if not any(self._is_set_expr(gen.iter, set_names)
                           for gen in node.generators):
                    continue
                if self._consumer_is_order_insensitive(ctx, node):
                    continue
                yield ctx.finding(
                    self.id, node,
                    "comprehension iterates a set into an ordered result; "
                    "wrap the set in sorted(...) (order-insensitive "
                    "consumers like len/any/min are fine)")
            elif (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                    and node.func.id in ("list", "tuple", "sum")
                    and node.args
                    and self._is_set_expr(node.args[0], set_names)):
                yield ctx.finding(
                    self.id, node,
                    f"{node.func.id}(...) over a set captures hash order; "
                    "use sorted(...) first")

    def run(self, program: Program) -> Iterable[Finding]:
        for file in program.files:
            module = program.graph.modules[file.module]
            module_sets = set(_module_set_globals(module))
            yield from self._scan_scope(file.ctx, file.tree, module_sets)
            for info in program.graph.iter_functions():
                if info.module != file.module:
                    continue
                yield from self._scan_scope(file.ctx, info.node, module_sets)


def _module_set_globals(module: ModuleInfo) -> dict[str, int]:
    """Module-scope names bound to set expressions -> definition line."""
    rule = PROGRAM_RULES["nondeterministic-iteration"]
    found: dict[str, int] = {}
    for node in module.tree.body:
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and rule._is_set_expr(node.value, set(found))):
            found[node.targets[0].id] = node.lineno
    return found


# ----------------------------------------------------------------------
# determinism-taint pack
# ----------------------------------------------------------------------

_RNG_CONSTRUCTORS = frozenset({
    "numpy.random.default_rng", "numpy.random.Generator",
    "numpy.random.RandomState",
})
_SANCTIONED_ORIGINS = frozenset({
    "repro.seeding.resolve_rng", "repro.seeding.default_generator",
    "repro.seeding.spawn_stream",
})
#: Modules whose constructions are the sanctioned origins themselves.
_SANCTIONED_MODULES = ("repro.seeding",)


@program_rule
class RngTaint(ProgramRule):
    """Every RNG reaching program numerics originates in ``repro.seeding``.

    The per-file ``unseeded-rng`` rule only demands a seed at the
    construction site.  This rule tracks the constructed generator
    through assignments and call edges: if it is stored on an object,
    passed as an ``rng=`` argument, or handed to any function in the
    program, the construction must be ``repro.seeding.resolve_rng`` /
    ``default_generator`` -- otherwise checkpoint restore and the
    central seed policy cannot see the stream, even if this one call
    site happened to pass a seed.  Helpers that *return* a raw
    generator taint their callers interprocedurally.
    """

    id = "rng-taint"
    summary = "np.random generator reaching program code bypasses repro.seeding"

    # -- summaries ------------------------------------------------------
    def _returns_tainted(self, program: Program) -> set[str]:
        """Fixpoint: functions whose return value is a raw generator."""
        graph = program.graph
        tainted: set[str] = set()
        changed = True
        while changed:
            changed = False
            for info, _file in program.iter_functions():
                if info.qualname in tainted or self._exempt(info.module):
                    continue
                module = graph.modules[info.module]
                local_types = infer_local_types(info.node, graph, module)
                names = self._tainted_names(program, info, local_types, tainted)
                for node in own_nodes(info.node):
                    if not (isinstance(node, ast.Return)
                            and node.value is not None):
                        continue
                    if self._is_tainted_expr(program, info, node.value,
                                             names, local_types, tainted):
                        tainted.add(info.qualname)
                        changed = True
                        break
        return tainted

    @staticmethod
    def _exempt(module_name: str) -> bool:
        return any(module_name == exempt or module_name.startswith(exempt + ".")
                   for exempt in _SANCTIONED_MODULES)

    # -- taint predicates ----------------------------------------------
    def _construction(self, program: Program, info: FunctionInfo,
                      node: ast.expr, local_types: dict[str, str],
                      summaries: set[str]) -> str | None:
        """Dotted origin when ``node`` evaluates to a raw generator."""
        if not isinstance(node, ast.Call):
            return None
        resolved = program.graph.resolve_call(node, info, local_types)
        if resolved in _RNG_CONSTRUCTORS:
            return resolved
        if resolved in summaries and resolved not in _SANCTIONED_ORIGINS:
            return resolved
        return None

    def _is_tainted_expr(self, program: Program, info: FunctionInfo,
                         node: ast.expr, tainted_names: set[str],
                         local_types: dict[str, str],
                         summaries: set[str]) -> bool:
        if isinstance(node, ast.Name):
            return node.id in tainted_names
        return self._construction(program, info, node, local_types,
                                  summaries) is not None

    def _tainted_names(self, program: Program, info: FunctionInfo,
                       local_types: dict[str, str],
                       summaries: set[str]) -> set[str]:
        names: set[str] = set()
        for node in own_nodes(info.node):
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                if self._construction(program, info, node.value,
                                      local_types, summaries):
                    names.add(node.targets[0].id)
        return names

    # -- sink scan ------------------------------------------------------
    def _scan_function(self, program: Program, info: FunctionInfo,
                       file: ProgramFile,
                       summaries: set[str]) -> Iterator[Finding]:
        graph = program.graph
        module = graph.modules[info.module]
        local_types = infer_local_types(info.node, graph, module)
        tainted_names = self._tainted_names(program, info, local_types,
                                            summaries)

        def tainted(expr: ast.expr) -> bool:
            return self._is_tainted_expr(program, info, expr, tainted_names,
                                         local_types, summaries)

        for node in own_nodes(info.node):
            if isinstance(node, ast.Call):
                callee = graph.resolve_call(node, info, local_types)
                in_program = (callee in graph.functions
                              or (callee is not None
                                  and graph._class_by_qualname(callee)
                                  is not None))
                if callee in _SANCTIONED_ORIGINS:
                    continue
                for keyword in node.keywords:
                    if not tainted(keyword.value):
                        continue
                    if keyword.arg == "rng":
                        yield self._finding(
                            file, keyword.value, info,
                            f"rng= argument of "
                            f"{dotted_name(node.func) or 'call'}")
                    elif in_program:
                        yield self._finding(file, keyword.value, info,
                                            f"argument of {callee}")
                if in_program:
                    for arg in node.args:
                        if tainted(arg):
                            yield self._finding(file, arg, info,
                                                f"argument of {callee}")
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Attribute) and tainted(node.value):
                        yield self._finding(
                            file, node.value, info,
                            f"object state {dotted_name(target) or target.attr}")

    def _finding(self, file: ProgramFile, node: ast.AST, info: FunctionInfo,
                 sink: str) -> Finding:
        return file.ctx.finding(
            self.id, node,
            f"np.random generator reaches {sink} (in {info.qualname}) "
            "without originating in repro.seeding; construct it via "
            "resolve_rng/default_generator so the central seed policy and "
            "checkpoint restore govern the stream")

    def run(self, program: Program) -> Iterable[Finding]:
        summaries = self._returns_tainted(program)
        for info, file in program.iter_functions():
            if self._exempt(info.module):
                continue
            yield from self._scan_function(program, info, file, summaries)
        # Module-scope statements (entry scripts build their RNGs at top
        # level) are scanned through a pseudo-function over the module
        # body; own_nodes keeps real functions from being re-scanned.
        for file in program.files:
            if self._exempt(file.module):
                continue
            pseudo = FunctionInfo(
                qualname=f"{file.module}.<module>", module=file.module,
                path=file.path, node=file.tree, is_async=False)
            yield from self._scan_function(program, pseudo, file, summaries)


# ----------------------------------------------------------------------
# process-boundary pack
# ----------------------------------------------------------------------

_PROCESS_CONSTRUCTORS = frozenset({
    "multiprocessing.Process", "multiprocessing.context.Process",
})
_CONTEXT_FACTORIES = frozenset({"multiprocessing.get_context"})
#: Every call whose return value is a live Generator object, sanctioned
#: or not -- for the *cross-process* rule the construction site being
#: blessed does not help: pickling any live stream into a child
#: duplicates its state.
_STREAM_ORIGINS = _RNG_CONSTRUCTORS | _SANCTIONED_ORIGINS


def _resolve_callable_ref(graph: CallGraph, info: FunctionInfo,
                          expr: ast.expr) -> str | None:
    """Resolve a non-call function reference (``target=worker_main``)."""
    module = graph.modules[info.module]
    if isinstance(expr, ast.Name):
        nested = f"{info.qualname}.{expr.id}"
        if nested in graph.functions:
            return nested
        owner = info.qualname.rsplit(".", 1)[0]
        while owner and owner != module.name:
            candidate = f"{owner}.{expr.id}"
            if candidate in graph.functions:
                return candidate
            owner = owner.rsplit(".", 1)[0]
        return module.resolve_local(expr.id)
    dotted = dotted_name(expr)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    base = module.resolve_local(head)
    if base is None:
        return None
    resolved = f"{base}.{rest}" if rest else base
    if resolved in graph.functions:
        return resolved
    owner, _, attr = resolved.rpartition(".")
    owning = graph.modules.get(owner)
    if owning is not None and attr in owning.functions:
        return owning.functions[attr].qualname
    return resolved


def _module_rng_globals(module: ModuleInfo) -> dict[str, int]:
    """Module-scope names bound to live Generator objects -> def line."""
    found: dict[str, int] = {}
    for node in module.tree.body:
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
                and _resolve_module_call(module, node.value) in _STREAM_ORIGINS):
            found[node.targets[0].id] = node.lineno
    return found


def _shadowed_names(func: ast.AST) -> set[str]:
    """Names rebound inside ``func`` (params + simple local assignments),
    minus explicit ``global`` declarations."""
    shadowed: set[str] = set()
    if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        arguments = func.args
        for arg in (*arguments.posonlyargs, *arguments.args,
                    *arguments.kwonlyargs):
            shadowed.add(arg.arg)
        for vararg in (arguments.vararg, arguments.kwarg):
            if vararg is not None:
                shadowed.add(vararg.arg)
    declared_global: set[str] = set()
    for node in own_nodes(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Assign):
            shadowed.update(target.id for target in node.targets
                            if isinstance(target, ast.Name))
        elif isinstance(node, (ast.AugAssign, ast.For)):
            target = node.target
            if isinstance(target, ast.Name):
                shadowed.add(target.id)
    return shadowed - declared_global


@program_rule
class CrossProcessRng(ProgramRule):
    """RNG streams must never cross a process boundary.

    Two ways a stream leaks into a child process, both silent
    determinism killers:

    * a live ``Generator`` in ``Process(args=...)`` -- pickling
      duplicates the bit-generator state, so parent and child draw the
      *same* sequence while the checkpoint layer restores only the
      parent's copy;
    * a module-level generator read by any function reachable from a
      ``Process`` ``target=`` -- under the ``spawn`` start method every
      child re-executes the module and constructs its *own* copy, one
      per process, all identically seeded.

    Ship plain seed material instead (ints, ``(root, key)`` tuples) and
    derive the stream inside the child via
    ``repro.seeding.spawn_stream``, whose ``spawn_key`` addressing makes
    each derived stream a pure function of the key -- that is exactly
    what the parallel trainer's workers do.  ``ctx.Process`` from a
    local ``multiprocessing.get_context(...)`` binding is recognized;
    callables crossing the boundary inside containers or functools
    partials are not (documented false negative).
    """

    id = "cross-process-rng"
    summary = "RNG stream crossing a process boundary (args or spawn-read global)"

    def _context_names(self, program: Program, info: FunctionInfo,
                       local_types: dict[str, str]) -> set[str]:
        names: set[str] = set()
        for node in own_nodes(info.node):
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)
                    and program.graph.resolve_call(node.value, info, local_types)
                    in _CONTEXT_FACTORIES):
                names.add(node.targets[0].id)
        return names

    def _process_calls(self, program: Program, info: FunctionInfo
                       ) -> Iterator[ast.Call]:
        graph = program.graph
        module = graph.modules[info.module]
        local_types = infer_local_types(info.node, graph, module)
        contexts = self._context_names(program, info, local_types)
        for node in own_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            if graph.resolve_call(node, info, local_types) in _PROCESS_CONSTRUCTORS:
                yield node
            elif (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "Process"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in contexts):
                yield node

    def _stream_locals(self, program: Program, info: FunctionInfo) -> set[str]:
        graph = program.graph
        module = graph.modules[info.module]
        local_types = infer_local_types(info.node, graph, module)
        names: set[str] = set()
        for node in own_nodes(info.node):
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)
                    and graph.resolve_call(node.value, info, local_types)
                    in _STREAM_ORIGINS):
                names.add(node.targets[0].id)
        return names

    def _scan_args(self, program: Program, info: FunctionInfo,
                   file: ProgramFile, call: ast.Call) -> Iterator[Finding]:
        graph = program.graph
        module = graph.modules[info.module]
        local_types = infer_local_types(info.node, graph, module)
        stream_locals = self._stream_locals(program, info)
        payload = next((kw.value for kw in call.keywords if kw.arg == "args"),
                       None)
        if not isinstance(payload, (ast.Tuple, ast.List)):
            return
        for element in payload.elts:
            leaking = (isinstance(element, ast.Name)
                       and element.id in stream_locals)
            if not leaking and isinstance(element, ast.Call):
                leaking = (graph.resolve_call(element, info, local_types)
                           in _STREAM_ORIGINS)
            if leaking:
                yield file.ctx.finding(
                    self.id, element,
                    f"live np.random Generator in Process(args=...) (in "
                    f"{info.qualname}): pickling duplicates the stream "
                    "state across the process boundary; ship seed material "
                    "and derive the stream in the child via "
                    "repro.seeding.spawn_stream")

    def _spawn_targets(self, program: Program, info: FunctionInfo,
                       call: ast.Call) -> Iterator[str]:
        target = next((kw.value for kw in call.keywords
                       if kw.arg == "target"), None)
        if target is None:
            return
        resolved = _resolve_callable_ref(program.graph, info, target)
        if resolved in program.graph.functions:
            yield resolved

    def run(self, program: Program) -> Iterable[Finding]:
        graph = program.graph
        scopes: list[tuple[FunctionInfo, ProgramFile]] = list(
            program.iter_functions())
        for file in program.files:
            scopes.append((FunctionInfo(
                qualname=f"{file.module}.<module>", module=file.module,
                path=file.path, node=file.tree, is_async=False), file))

        targets: set[str] = set()
        for info, file in scopes:
            for call in self._process_calls(program, info):
                yield from self._scan_args(program, info, file, call)
                targets.update(self._spawn_targets(program, info, call))
        if not targets:
            return

        rng_globals_by_module: dict[str, dict[str, int]] = {}
        reported: set[tuple[str, int, int, str]] = set()
        for qualname in sorted(graph.reachable_from(sorted(targets))):
            info = graph.functions.get(qualname)
            if info is None or RngTaint._exempt(info.module):
                continue
            if info.module not in rng_globals_by_module:
                rng_globals_by_module[info.module] = _module_rng_globals(
                    graph.modules[info.module])
            rng_globals = rng_globals_by_module[info.module]
            if not rng_globals:
                continue
            file = program.file_for(info)
            shadowed = _shadowed_names(info.node)
            for node in own_nodes(info.node):
                if not (isinstance(node, ast.Name)
                        and isinstance(node.ctx, ast.Load)
                        and node.id in rng_globals
                        and node.id not in shadowed):
                    continue
                key = (file.path, node.lineno, node.col_offset, node.id)
                if key in reported:
                    continue
                reported.add(key)
                yield file.ctx.finding(
                    self.id, node,
                    f"module-level RNG {node.id!r} (defined line "
                    f"{rng_globals[node.id]}) is read by {info.qualname}, "
                    "which runs in a spawned worker process: each child "
                    "re-executes the module and gets an identically seeded "
                    "private copy; pass seed material through the task and "
                    "derive the stream via repro.seeding.spawn_stream")


# ----------------------------------------------------------------------
# performance pack
# ----------------------------------------------------------------------

#: Iterable wrappers that preserve the underlying population: looping
#: over ``sorted(world)`` is still a pass over ``world``.
_ITER_UNWRAP_CALLS = frozenset({"list", "sorted", "tuple", "reversed",
                                "enumerate"})
_ITER_VIEW_METHODS = frozenset({"items", "values", "keys"})


@program_rule
class QuadraticNeighborScan(ProgramRule):
    """All-pairs scans over one population that an index makes linear.

    The classic shape is ``for a in world: for b in world: ...`` -- a
    per-entity neighbor search written as a nested pass over the same
    collection, O(N^2) in the population size.  The interprocedural
    variant hides the inner pass in a helper: a loop over ``world``
    that calls a program function handing it ``world`` again, where
    that function runs its own loop over the parameter.  Both shapes
    are what :class:`repro.sim.spatial.SpatialHash` exists to replace:
    build the index once (one lexsort) and answer every per-entity
    query with a batched ``searchsorted``.

    Scans re-entering via wrappers (``sorted(world)``,
    ``world.items()``) are recognized; loops over *different*
    collections are not flagged, and neither are helpers that merely
    receive the population without iterating it.
    """

    id = "quadratic-neighbor-scan"
    summary = "nested all-pairs iteration over one population"

    def _iter_base(self, node: ast.expr) -> str | None:
        """The population name an iterable expression ultimately walks."""
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in _ITER_VIEW_METHODS
                    and isinstance(func.value, ast.Name) and not node.args):
                return func.value.id
            if (isinstance(func, ast.Name)
                    and func.id in _ITER_UNWRAP_CALLS and node.args):
                return self._iter_base(node.args[0])
        return None

    def _loops(self, scope: ast.AST) -> Iterator[tuple[ast.For, str]]:
        for node in own_nodes(scope):
            if isinstance(node, ast.For):
                base = self._iter_base(node.iter)
                if base is not None:
                    yield node, base

    def _iterated_params(self, info: FunctionInfo) -> set[str]:
        """Parameter names this function loops over."""
        arguments = info.node.args
        params = {arg.arg for arg in arguments.args + arguments.kwonlyargs
                  + arguments.posonlyargs}
        return {base for _, base in self._loops(info.node) if base in params}

    def _params_bound_to(self, call: ast.Call, callee: FunctionInfo,
                         base: str) -> set[str]:
        """Callee parameter names that receive ``base`` in this call."""
        params = [arg.arg for arg in callee.node.args.posonlyargs
                  + callee.node.args.args]
        if (params and params[0] in ("self", "cls")
                and isinstance(call.func, ast.Attribute)):
            params = params[1:]
        bound: set[str] = set()
        for position, arg in enumerate(call.args):
            if (isinstance(arg, ast.Name) and arg.id == base
                    and position < len(params)):
                bound.add(params[position])
        for keyword in call.keywords:
            if (keyword.arg is not None and isinstance(keyword.value, ast.Name)
                    and keyword.value.id == base):
                bound.add(keyword.arg)
        return bound

    def _scan_nested(self, ctx: LintContext, scope: ast.AST
                     ) -> Iterator[Finding]:
        for outer, base in self._loops(scope):
            for node in own_nodes(outer):
                if (isinstance(node, ast.For)
                        and self._iter_base(node.iter) == base):
                    yield ctx.finding(
                        self.id, node,
                        f"nested loop re-scans {base!r} for every element "
                        f"of {base!r}: O(N^2) in the population; build a "
                        "repro.sim.spatial.SpatialHash once and answer "
                        "per-element queries with a batched searchsorted")

    def _scan_calls(self, program: Program, info: FunctionInfo,
                    file: ProgramFile) -> Iterator[Finding]:
        graph = program.graph
        module = graph.modules[info.module]
        local_types = None
        for outer, base in self._loops(info.node):
            for node in own_nodes(outer):
                if not isinstance(node, ast.Call):
                    continue
                passes_base = (
                    any(isinstance(arg, ast.Name) and arg.id == base
                        for arg in node.args)
                    or any(isinstance(keyword.value, ast.Name)
                           and keyword.value.id == base
                           for keyword in node.keywords))
                if not passes_base:
                    continue
                if local_types is None:
                    local_types = infer_local_types(info.node, graph, module)
                qualname = graph.resolve_call(node, info, local_types)
                callee = graph.functions.get(qualname) \
                    if qualname is not None else None
                if callee is None:
                    continue
                bound = self._params_bound_to(node, callee, base)
                if bound & self._iterated_params(callee):
                    yield file.ctx.finding(
                        self.id, node,
                        f"loop over {base!r} calls {callee.qualname}, "
                        f"which scans the same population again: O(N^2) "
                        "overall; hoist the inner pass or query a "
                        "repro.sim.spatial.SpatialHash built once outside "
                        "the loop")

    def run(self, program: Program) -> Iterable[Finding]:
        for file in program.files:
            yield from self._scan_nested(file.ctx, file.tree)
        for info, file in program.iter_functions():
            yield from self._scan_nested(file.ctx, info.node)
            yield from self._scan_calls(program, info, file)

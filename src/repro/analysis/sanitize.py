"""Opt-in runtime sanitizer for the autograd tape and the sim engine.

Activated by ``REPRO_SANITIZE=1`` (see ``repro/__init__``) or an explicit
:func:`install` call, the sanitizer monkey-patches checking wrappers onto
:class:`repro.nn.tensor.Tensor` and
:class:`repro.sim.engine.SimulationEngine`.  When not installed nothing
is patched, so the hot paths carry **zero** overhead by default.

Checks (each raises :class:`SanitizerError` with a stable check id):

``tape-dtype``
    Every op output must stay ``float64`` -- the gradcheck tolerances
    and the bit-exact checkpoint format both assume it.
``tape-nonfinite``
    An op produced NaN/inf from all-finite inputs: the numerical origin
    of a blow-up, reported where it happens instead of epochs later.
    Deliberate fault-injection can whitelist a region with
    :func:`allow_nonfinite`.
``tape-broadcast``
    An arithmetic op broadcast two operands into a result strictly
    larger than both (e.g. ``(3,) + (3,1) -> (3,3)``): almost always a
    forgotten ``reshape``, silently accepted by numpy.
``tape-leak``
    ``backward()`` reached nodes that already carry gradients from an
    earlier replay -- the graph is being re-run, double-counting every
    shared subexpression.
``sim-nonfinite`` / ``sim-lane-bounds``
    After every engine step, all vehicle states must be finite and every
    lane index within the road.

The tier-1 suite is expected to pass with the sanitizer installed
(``REPRO_SANITIZE=1 python -m pytest``); CI runs a fast subset that way
on every push.  Overhead is measured in ``docs/static_analysis.md``.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from functools import wraps
from typing import Iterator

import numpy as np

from ..nn.tensor import Tensor
from ..sim.engine import SimulationEngine

__all__ = ["ENV_VAR", "SanitizerError", "allow_nonfinite", "install",
           "install_if_enabled", "is_active", "reset_stats", "stats",
           "uninstall"]

ENV_VAR = "REPRO_SANITIZE"


class SanitizerError(RuntimeError):
    """A sanitizer check failed; ``check`` is the stable check id."""

    def __init__(self, check: str, message: str) -> None:
        super().__init__(f"[{check}] {message}")
        self.check = check


class _State:
    """Module-singleton bookkeeping for the installed wrappers."""

    def __init__(self) -> None:
        self.active = False
        self.nonfinite_depth = 0
        self.originals: dict[tuple[type, str], object] = {}
        self.counters: dict[str, int] = {}

    def bump(self, key: str, amount: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + amount


_state = _State()


def is_active() -> bool:
    """Whether the sanitizer wrappers are currently installed."""
    return _state.active


def stats() -> dict[str, int]:
    """Counters collected since install/:func:`reset_stats` (a copy)."""
    return dict(_state.counters)


def reset_stats() -> None:
    _state.counters.clear()


@contextmanager
def allow_nonfinite() -> Iterator[None]:
    """Suspend the ``tape-nonfinite`` check for deliberate fault tests."""
    _state.nonfinite_depth += 1
    try:
        yield
    finally:
        _state.nonfinite_depth -= 1


def _patch(cls: type, name: str, wrapper) -> None:
    _state.originals[(cls, name)] = getattr(cls, name)
    setattr(cls, name, wrapper)


def _wrap_make_child(original):
    @wraps(original)
    def checked(self: Tensor, data, parents) -> Tensor:
        parents = tuple(parents)
        out = original(self, data, parents)
        _state.bump("tape_nodes")
        array = out.data
        if array.dtype != np.float64:
            raise SanitizerError(
                "tape-dtype",
                f"op produced dtype {array.dtype}; the tape must stay "
                "float64 (gradcheck and checkpoint formats assume it)")
        if _state.nonfinite_depth == 0 and not np.isfinite(array).all():
            if all(np.isfinite(parent.data).all() for parent in parents):
                raise SanitizerError(
                    "tape-nonfinite",
                    "op produced NaN/inf from all-finite inputs (shape "
                    f"{array.shape}); this is the numerical origin of the "
                    "blow-up")
        return out
    return checked


def _wrap_binary(original, op_name: str):
    @wraps(original)
    def checked(self: Tensor, other):
        other_data = other.data if isinstance(other, Tensor) else None
        if other_data is not None and self.data.ndim >= 1 \
                and other_data.ndim >= 1 and self.data.shape != other_data.shape:
            try:
                result_shape = np.broadcast_shapes(self.data.shape, other_data.shape)
            except ValueError:
                result_shape = None  # incompatible; let the op raise numpy's error
            if result_shape is not None:
                result_size = math.prod(result_shape)
                if result_size > max(self.data.size, other_data.size):
                    raise SanitizerError(
                        "tape-broadcast",
                        f"{op_name} broadcast {self.data.shape} with "
                        f"{other_data.shape} into the larger {result_shape}; "
                        "outer-product style broadcasts of mismatched "
                        "trailing dims are almost always a missing reshape")
        return original(self, other)
    return checked


def _wrap_backward(original):
    @wraps(original)
    def checked(self: Tensor, grad=None):
        stale = 0
        count = 0
        seen: set[int] = set()
        stack: list[Tensor] = [self]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            count += 1
            # The VJP engine marks every consumed node ``_done``; a
            # reachable done node means this graph (or a shared piece of
            # it) was already replayed.  Report it as the sanitizer
            # check before the engine raises its own RuntimeError.
            if node._done:
                stale += 1
            stack.extend(node._parents)
        if stale:
            raise SanitizerError(
                "tape-leak",
                f"backward() reached {stale} tape node(s) already consumed "
                "by an earlier replay; rebuild the graph (or keep a fresh "
                "forward pass per backward) instead of re-running it")
        _state.bump("backward_calls")
        _state.bump("tape_nodes_replayed", count)
        return original(self, grad)
    return checked


def _wrap_step(original):
    @wraps(original)
    def checked(self: SimulationEngine):
        events = original(self)
        _state.bump("sim_steps")
        num_lanes = self.road.num_lanes
        for vid, vehicle in self.vehicles.items():
            state = vehicle.state
            if not (math.isfinite(state.lon) and math.isfinite(state.v)):
                raise SanitizerError(
                    "sim-nonfinite",
                    f"vehicle {vid!r} has non-finite state after step "
                    f"{self.step_count}: lon={state.lon}, v={state.v}")
            if not 1 <= state.lat <= num_lanes:
                raise SanitizerError(
                    "sim-lane-bounds",
                    f"vehicle {vid!r} on lane {state.lat} after step "
                    f"{self.step_count}; valid lanes are 1..{num_lanes}")
        return events
    return checked


def install() -> None:
    """Install the checking wrappers (idempotent)."""
    if _state.active:
        return
    _patch(Tensor, "_make_child", _wrap_make_child(Tensor._make_child))
    _patch(Tensor, "backward", _wrap_backward(Tensor.backward))
    for op_name in ("__add__", "__mul__", "__truediv__"):
        _patch(Tensor, op_name, _wrap_binary(getattr(Tensor, op_name), op_name))
    # __radd__/__rmul__ were bound to the original functions at class
    # creation; scalar-left operands cannot trigger the broadcast check,
    # and their outputs still pass through the wrapped _make_child.
    _patch(SimulationEngine, "step", _wrap_step(SimulationEngine.step))
    _state.active = True


def uninstall() -> None:
    """Restore the unwrapped methods (idempotent)."""
    if not _state.active:
        return
    for (cls, name), original in _state.originals.items():
        setattr(cls, name, original)
    _state.originals.clear()
    _state.active = False


def install_if_enabled(environ=os.environ) -> bool:
    """Install when :data:`ENV_VAR` is set to a truthy value."""
    if environ.get(ENV_VAR, "") not in ("", "0"):
        install()
        return True
    return False

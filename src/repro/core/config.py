"""Configuration for the HEAD framework.

Defaults reproduce the paper's Section V-A settings; the scaled-down
profile used by tests and benchmarks (shorter road, fewer episodes) is
available through :meth:`HEADConfig.scaled`, keeping the full-scale
setup one call away.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..decision.reward import RewardWeights
from ..sim import constants

__all__ = ["HEADConfig"]


@dataclass(frozen=True)
class HEADConfig:
    """All knobs of the HEAD framework in one place."""

    # Environment (paper Section V-A)
    road_length: float = constants.ROAD_LENGTH
    num_lanes: int = constants.NUM_LANES
    density_per_km: float = constants.DENSITY_PER_KM
    max_episode_steps: int = 2000

    # Enhanced perception
    sensor_range: float = constants.SENSOR_RANGE
    history_steps: int = constants.HISTORY_STEPS
    attention_dim: int = 64
    lstm_dim: int = 64
    use_phantoms: bool = True
    use_prediction: bool = True
    #: Wrap the predictor in a PerceptionGuard (NaN/envelope fallback).
    #: Bit-transparent while predictions are healthy, so the default is on.
    use_guard: bool = True
    perception_epochs: int = 15
    perception_batch_size: int = 64
    perception_lr: float = 1e-3

    # Maneuver decision
    branched_networks: bool = True
    hidden_dim: int = 64
    gamma: float = 0.9
    replay_capacity: int = 20_000
    batch_size: int = 64
    tau: float = 0.01
    training_episodes: int = 4_000
    reward_weights: RewardWeights = field(default_factory=RewardWeights)

    @staticmethod
    def paper() -> "HEADConfig":
        """The exact Section V-A configuration."""
        return HEADConfig()

    def scaled(self, road_length: float = 600.0, density_per_km: float = 120.0,
               training_episodes: int = 60, max_episode_steps: int = 160,
               attention_dim: int = 32, lstm_dim: int = 32,
               hidden_dim: int = 32, replay_capacity: int = 10_000,
               perception_epochs: int = 15) -> "HEADConfig":
        """A CPU-friendly profile preserving every code path.

        Used by tests and default benchmark runs; see DESIGN.md for the
        substitution rationale.
        """
        return replace(self, road_length=road_length, density_per_km=density_per_km,
                       training_episodes=training_episodes,
                       max_episode_steps=max_episode_steps,
                       attention_dim=attention_dim, lstm_dim=lstm_dim,
                       hidden_dim=hidden_dim, replay_capacity=replay_capacity,
                       perception_epochs=perception_epochs)

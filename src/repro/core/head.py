"""The HEAD framework facade: enhanced perception + maneuver decision.

Wires the two modules of Fig. 1 together behind a small API:

>>> head = HEAD(HEADConfig().scaled(), rng=np.random.default_rng(0))
>>> head.train_perception(trajectories)       # LST-GAT on recorded data
>>> head.train_decision(episodes=60)          # BP-DQN in the simulator
>>> report = head.evaluate(seeds=range(20))   # paper metrics

Ablation variants (Table II) are constructed by
:mod:`repro.core.variants`.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..data.trajectories import TrajectorySet
from ..decision.agents import PDQNAgent
from ..decision.environment import DrivingEnv
from ..decision.fleet import FleetController, FleetEnv
from ..decision.policies import AgentController, Controller
from ..decision.reward import HybridReward
from ..decision.trainer import RLTrainingLog, train_agent
from ..eval.episodes import evaluate_controller
from ..eval.metrics import EvaluationReport
from ..faults.guard import PerceptionGuard
from ..nn.serialization import load_module, save_module
from ..perception.dataset import build_samples
from ..perception.lstgat import LSTGAT
from ..perception.module import EnhancedPerception
from ..perception.sensor import Sensor
from ..perception.training import TrainingResult, train_predictor
from ..sim.road import Road
from .config import HEADConfig
from ..seeding import resolve_rng

__all__ = ["HEAD"]


class HEAD(object):
    """enHanced pErception + mAneuver Decision, assembled per config."""

    def __init__(self, config: HEADConfig | None = None,
                 rng: np.random.Generator | None = None,
                 name: str = "HEAD") -> None:
        self.config = config or HEADConfig()
        self.rng = resolve_rng(rng)
        self.name = name
        cfg = self.config

        self.predictor: LSTGAT | None = None
        if cfg.use_prediction:
            self.predictor = LSTGAT(attention_dim=cfg.attention_dim,
                                    lstm_dim=cfg.lstm_dim,
                                    history_steps=cfg.history_steps,
                                    rng=self.rng)
        # The guard is bit-transparent for healthy predictions; online
        # perception consumes it in place of the raw predictor while
        # training (:meth:`train_perception`) keeps optimizing the raw
        # module directly.
        self.guard: PerceptionGuard | None = None
        if self.predictor is not None and cfg.use_guard:
            self.guard = PerceptionGuard(self.predictor)
        self.perception = EnhancedPerception(
            predictor=self.guard or self.predictor,
            sensor=Sensor(detection_range=cfg.sensor_range),
            history_steps=cfg.history_steps,
            use_phantoms=cfg.use_phantoms,
        )
        self.reward = HybridReward(weights=cfg.reward_weights)
        self.agent = PDQNAgent(
            branched=cfg.branched_networks,
            hidden_dim=cfg.hidden_dim,
            gamma=cfg.gamma,
            batch_size=cfg.batch_size,
            buffer_capacity=cfg.replay_capacity,
            tau=cfg.tau,
            rng=self.rng,
        )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def road(self) -> Road:
        return Road(length=self.config.road_length, num_lanes=self.config.num_lanes)

    def make_env(self, max_steps: int | None = None) -> DrivingEnv:
        """A driving environment wired to this HEAD instance."""
        return DrivingEnv(self.perception, reward=self.reward, road=self.road(),
                          density_per_km=self.config.density_per_km,
                          max_steps=max_steps or self.config.max_episode_steps)

    def make_fleet_env(self, num_avs: int,
                       max_steps: int | None = None) -> FleetEnv:
        """A fleet environment: ``num_avs`` HEAD agents, one engine.

        Each AV gets a fresh :class:`EnhancedPerception` (trackers and
        phantom state are per-ego) sharing this instance's predictor,
        so fleet perception still runs as one stacked LST-GAT forward.
        """
        cfg = self.config
        perceptions = [
            EnhancedPerception(
                predictor=self.guard or self.predictor,
                sensor=Sensor(detection_range=cfg.sensor_range),
                history_steps=cfg.history_steps,
                use_phantoms=cfg.use_phantoms,
            )
            for _ in range(num_avs)
        ]
        return FleetEnv(perceptions, reward=self.reward, road=self.road(),
                        density_per_km=cfg.density_per_km,
                        max_steps=max_steps or cfg.max_episode_steps)

    def controller(self) -> Controller:
        """The trained policy as an evaluation controller."""
        return AgentController(self.agent, name=self.name)

    def fleet_controller(self) -> FleetController:
        """The trained policy batched across a fleet."""
        return FleetController(self.agent, name=f"{self.name}-fleet")

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def train_perception(self, trajectories: TrajectorySet,
                         max_egos: int = 8,
                         epochs: int | None = None) -> TrainingResult:
        """Train LST-GAT on recorded trajectories (paper: the REAL set)."""
        if self.predictor is None:
            raise RuntimeError("this variant has no prediction model to train")
        samples = build_samples(trajectories, max_egos=max_egos,
                                sensor=self.perception.sensor,
                                history_steps=self.config.history_steps,
                                rng=self.rng)
        return train_predictor(self.predictor, samples,
                               epochs=epochs or self.config.perception_epochs,
                               batch_size=self.config.perception_batch_size,
                               lr=self.config.perception_lr, rng=self.rng)

    def train_decision(self, episodes: int | None = None,
                       seed_offset: int = 10_000,
                       env: DrivingEnv | None = None,
                       checkpoint_dir: str | Path | None = None,
                       checkpoint_every: int = 0,
                       resume: bool = True,
                       max_episode_steps: int | None = None,
                       workers: int = 1,
                       sync_every: int = 8,
                       learn_every: int = 1) -> RLTrainingLog:
        """Train BP-DQN in the simulator (paper: 4,000 episodes).

        With ``checkpoint_dir``/``checkpoint_every`` set, the run is
        crash-safe: training state is snapshotted atomically and a
        killed process resumes to the same learning curve.

        ``workers >= 2`` switches to the actor-learner trainer
        (:mod:`repro.train`): ``workers`` processes generate episodes
        against policy snapshots refreshed every ``sync_every``
        episodes, and the learning curve is bitwise invariant in the
        worker count -- but it is a *different* schedule from the
        serial loop, which keeps learning mid-episode; ``workers=1``
        therefore stays on the serial path so existing runs reproduce.
        See ``docs/training.md`` for the contract.
        """
        episodes = episodes or self.config.training_episodes
        if workers >= 2:
            import functools

            from ..train import (build_agent, build_env, predictor_state,
                                 train_agent_parallel)
            if env is not None:
                raise ValueError("parallel training builds worker "
                                 "environments from the config; a "
                                 "pre-built env cannot be shipped to "
                                 "worker processes")
            return train_agent_parallel(
                self.agent,
                functools.partial(build_env, self.config,
                                  predictor=predictor_state(self),
                                  max_steps=max_episode_steps),
                episodes, workers=workers,
                agent_factory=functools.partial(build_agent, self.config,
                                                learner=False),
                sync_every=sync_every, learn_every=learn_every,
                seed_offset=seed_offset,
                max_episode_steps=max_episode_steps,
                checkpoint_dir=checkpoint_dir,
                checkpoint_every=checkpoint_every, resume=resume)
        env = env or self.make_env()
        return train_agent(self.agent, env,
                           episodes=episodes,
                           seed_offset=seed_offset,
                           learn_every=learn_every,
                           checkpoint_dir=checkpoint_dir,
                           checkpoint_every=checkpoint_every,
                           resume=resume,
                           max_episode_steps=max_episode_steps)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, seeds: range | list[int],
                 env: DrivingEnv | None = None) -> EvaluationReport:
        """Run greedy test episodes and compute the paper metrics."""
        env = env or self.make_env()
        return evaluate_controller(self.controller(), env, seeds)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, directory: str | Path) -> Path:
        """Checkpoint all trainable components under ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        if self.predictor is not None:
            save_module(self.predictor, directory / "lstgat")
        save_module(self.agent.x_net, directory / "x_net")
        save_module(self.agent.q_net, directory / "q_net")
        return directory

    def load(self, directory: str | Path) -> "HEAD":
        """Restore a checkpoint produced by :meth:`save`."""
        directory = Path(directory)
        if self.predictor is not None:
            load_module(self.predictor, directory / "lstgat.npz")
        load_module(self.agent.x_net, directory / "x_net.npz")
        load_module(self.agent.q_net, directory / "q_net.npz")
        self.agent.x_target.copy_from(self.agent.x_net)
        self.agent.q_target.copy_from(self.agent.q_net)
        return self

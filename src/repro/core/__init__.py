"""The HEAD framework: configuration, facade, and ablation variants."""

from .config import HEADConfig
from .head import HEAD
from .variants import (full_head, head_without_pvc, head_without_lstgat,
                       head_without_bpdqn, head_without_impact, ALL_VARIANTS)

__all__ = [
    "HEADConfig", "HEAD",
    "full_head", "head_without_pvc", "head_without_lstgat",
    "head_without_bpdqn", "head_without_impact", "ALL_VARIANTS",
]

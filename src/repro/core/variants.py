"""HEAD ablation variants (paper Table II).

Each factory removes exactly one component:

* **HEAD-w/o-PVC** -- no phantom vehicle construction; unobservable
  slots are zero-padded.
* **HEAD-w/o-LST-GAT** -- no state prediction; the future half of the
  augmented state is zeros, decisions use current observations only.
* **HEAD-w/o-BP-DQN** -- the branched networks are replaced by the
  vanilla single-branch P-DQN.
* **HEAD-w/o-IMP** -- the impact reward term is removed (w4 = 0).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from .config import HEADConfig
from .head import HEAD

__all__ = ["full_head", "head_without_pvc", "head_without_lstgat",
           "head_without_bpdqn", "head_without_impact", "ALL_VARIANTS"]


def full_head(config: HEADConfig, rng: np.random.Generator) -> HEAD:
    """The complete framework."""
    return HEAD(config, rng=rng, name="HEAD")


def head_without_pvc(config: HEADConfig, rng: np.random.Generator) -> HEAD:
    """Table II row 1: zero states instead of phantom vehicles."""
    return HEAD(replace(config, use_phantoms=False), rng=rng, name="HEAD-w/o-PVC")


def head_without_lstgat(config: HEADConfig, rng: np.random.Generator) -> HEAD:
    """Table II row 2: no future-state prediction."""
    return HEAD(replace(config, use_prediction=False), rng=rng,
                name="HEAD-w/o-LST-GAT")


def head_without_bpdqn(config: HEADConfig, rng: np.random.Generator) -> HEAD:
    """Table II row 3: vanilla P-DQN instead of the branched networks."""
    return HEAD(replace(config, branched_networks=False), rng=rng,
                name="HEAD-w/o-BP-DQN")


def head_without_impact(config: HEADConfig, rng: np.random.Generator) -> HEAD:
    """Table II row 4: drop the impact reward term."""
    weights = replace(config.reward_weights, impact=0.0)
    return HEAD(replace(config, reward_weights=weights), rng=rng,
                name="HEAD-w/o-IMP")


#: All Table II rows plus the full framework, in paper order.
ALL_VARIANTS = {
    "HEAD-w/o-PVC": head_without_pvc,
    "HEAD-w/o-LST-GAT": head_without_lstgat,
    "HEAD-w/o-BP-DQN": head_without_bpdqn,
    "HEAD-w/o-IMP": head_without_impact,
    "HEAD": full_head,
}

"""Trajectory data: recording, persistence, and the REAL dataset substitute."""

from .trajectories import (
    Snapshot, TrajectorySet, record_trajectories, generate_real_dataset,
    REAL_SEGMENT_LENGTH,
)

__all__ = [
    "Snapshot", "TrajectorySet", "record_trajectories", "generate_real_dataset",
    "REAL_SEGMENT_LENGTH",
]

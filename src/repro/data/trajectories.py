"""Trajectory recording and the NGSIM-like "REAL" dataset substitute.

The paper trains LST-GAT on REAL, a merge of the NGSIM US-101 and I-80
recordings: conventional vehicles on a 1.14 km six-lane highway segment
sampled at the paper's 0.5 s granularity.  NGSIM raw data cannot be
shipped offline, so :func:`generate_real_dataset` synthesizes an
equivalent corpus by simulating heterogeneous human drivers (randomized
Krauss/IDM parameters, MOBIL lane changes) on the same geometry and
recording every vehicle's state per step.  The statistical features the
predictor consumes -- dense multi-lane interaction, lane changes,
heterogeneous speeds, 0.5 s sampling -- are preserved; see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..seeding import default_generator
from ..sim import Road, SimulationEngine, populate_traffic, replenish_traffic
from ..sim.vehicle import VehicleState

__all__ = ["Snapshot", "TrajectorySet", "record_trajectories", "generate_real_dataset"]

#: Length of the NGSIM US-101 / I-80 merged segment (m), from the paper.
REAL_SEGMENT_LENGTH = 1140.0

#: Snapshot maps vehicle id -> state at one time step.
Snapshot = dict[str, VehicleState]


@dataclass
class TrajectorySet:
    """A recorded traffic scene: one snapshot per time step.

    Attributes
    ----------
    snapshots:
        ``snapshots[t][vid]`` is the state of ``vid`` at step ``t``;
        vehicles appear only while they are on the segment.
    road:
        Geometry the scene was recorded on.
    """

    snapshots: list[Snapshot]
    road: Road

    def __len__(self) -> int:
        return len(self.snapshots)

    def vehicle_ids(self) -> list[str]:
        """All vehicle ids that ever appear, sorted."""
        ids: set[str] = set()
        for snapshot in self.snapshots:
            ids.update(snapshot)
        return sorted(ids)

    def presence_span(self, vid: str) -> tuple[int, int]:
        """Return ``(first_step, last_step)`` at which ``vid`` is present."""
        steps = [t for t, snapshot in enumerate(self.snapshots) if vid in snapshot]
        if not steps:
            raise KeyError(f"vehicle {vid!r} never appears")
        return steps[0], steps[-1]

    def split(self, ratio: float = 0.8) -> tuple["TrajectorySet", "TrajectorySet"]:
        """Chronological train/test split (paper uses 4:1)."""
        if not 0.0 < ratio < 1.0:
            raise ValueError("split ratio must be in (0, 1)")
        cut = int(len(self.snapshots) * ratio)
        return (TrajectorySet(self.snapshots[:cut], self.road),
                TrajectorySet(self.snapshots[cut:], self.road))

    # ------------------------------------------------------------------
    # persistence (NGSIM-like flat records)
    # ------------------------------------------------------------------
    def to_records(self) -> np.ndarray:
        """Flatten to NGSIM-like rows ``(step, vehicle_index, lane, lon, v)``."""
        ids = {vid: index for index, vid in enumerate(self.vehicle_ids())}
        rows = [
            (t, ids[vid], state.lat, state.lon, state.v)
            for t, snapshot in enumerate(self.snapshots)
            for vid, state in sorted(snapshot.items())
        ]
        return np.array(rows, dtype=np.float64)

    def save(self, path: str | Path) -> Path:
        """Persist to ``.npz`` (records + road geometry)."""
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_suffix(path.suffix + ".npz")
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez(path, records=self.to_records(),
                 road=np.array([self.road.length, self.road.num_lanes,
                                self.road.lane_width, self.road.v_min, self.road.v_max]))
        return path

    @staticmethod
    def load(path: str | Path) -> "TrajectorySet":
        """Load a set persisted by :meth:`save`."""
        with np.load(Path(path)) as archive:
            records = archive["records"]
            length, lanes, width, v_min, v_max = archive["road"]
        road = Road(length=float(length), num_lanes=int(lanes), lane_width=float(width),
                    v_min=float(v_min), v_max=float(v_max))
        steps = int(records[:, 0].max()) + 1 if len(records) else 0
        snapshots: list[Snapshot] = [{} for _ in range(steps)]
        for step, vehicle_index, lane, lon, velocity in records:
            snapshots[int(step)][f"v{int(vehicle_index)}"] = VehicleState(
                lat=int(lane), lon=float(lon), v=float(velocity))
        return TrajectorySet(snapshots, road)


def record_trajectories(engine: SimulationEngine, steps: int,
                        include_retired: bool = False) -> TrajectorySet:
    """Run ``engine`` for ``steps`` steps recording every vehicle state."""
    snapshots: list[Snapshot] = []
    for _ in range(steps):
        snapshots.append({vid: vehicle.state for vid, vehicle in engine.vehicles.items()})
        engine.step()
    return TrajectorySet(snapshots, engine.road)


def generate_real_dataset(seed: int = 0, steps: int = 300,
                          density_per_km: float = 170.0,
                          slowdown_rate: float = 0.004,
                          slowdown_duration: int = 12,
                          road: Road | None = None) -> TrajectorySet:
    """Synthesize the REAL dataset substitute (see module docstring).

    NGSIM US-101 / I-80 are congested stop-and-go recordings, so besides
    high density the generator injects random slowdown events: a driver
    temporarily halves their desired speed (distraction, merging truck,
    rubbernecking), which launches the backward-propagating braking
    waves characteristic of those datasets.  These events are what give
    interaction-aware predictors their edge -- a target's imminent
    braking is visible in its *leader's* state before it shows in the
    target's own history.

    Parameters
    ----------
    seed:
        Seeds the traffic draw, driver imperfection and slowdown events.
    steps:
        Recording length; 300 steps = 150 s of traffic.
    density_per_km:
        Total density; NGSIM's congested segments run well above free flow.
    slowdown_rate:
        Per-vehicle per-step probability of starting a slowdown event.
    slowdown_duration:
        Event length in steps (12 steps = 6 s).
    """
    road = road or Road(length=REAL_SEGMENT_LENGTH)
    rng = default_generator(seed)
    engine = SimulationEngine(road=road, rng=rng)
    populate_traffic(engine, rng, density_per_km=density_per_km)
    snapshots: list[Snapshot] = []
    active_slowdowns: dict[str, tuple[int, float]] = {}
    for _ in range(steps):
        replenish_traffic(engine, rng, density_per_km=density_per_km)
        _advance_slowdowns(engine, rng, active_slowdowns,
                           slowdown_rate, slowdown_duration)
        snapshots.append({vid: vehicle.state for vid, vehicle in engine.vehicles.items()})
        engine.step()
    return TrajectorySet(snapshots, road)


def _advance_slowdowns(engine: SimulationEngine, rng: np.random.Generator,
                       active: dict[str, tuple[int, float]],
                       rate: float, duration: int) -> None:
    """Start, tick, and end the random slowdown events."""
    for vid in list(active):
        steps_left, original = active[vid]
        vehicle = engine.vehicles.get(vid)
        if vehicle is None or steps_left <= 0:
            if vehicle is not None:
                vehicle.profile.desired_speed = original
            del active[vid]
        else:
            active[vid] = (steps_left - 1, original)
    for vid, vehicle in engine.vehicles.items():
        if vid not in active and rng.random() < rate:
            active[vid] = (duration, vehicle.profile.desired_speed)
            vehicle.profile.desired_speed *= float(rng.uniform(0.25, 0.55))
    # Profiles were mutated in place; the engine caches them as arrays.
    engine.invalidate_profiles()

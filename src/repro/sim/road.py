"""Road geometry: a straight multi-lane segment with numbered lanes.

Lanes are numbered 1..num_lanes from leftmost to rightmost, matching the
paper's convention (Section II-A); longitudinal positions run from 0 at
the origin to ``length`` at the destination.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import constants

__all__ = ["Road"]


@dataclass(frozen=True)
class Road:
    """Immutable description of the simulated road segment."""

    length: float = constants.ROAD_LENGTH
    num_lanes: int = constants.NUM_LANES
    lane_width: float = constants.LANE_WIDTH
    v_min: float = constants.V_MIN
    v_max: float = constants.V_MAX

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError("road length must be positive")
        if self.num_lanes < 1:
            raise ValueError("road needs at least one lane")
        if not 0 <= self.v_min < self.v_max:
            raise ValueError("speed limits must satisfy 0 <= v_min < v_max")

    def is_valid_lane(self, lane: int) -> bool:
        """Return True when ``lane`` is a drivable lane number."""
        return 1 <= lane <= self.num_lanes

    def clamp_speed(self, velocity: float) -> float:
        """Clamp a velocity to the legal [v_min, v_max] range."""
        return min(max(velocity, self.v_min), self.v_max)

    def lateral_offset(self, lane_a: int, lane_b: int) -> float:
        """Signed lateral distance (m) from lane_b to lane_a (Eq. 2)."""
        return (lane_a - lane_b) * self.lane_width

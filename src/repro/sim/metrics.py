"""Macroscopic traffic-flow analytics for the simulator.

The paper's motivation is traffic-level: poor maneuvers of single
vehicles ripple into congestion.  These helpers measure the macroscopic
state of a simulation -- density, space-mean speed, flow (the
fundamental diagram quantities) and stop-and-go wave statistics -- so
experiments can quantify traffic-level effects beyond the paper's
per-vehicle metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .engine import SimulationEngine

__all__ = ["FlowState", "measure_flow", "TimeSpaceRecorder"]


@dataclass(frozen=True)
class FlowState:
    """Macroscopic snapshot of a road section."""

    density_per_km: float     # vehicles per km (all lanes)
    mean_speed: float         # space-mean speed (m/s)
    flow_per_hour: float      # veh/h past a point (q = k * v)
    stopped_fraction: float   # share of vehicles slower than 2 m/s

    @property
    def congested(self) -> bool:
        """Rough congestion indicator: >15% of vehicles near standstill."""
        return self.stopped_fraction > 0.15


def measure_flow(engine: SimulationEngine,
                 section: tuple[float, float] | None = None) -> FlowState:
    """Compute the fundamental-diagram quantities for a road section.

    Parameters
    ----------
    section:
        ``(lon_min, lon_max)`` window; defaults to the whole road.
    """
    road = engine.road
    lo, hi = section if section is not None else (0.0, road.length)
    if hi <= lo:
        raise ValueError("section must have positive length")
    speeds = [vehicle.v for vehicle in engine.vehicles.values()
              if lo <= vehicle.lon < hi]
    length_km = (hi - lo) / 1000.0
    density = len(speeds) / length_km if length_km > 0 else 0.0
    mean_speed = float(np.mean(speeds)) if speeds else 0.0
    flow = density * mean_speed * 3.6  # veh/km * m/s * 3.6 = veh/h
    stopped = (sum(1 for v in speeds if v < 2.0) / len(speeds)) if speeds else 0.0
    return FlowState(density_per_km=density, mean_speed=mean_speed,
                     flow_per_hour=flow, stopped_fraction=stopped)


class TimeSpaceRecorder:
    """Collect per-step (time, position, speed) points for wave analysis.

    Produces the raw data of a time-space diagram; the backward-moving
    low-speed bands in it are the stop-and-go waves the paper's impact
    reward is designed to dampen.
    """

    def __init__(self) -> None:
        self.times: list[float] = []
        self.positions: list[float] = []
        self.speeds: list[float] = []

    def record(self, engine: SimulationEngine) -> None:
        """Snapshot every vehicle at the engine's current step."""
        from . import constants

        now = engine.step_count * constants.DT
        for vehicle in engine.vehicles.values():
            self.times.append(now)
            self.positions.append(vehicle.lon)
            self.speeds.append(vehicle.v)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (times, positions, speeds) as numpy arrays."""
        return (np.asarray(self.times), np.asarray(self.positions),
                np.asarray(self.speeds))

    def slow_zone_fraction(self, threshold: float = 5.0) -> float:
        """Share of recorded points below the speed threshold."""
        if not self.speeds:
            return 0.0
        speeds = np.asarray(self.speeds)
        return float((speeds < threshold).mean())

"""Scripted traffic scenarios for tests, examples, and debugging.

Each scenario builds a deterministic engine around an autonomous
vehicle, exercising one canonical interaction pattern:

* :func:`cut_in` -- a conventional vehicle merges closely in front of
  the AV (the situation the impact reward penalizes when the AV causes
  it, and emergency braking absorbs when survivable);
* :func:`stop_and_go_wave` -- a braking wave travels backward through a
  platoon toward the AV (the congestion pattern from the paper's
  introduction);
* :func:`blocked_lane` -- the AV approaches a slow platoon with one
  free lane (the classic lane-change decision);
* :func:`platoon` -- steady-state car following.

All scenarios return ``(engine, av)`` with the AV uncontrolled; tests
and examples drive it via ``engine.set_maneuver``.

:func:`dense_platoon` is different: a CV-only packed steady-state scene
used by the vectorization benchmark and the equivalence/property tests,
returning just the engine.
"""

from __future__ import annotations

import numpy as np

from ..seeding import default_generator
from .carfollowing import CarFollowingModel
from .engine import SimulationEngine
from .road import Road
from .spawn import random_profile
from .vehicle import DriverProfile, Vehicle, VehicleState

__all__ = ["cut_in", "stop_and_go_wave", "blocked_lane", "platoon",
           "dense_platoon"]


def _engine(num_lanes: int = 3, length: float = 2000.0) -> SimulationEngine:
    return SimulationEngine(road=Road(length=length, num_lanes=num_lanes),
                            rng=default_generator(0))


def _calm_profile(desired_speed: float = 22.0) -> DriverProfile:
    return DriverProfile(desired_speed=desired_speed, imperfection=0.0,
                         lane_change_threshold=10.0)  # no spontaneous changes


def cut_in(gap: float = 12.0, speed_delta: float = 4.0
           ) -> tuple[SimulationEngine, Vehicle]:
    """A CV one lane over, positioned to merge ``gap`` meters ahead.

    The merger has a strong incentive (slow leader in its own lane) and
    a clear MOBIL-safe gap, so it changes lanes within a few steps.
    """
    engine = _engine()
    av = engine.add_vehicle(Vehicle("av", VehicleState(2, 100.0, 20.0),
                                    is_autonomous=True))
    engine.add_vehicle(Vehicle(
        "merger", VehicleState(3, 100.0 + gap + 5.0, 20.0 - speed_delta),
        profile=DriverProfile(desired_speed=25.0, imperfection=0.0,
                              politeness=0.0, lane_change_threshold=0.05)))
    engine.add_vehicle(Vehicle(
        "obstruction", VehicleState(3, 100.0 + gap + 25.0, 3.0),
        profile=_calm_profile(3.0)))
    return engine, av


def stop_and_go_wave(platoon_size: int = 8, headway: float = 18.0
                     ) -> tuple[SimulationEngine, Vehicle]:
    """The AV follows a platoon whose leader brakes to a crawl.

    The braking front propagates backward vehicle by vehicle -- by the
    time it reaches the AV's predecessor, an interaction-aware predictor
    has seen it coming for several steps.
    """
    engine = _engine(num_lanes=1, length=3000.0)
    front = 100.0 + platoon_size * headway
    engine.add_vehicle(Vehicle("wave_head", VehicleState(1, front + headway, 18.0),
                               profile=_calm_profile(2.0)))  # decelerating head
    for index in range(platoon_size):
        lon = front - index * headway
        engine.add_vehicle(Vehicle(f"p{index}", VehicleState(1, lon, 18.0),
                                   profile=_calm_profile(22.0)))
    av = engine.add_vehicle(Vehicle(
        "av", VehicleState(1, front - platoon_size * headway, 18.0),
        is_autonomous=True))
    return engine, av


def blocked_lane(platoon_speed: float = 6.0) -> tuple[SimulationEngine, Vehicle]:
    """Slow platoon ahead in the AV's lane; the left lane is free."""
    engine = _engine(num_lanes=2)
    av = engine.add_vehicle(Vehicle("av", VehicleState(2, 100.0, 20.0),
                                    is_autonomous=True))
    for index in range(4):
        engine.add_vehicle(Vehicle(
            f"slow{index}", VehicleState(2, 150.0 + 14.0 * index, platoon_speed),
            profile=_calm_profile(platoon_speed)))
    return engine, av


def platoon(size: int = 5, headway: float = 25.0, speed: float = 20.0
            ) -> tuple[SimulationEngine, Vehicle]:
    """Steady-state single-lane car following behind ``size`` vehicles."""
    engine = _engine(num_lanes=1)
    for index in range(size):
        engine.add_vehicle(Vehicle(
            f"p{index}", VehicleState(1, 200.0 + headway * index, speed),
            profile=_calm_profile(speed)))
    av = engine.add_vehicle(Vehicle("av", VehicleState(1, 200.0 - headway, speed),
                                    is_autonomous=True))
    return engine, av


def dense_platoon(seed: int = 0, size: int = 30, num_lanes: int = 3,
                  road_length: float = 3000.0,
                  reference: bool = False,
                  car_following: CarFollowingModel | None = None
                  ) -> SimulationEngine:
    """Packed CV-only traffic that stays on the road: the benchmark scene.

    ``size`` heterogeneous conventional vehicles are squeezed into the
    first ~400 m of a long road, so for hundreds of steps every vehicle
    keeps following, dawdling, and competing for lanes -- a steady-state
    hot-path workload with no retirements, unlike open-road episodes
    that drain and leave the step loop underloaded.
    """
    rng = default_generator(seed)
    engine = SimulationEngine(road=Road(length=road_length, num_lanes=num_lanes),
                              car_following=car_following,
                              rng=rng, reference=reference)
    per_lane = (size + num_lanes - 1) // num_lanes
    spacing = 380.0 / per_lane
    placed = 0
    for lane in range(1, num_lanes + 1):
        for slot in range(per_lane):
            if placed >= size:
                break
            lon = 20.0 + slot * spacing + float(rng.uniform(-3.0, 3.0))
            profile = random_profile(rng, engine.road)
            velocity = float(np.clip(profile.desired_speed * rng.uniform(0.6, 0.9),
                                     engine.road.v_min, engine.road.v_max))
            engine.add_vehicle(Vehicle(f"cv{placed:03d}",
                                       VehicleState(lane, lon, velocity),
                                       profile=profile))
            placed += 1
    return engine

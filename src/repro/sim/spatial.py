"""Lane-sorted spatial index with batched neighbor kernels.

:class:`SpatialHash` generalizes the engine's former ``_SortedLanes``
helper: one ``lexsort`` over ``(lane, lon)`` builds per-lane sorted
segments, after which every neighbor query is a ``searchsorted`` on a
contiguous slice.  Two query families share the index:

``neighbors``
    Nearest same-lane leader/follower per query row — the engine's
    car-following topology (strictly ahead / strictly behind).

``six_area_neighbors``
    The paper's six key areas (Fig. 2) for *M* centers at once,
    returning an ``(M, 6)`` matrix of row indices (-1 when an area is
    empty).  Column ``k`` is area ``k+1``: front-left, front, front-
    right, rear-left, rear, rear-right.  The kernel is bit-identical to
    the scalar :func:`repro.perception.neighbors.select_neighbors`
    classifier, including its tie-breaking (see below).

Tie-breaking contract
---------------------
The scalar classifier scans candidates in iteration order and keeps the
first minimum-distance hit per area (strict ``<`` comparison).  Two
candidates tie only when they share both lane and longitude, and
``lexsort`` is stable, so equal ``(lane, lon)`` rows preserve input
order inside a sorted run.  Rear queries therefore snap to the *first*
row of an equal-longitude run; front queries land there automatically
(``side='right'`` returns the first strictly-greater element).  Callers
must supply rows in the scalar candidate-iteration order for ties to
resolve identically — :func:`repro.perception.neighbors.
select_neighbors_batch` does.

Area semantics mirror ``area_of`` exactly: "ahead" is strictly greater
longitude, so a same-lane candidate at the center's exact position is
excluded (self-exclusion), while an *adjacent*-lane candidate exactly
alongside counts as rear (areas 4/6 use an inclusive bound).
"""

from __future__ import annotations

import numpy as np

#: Sentinel index meaning "no neighbor in this area".
NO_NEIGHBOR = -1

_NO_NEIGHBOR = np.array([NO_NEIGHBOR])


class SpatialHash:
    """Lane-sorted position arrays for one-shot batched neighbor queries.

    Parameters
    ----------
    lane:
        Integer lane per row (lanes are 1-based; out-of-range lanes are
        tolerated and simply never matched).
    lon:
        Longitudinal position per row.
    num_lanes:
        Number of lanes on the road.
    lane_targets:
        Optional precomputed ``arange(1, num_lanes + 2)`` (the engine
        passes its cached copy); built on demand otherwise.
    """

    __slots__ = ("order", "sorted_lon", "starts", "num_lanes", "_lane_ids")

    def __init__(self, lane: np.ndarray, lon: np.ndarray, num_lanes: int,
                 lane_targets: np.ndarray | None = None) -> None:
        self.order = np.lexsort((lon, lane))
        sorted_lane = lane[self.order]
        self.sorted_lon = lon[self.order]
        if lane_targets is None:
            lane_targets = np.arange(1, num_lanes + 2)
        # python-int starts keep the query loop off numpy scalar indexing.
        self.starts = sorted_lane.searchsorted(lane_targets).tolist()
        self.num_lanes = num_lanes
        self._lane_ids: dict[int, np.ndarray] = {}

    def _ids_with_sentinel(self, lane_no: int, start: int, stop: int) -> np.ndarray:
        """Row ids of one lane segment plus the trailing -1 sentinel.

        Cached per lane: every query family re-reads the same segments,
        and the concatenation is the only allocation in the hot loop.
        """
        cached = self._lane_ids.get(lane_no)
        if cached is None:
            cached = np.concatenate((self.order[start:stop], _NO_NEIGHBOR))
            self._lane_ids[lane_no] = cached
        return cached

    def neighbors(self, query_lane: np.ndarray, query_lon: np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray]:
        """Per-row indices of the nearest leader/follower (-1 when absent)."""
        count = query_lane.shape[0]
        leader = np.full(count, NO_NEIGHBOR, dtype=np.int64)
        follower = np.full(count, NO_NEIGHBOR, dtype=np.int64)
        starts = self.starts
        sorted_lon = self.sorted_lon
        for lane_no in range(1, self.num_lanes + 1):
            start = starts[lane_no - 1]
            stop = starts[lane_no]
            if start == stop:
                continue
            mask = query_lane == lane_no
            segment = sorted_lon[start:stop]
            # Trailing -1 sentinel: a query past the last vehicle indexes
            # position ``size`` and one before the first indexes ``-1``,
            # both landing on the sentinel -- no clamping or masking.
            ids = self._ids_with_sentinel(lane_no, start, stop)
            lon_in_lane = query_lon[mask]
            leader[mask] = ids[segment.searchsorted(lon_in_lane, side="right")]
            follower[mask] = ids[segment.searchsorted(lon_in_lane, side="left") - 1]
        return leader, follower

    def _lane_pass(self, query_lane: np.ndarray, query_lon: np.ndarray,
                   inclusive_rear: bool) -> tuple[np.ndarray, np.ndarray]:
        """Nearest front/rear row index per query against one lane column.

        ``inclusive_rear`` selects the adjacent-lane semantics where a
        candidate exactly alongside (equal lon) counts as rear; the
        same-lane pass uses the strict bound so the center never matches
        itself.  Rear hits are snapped to the first row of their
        equal-longitude run to reproduce the scalar first-wins tie-break.
        """
        count = query_lane.shape[0]
        front = np.full(count, NO_NEIGHBOR, dtype=np.int64)
        rear = np.full(count, NO_NEIGHBOR, dtype=np.int64)
        starts = self.starts
        sorted_lon = self.sorted_lon
        num_lanes = self.num_lanes
        if count <= 4:
            # Scalar fast path: perception-side queries are one ego or a
            # handful of targets, where per-row searchsorted beats the
            # fixed cost of masked vectorized assembly.  The arithmetic
            # is the same calls on the same arrays, so results are
            # identical to the vectorized branch below.
            for row, lane_no in enumerate(query_lane.tolist()):
                if lane_no < 1 or lane_no > num_lanes:
                    continue
                start = starts[lane_no - 1]
                stop = starts[lane_no]
                if start == stop:
                    continue
                segment = sorted_lon[start:stop]
                ids = self._ids_with_sentinel(lane_no, start, stop)
                value = query_lon[row]
                first_greater = segment.searchsorted(value, side="right")
                front[row] = ids[first_greater]
                if inclusive_rear:
                    rear_pos = first_greater - 1
                else:
                    rear_pos = segment.searchsorted(value, side="left") - 1
                if rear_pos >= 0:
                    rear_pos = segment.searchsorted(segment[rear_pos],
                                                    side="left")
                rear[row] = ids[rear_pos]
            return front, rear
        # Iterate only lanes present in the query: fleet-side queries are
        # a handful of rows spanning at most three lanes, so scanning all
        # lanes would spend the whole pass on empty-mask bookkeeping.
        # (A python set beats np.unique at these sizes by an order of
        # magnitude; sorting keeps the visit order deterministic.)
        for lane_no in sorted(set(query_lane.tolist())):
            if lane_no < 1 or lane_no > num_lanes:
                continue
            start = starts[lane_no - 1]
            stop = starts[lane_no]
            if start == stop:
                continue
            mask = query_lane == lane_no
            segment = sorted_lon[start:stop]
            ids = self._ids_with_sentinel(lane_no, start, stop)
            lon_in_lane = query_lon[mask]
            first_greater = segment.searchsorted(lon_in_lane, side="right")
            front[mask] = ids[first_greater]
            if inclusive_rear:
                rear_pos = first_greater - 1
            else:
                rear_pos = segment.searchsorted(lon_in_lane, side="left") - 1
            valid = rear_pos >= 0
            if valid.any():
                # Snap within the equal-lon run: lexsort stability makes
                # the run's first row the scalar tie-break winner.
                snapped = segment.searchsorted(segment[rear_pos[valid]],
                                               side="left")
                rear_pos[valid] = snapped
            rear[mask] = ids[rear_pos]
        return front, rear

    def six_area_neighbors(self, center_lane: np.ndarray,
                           center_lon: np.ndarray) -> np.ndarray:
        """``(M, 6)`` nearest-row matrix for the paper's six key areas.

        Column ``k`` holds area ``k+1``; entries are indices into the
        rows this hash was built from, or -1 when the area is empty.
        Centers that are themselves hash rows are excluded from their
        own same-lane areas by the strict bounds; an adjacent-lane
        candidate exactly alongside lands in areas 4/6 (rear), matching
        ``area_of``.
        """
        count = center_lane.shape[0]
        if count <= 4:
            # Fused scalar path: one allocation, per-row searchsorted
            # directly into the result matrix.  Same arithmetic as the
            # batched passes below, so the entries are identical.
            result = np.full((count, 6), NO_NEIGHBOR, dtype=np.int64)
            starts = self.starts
            sorted_lon = self.sorted_lon
            num_lanes = self.num_lanes
            lanes = center_lane.tolist()
            lons = center_lon.tolist()
            for row in range(count):
                center = lanes[row]
                value = lons[row]
                for column, (lane_no, inclusive_rear) in enumerate((
                        (center - 1, True), (center, False),
                        (center + 1, True))):
                    if lane_no < 1 or lane_no > num_lanes:
                        continue
                    start = starts[lane_no - 1]
                    stop = starts[lane_no]
                    if start == stop:
                        continue
                    segment = sorted_lon[start:stop]
                    ids = self._ids_with_sentinel(lane_no, start, stop)
                    first_greater = segment.searchsorted(value, side="right")
                    result[row, column] = ids[first_greater]
                    if inclusive_rear:
                        rear_pos = first_greater - 1
                    else:
                        rear_pos = segment.searchsorted(value, side="left") - 1
                    if rear_pos >= 0:
                        rear_pos = segment.searchsorted(segment[rear_pos],
                                                        side="left")
                    result[row, column + 3] = ids[rear_pos]
            return result
        result = np.empty((count, 6), dtype=np.int64)
        front, rear = self._lane_pass(center_lane - 1, center_lon,
                                      inclusive_rear=True)
        result[:, 0] = front
        result[:, 3] = rear
        front, rear = self._lane_pass(center_lane, center_lon,
                                      inclusive_rear=False)
        result[:, 1] = front
        result[:, 4] = rear
        front, rear = self._lane_pass(center_lane + 1, center_lon,
                                      inclusive_rear=True)
        result[:, 2] = front
        result[:, 5] = rear
        return result

"""Plain-text rendering of simulation state.

A debugging aid used by the examples and handy in tests: draws a window
of the road around a focus vehicle as fixed-width lanes, one character
cell per few meters.
"""

from __future__ import annotations

from .engine import SimulationEngine
from .vehicle import Vehicle

__all__ = ["render_window"]


def render_window(engine: SimulationEngine, focus_id: str,
                  half_width: float = 60.0, cell_meters: float = 4.0) -> str:
    """Render lanes around ``focus_id`` as ASCII art.

    The focus vehicle draws as ``A``, conventional vehicles as ``v``;
    the window spans ``focus.lon +/- half_width`` left-to-right in the
    direction of travel.

    Example output (3 lanes)::

        lane 1 | . . v . . . . . . v . . . . |
        lane 2 | . . . . . v . A . . . . v . |
        lane 3 | v . . . . . . . . . . . . . |
    """
    focus = engine.get(focus_id)
    cells = int(2 * half_width / cell_meters) + 1
    origin = focus.lon - half_width
    grid = {lane: ["."] * cells for lane in range(1, engine.road.num_lanes + 1)}

    def place(vehicle: Vehicle, glyph: str) -> None:
        index = int((vehicle.lon - origin) / cell_meters)
        if 0 <= index < cells and vehicle.lane in grid:
            grid[vehicle.lane][index] = glyph

    for vehicle in engine.vehicles.values():
        if vehicle.vid != focus_id and abs(vehicle.lon - focus.lon) <= half_width:
            place(vehicle, "v")
    place(focus, "A")

    lines = [f"lane {lane} | {' '.join(row)} |" for lane, row in sorted(grid.items())]
    header = (f"t={engine.step_count * 0.5:6.1f}s  {focus_id}: "
              f"lane {focus.lane}, lon {focus.lon:.1f} m, v {focus.v:.1f} m/s")
    return "\n".join([header] + lines)

"""Longitudinal car-following models for conventional vehicles.

Implements the three controllers the paper's baselines and SUMO traffic
rely on:

* **IDM** (Treiber et al. 2000) -- used by IDM-LC and as the default
  human-driver model;
* **ACC** (Milanes & Shladover 2014 style linear gap controller) -- used
  by ACC-LC;
* **Krauss** (Krauss et al. 1997) -- SUMO's default model, used by the
  simulated conventional traffic.

Every model maps ``(vehicle speed, leader speed, gap)`` to a bounded
acceleration for the next 0.5 s step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from . import constants
from .vehicle import DriverProfile, ProfileArrays

__all__ = ["CarFollowingModel", "IDM", "ACC", "Krauss", "free_road_gap"]

#: Gap value used when there is no leader within sensing range.
FREE_ROAD_GAP = 1.0e6


def free_road_gap() -> float:
    """Return the sentinel gap used when no leader constrains a vehicle."""
    return FREE_ROAD_GAP


def _pow_chain(base, exponent: float):
    """``base ** exponent`` as a multiply chain for positive integer exponents.

    Python's ``**`` routes through libm pow while numpy uses its own
    vectorized pow; the two disagree by an ULP on some inputs.  A shared
    left-associated multiplication chain makes the scalar and batched
    model paths bit-identical.  Non-integer exponents fall back to pow
    (and then carry no bit-identity guarantee).
    """
    k = int(exponent)
    if float(k) != float(exponent) or k <= 0:
        return base ** exponent
    result = base
    for _ in range(k - 1):
        result = result * base
    return result


class CarFollowingModel:
    """Interface: compute a longitudinal acceleration command.

    Models may additionally provide ``acceleration_batch`` operating on
    aligned numpy arrays plus a :class:`ProfileArrays`; the engine uses
    it to advance all conventional vehicles at once.  Batched
    implementations must be bit-identical to their scalar counterparts
    (same operations in the same order).
    """

    def acceleration(self, v: float, leader_v: float, gap: float,
                     profile: DriverProfile) -> float:
        """Return the commanded acceleration (m/s^2), already bounded."""
        raise NotImplementedError

    @staticmethod
    def _bound(accel: float, limit: float = constants.A_MAX) -> float:
        return min(max(accel, -limit), limit)

    @staticmethod
    def _bound_batch(accel: np.ndarray, limit: float = constants.A_MAX) -> np.ndarray:
        return np.minimum(np.maximum(accel, -limit), limit)


@dataclass
class IDM(CarFollowingModel):
    """Intelligent Driver Model with the standard exponent delta = 4."""

    delta: float = 4.0
    jam_gap: float = 2.0

    def acceleration(self, v: float, leader_v: float, gap: float,
                     profile: DriverProfile) -> float:
        v0 = max(profile.desired_speed, 0.1)
        free_term = 1.0 - _pow_chain(max(v, 0.0) / v0, self.delta)
        if gap >= FREE_ROAD_GAP:
            return self._bound(profile.max_accel * free_term)
        gap = max(gap, 0.1)
        desired_gap = (self.jam_gap + v * profile.time_headway
                       + v * (v - leader_v) / (2.0 * math.sqrt(profile.max_accel * profile.comfort_decel)))
        ratio = max(desired_gap, 0.0) / gap
        interaction = ratio * ratio
        return self._bound(profile.max_accel * (free_term - interaction))

    def acceleration_batch(self, v: np.ndarray, leader_v: np.ndarray,
                           gap: np.ndarray, profiles: ProfileArrays) -> np.ndarray:
        free_term = 1.0 - _pow_chain(np.maximum(v, 0.0) / profiles.desired_speed_floor,
                                     self.delta)
        free = gap >= FREE_ROAD_GAP
        gap = np.maximum(gap, 0.1)
        desired_gap = (self.jam_gap + v * profiles.time_headway
                       + v * (v - leader_v) / profiles.twice_sqrt_accel_decel)
        ratio = np.maximum(desired_gap, 0.0) / gap
        interaction = ratio * ratio
        accel = np.where(free, profiles.max_accel * free_term,
                         profiles.max_accel * (free_term - interaction))
        return self._bound_batch(accel)


@dataclass
class ACC(CarFollowingModel):
    """Linear adaptive cruise control: constant-time-gap spacing policy.

    ``a = k_gap * (gap - desired) + k_speed * (leader_v - v)`` while
    following; plain speed tracking on a free road.
    """

    k_gap: float = 0.23
    k_speed: float = 0.9
    k_free: float = 0.6

    def acceleration(self, v: float, leader_v: float, gap: float,
                     profile: DriverProfile) -> float:
        if gap >= FREE_ROAD_GAP:
            return self._bound(self.k_free * (profile.desired_speed - v))
        desired_gap = profile.min_gap + profile.time_headway * v
        accel = self.k_gap * (gap - desired_gap) + self.k_speed * (leader_v - v)
        return self._bound(min(accel, self.k_free * (profile.desired_speed - v)))

    def acceleration_batch(self, v: np.ndarray, leader_v: np.ndarray,
                           gap: np.ndarray, profiles: ProfileArrays) -> np.ndarray:
        free = gap >= FREE_ROAD_GAP
        free_accel = self.k_free * (profiles.desired_speed - v)
        desired_gap = profiles.min_gap + profiles.time_headway * v
        accel = self.k_gap * (gap - desired_gap) + self.k_speed * (leader_v - v)
        return self._bound_batch(np.where(free, free_accel,
                                          np.minimum(accel, free_accel)))


@dataclass
class Krauss(CarFollowingModel):
    """Krauss stochastic car-following model (SUMO default).

    The safe speed keeps the vehicle able to stop behind its leader:
    ``v_safe = v_l + (gap - v_l * tau) / (v_avg / b + tau)``.  A driver
    imperfection term (sigma) randomly under-accelerates; we expose it
    deterministically through ``dawdle`` so the engine can inject seeded
    noise.
    """

    tau: float = 1.0
    dawdle: float = 0.0

    def acceleration(self, v: float, leader_v: float, gap: float,
                     profile: DriverProfile) -> float:
        dt = constants.DT
        v_desired = min(v + profile.max_accel * dt, profile.desired_speed)
        if gap < FREE_ROAD_GAP:
            # SUMO semantics: keep at least min_gap behind the leader.  The
            # buffer also absorbs the extra half-step travel of the Eq. 18
            # kinematics (dt*(v+v')/2 instead of Krauss's assumed dt*v').
            gap = max(gap - profile.min_gap, 0.0)
            brake = profile.comfort_decel
            v_safe = leader_v + (gap - leader_v * self.tau) / ((v + leader_v) / (2.0 * brake) + self.tau)
            v_desired = min(v_desired, max(v_safe, 0.0))
        v_next = max(v_desired - self.dawdle * profile.max_accel * dt * profile.imperfection, 0.0)
        return self._bound((v_next - v) / dt)

    def acceleration_batch(self, v: np.ndarray, leader_v: np.ndarray,
                           gap: np.ndarray, profiles: ProfileArrays) -> np.ndarray:
        dt = constants.DT
        v_desired = np.minimum(v + profiles.max_accel_step, profiles.desired_speed)
        following = gap < FREE_ROAD_GAP
        gap = np.maximum(gap - profiles.min_gap, 0.0)
        # x * 1.0 == x bitwise in IEEE-754, so the default tau skips a mul.
        headway = leader_v if self.tau == 1.0 else leader_v * self.tau
        v_safe = leader_v + (gap - headway) / ((v + leader_v) / profiles.twice_comfort_decel + self.tau)
        v_desired = np.where(following,
                             np.minimum(v_desired, np.maximum(v_safe, 0.0)),
                             v_desired)
        if self.dawdle == 0.0:
            # The subtrahend is exactly 0.0, and x - 0.0 == x: skip the
            # four dead array ops without changing a single bit.
            v_next = np.maximum(v_desired, 0.0)
        else:
            v_next = np.maximum(
                v_desired - self.dawdle * profiles.max_accel * dt * profiles.imperfection,
                0.0)
        return self._bound_batch((v_next - v) / dt)

"""TraCI-like control facade over the simulation engine.

The paper couples HEAD to SUMO through TraCI ("retrieve values of
simulated objects and manipulate their behaviors online").  This module
exposes the same interaction style -- domain objects with getters and
online setters plus ``simulationStep`` -- so code written against the
paper's description maps one-to-one onto this simulator.
"""

from __future__ import annotations

from .engine import CollisionEvent, SimulationEngine

__all__ = ["TraCI"]


class _VehicleDomain:
    """``traci.vehicle``-style accessor bound to an engine.

    ``faults`` / ``fault_vid`` optionally route :meth:`setManeuver`
    accelerations through a :class:`~repro.faults.injector.FaultInjector`
    (actuator delay/clamp faults), for the given vehicle id or for all
    vehicles when ``fault_vid`` is None.
    """

    def __init__(self, engine: SimulationEngine, faults=None,
                 fault_vid: str | None = None) -> None:
        self._engine = engine
        self._faults = faults
        self._fault_vid = fault_vid

    def getIDList(self) -> list[str]:
        """Ids of all vehicles currently in the simulation."""
        return sorted(self._engine.vehicles)

    def getLaneIndex(self, vid: str) -> int:
        """Lane number (1 = leftmost), the paper's ``.lat``."""
        return self._engine.get(vid).lane

    def getLanePosition(self, vid: str) -> float:
        """Longitudinal position from the origin (m), the paper's ``.lon``."""
        return self._engine.get(vid).lon

    def getSpeed(self, vid: str) -> float:
        """Longitudinal velocity (m/s)."""
        return self._engine.get(vid).v

    def getAcceleration(self, vid: str) -> float:
        """Acceleration commanded at the previous step (m/s^2)."""
        return self._engine.get(vid).accel

    def getLeader(self, vid: str) -> tuple[str, float] | None:
        """``(leader_id, gap)`` in the vehicle's lane, or None."""
        vehicle = self._engine.get(vid)
        leader = self._engine.leader_of(vehicle)
        if leader is None:
            return None
        return leader.vid, vehicle.gap_to(leader)

    def getFollower(self, vid: str) -> tuple[str, float] | None:
        """``(follower_id, gap)`` in the vehicle's lane, or None."""
        vehicle = self._engine.get(vid)
        follower = self._engine.follower_of(vehicle)
        if follower is None:
            return None
        return follower.vid, follower.gap_to(vehicle)

    def setManeuver(self, vid: str, lane_delta: int, accel: float) -> None:
        """Command a parameterized maneuver for the next step."""
        if self._faults is not None and (self._fault_vid is None
                                         or vid == self._fault_vid):
            accel = self._faults.filter_accel(accel)
        self._engine.set_maneuver(vid, lane_delta, accel)

    def remove(self, vid: str) -> None:
        """Remove a vehicle from the simulation."""
        self._engine.remove_vehicle(vid)


class _SimulationDomain:
    """``traci.simulation``-style accessor bound to an engine."""

    def __init__(self, engine: SimulationEngine) -> None:
        self._engine = engine

    def getTime(self) -> float:
        """Simulated wall time in seconds."""
        from . import constants
        return self._engine.step_count * constants.DT

    def getCollisions(self) -> list[CollisionEvent]:
        """All collision events recorded so far."""
        return list(self._engine.collisions)

    def getMinExpectedNumber(self) -> int:
        """Number of vehicles still in the network (SUMO semantics)."""
        return len(self._engine.vehicles)


class TraCI:
    """Top-level facade: ``traci.vehicle``, ``traci.simulation``, stepping.

    Pass ``faults`` (a :class:`~repro.faults.injector.FaultInjector`) to
    degrade the actuator path of ``fault_vid`` -- or of every vehicle
    when ``fault_vid`` is None -- mirroring how a real TraCI coupling
    would sit between the decision stack and the simulated plant.
    """

    def __init__(self, engine: SimulationEngine, faults=None,
                 fault_vid: str | None = None) -> None:
        self.engine = engine
        self.faults = faults
        self.vehicle = _VehicleDomain(engine, faults=faults, fault_vid=fault_vid)
        self.simulation = _SimulationDomain(engine)

    def simulationStep(self) -> list[CollisionEvent]:
        """Advance the simulation one step; return new collision events."""
        return self.engine.step()

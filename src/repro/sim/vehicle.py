"""Vehicle state containers.

A vehicle carries kinematic state (lane, longitudinal position,
velocity), the most recent commanded acceleration (needed by the jerk
comfort term), and driver-model parameters for conventional vehicles.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from functools import cached_property
from typing import Iterable

import numpy as np

from . import constants

__all__ = ["VehicleState", "Vehicle", "DriverProfile", "ProfileArrays", "ProfileView"]


@dataclass(frozen=True)
class VehicleState:
    """Immutable kinematic snapshot of one vehicle at one time step.

    ``lat`` is the lane number (paper's ``.lat``), ``lon`` the distance
    from the road origin (paper's ``.lon``), ``v`` the longitudinal
    velocity.
    """

    lat: int
    lon: float
    v: float

    def __hash__(self) -> int:
        # States are hashed repeatedly as phantom-cache key components
        # (once per scene they appear in); the instance is immutable, so
        # cache the field-tuple hash on first use.  Equality semantics
        # are unchanged -- this is the same hash the generated method
        # would return.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.lat, self.lon, self.v))
            object.__setattr__(self, "_hash", cached)
        return cached

    def advanced(self, lane_delta: int, accel: float, dt: float = constants.DT,
                 v_min: float = 0.0, v_max: float = constants.V_MAX) -> "VehicleState":
        """Return the next state under Eq. 18 kinematics.

        Velocity is clamped to ``[v_min, v_max]`` after integration; the
        position update uses the commanded acceleration for the full
        step, matching the paper's transition model.
        """
        new_v = min(max(self.v + accel * dt, v_min), v_max)
        new_lon = self.lon + self.v * dt + 0.5 * accel * dt * dt
        return VehicleState(lat=self.lat + lane_delta, lon=new_lon, v=new_v)


@dataclass
class DriverProfile:
    """Heterogeneous human-driver parameters for conventional vehicles.

    Randomizing these per vehicle produces the diverse, NGSIM-like
    traffic mix the paper evaluates in (and generates REAL from).
    """

    desired_speed: float = constants.V_MAX
    time_headway: float = 1.5
    min_gap: float = 2.0
    max_accel: float = 2.0
    comfort_decel: float = 2.5
    politeness: float = 0.3
    lane_change_threshold: float = 0.2
    imperfection: float = 0.2


@dataclass(frozen=True)
class ProfileArrays:
    """Struct-of-arrays view of :class:`DriverProfile` fields.

    The vectorized car-following and lane-change models consume one
    column per driver parameter instead of touching Python objects in
    their inner loops.  Field order mirrors ``DriverProfile``.
    """

    desired_speed: np.ndarray
    time_headway: np.ndarray
    min_gap: np.ndarray
    max_accel: np.ndarray
    comfort_decel: np.ndarray
    politeness: np.ndarray
    lane_change_threshold: np.ndarray
    imperfection: np.ndarray

    @classmethod
    def from_profiles(cls, profiles: Iterable[DriverProfile]) -> "ProfileArrays":
        """Gather one column per parameter from driver profiles.

        The engine caches the result until the population changes;
        profiles are mutable, so code that rewrites one mid-run (e.g.
        the synthetic-trajectory slowdown events) must call
        ``SimulationEngine.invalidate_profiles``.
        """
        rows = [(profile.desired_speed, profile.time_headway, profile.min_gap,
                 profile.max_accel, profile.comfort_decel, profile.politeness,
                 profile.lane_change_threshold, profile.imperfection)
                for profile in profiles]
        if not rows:
            return cls(*np.empty((len(fields(cls)), 0)))
        return cls(*np.ascontiguousarray(np.array(rows).T))

    def take(self, indices: np.ndarray) -> "ProfileArrays":
        """Row-gather every column (numpy fancy-indexing semantics)."""
        return ProfileArrays(
            self.desired_speed[indices], self.time_headway[indices],
            self.min_gap[indices], self.max_accel[indices],
            self.comfort_decel[indices], self.politeness[indices],
            self.lane_change_threshold[indices], self.imperfection[indices])

    def view(self, rows: np.ndarray) -> "ProfileView":
        """Lazy row-gather: columns materialize on first access.

        Car-following models touch only a subset of the parameters, so a
        lazy view skips the unused gathers that :meth:`take` would pay
        for.  Gathering a column after an elementwise op yields the same
        bits as the op after the gather, so derived columns stay
        bit-identical too.
        """
        return ProfileView(self, rows)

    # Derived columns the models would otherwise recompute per step.
    # These are pure hoists -- the same operations on the same inputs as
    # the scalar formulas, evaluated once per profile-cache lifetime --
    # so the bit-identity guarantee is unaffected.  (cached_property
    # stores into the instance dict, which a frozen dataclass permits.)

    @cached_property
    def max_accel_step(self) -> np.ndarray:
        """``max_accel * DT``: one-step speed gain (Krauss)."""
        return self.max_accel * constants.DT

    @cached_property
    def twice_comfort_decel(self) -> np.ndarray:
        """``2 * comfort_decel``: Krauss safe-speed denominator term."""
        return 2.0 * self.comfort_decel

    @cached_property
    def half_max_accel(self) -> np.ndarray:
        """``0.5 * max_accel``: dawdle reduction scale."""
        return 0.5 * self.max_accel

    @cached_property
    def min_gap_floor(self) -> np.ndarray:
        """``max(min_gap, 1)``: MOBIL blocking-gap threshold."""
        return np.maximum(self.min_gap, 1.0)

    @cached_property
    def imperfect(self) -> np.ndarray:
        """``imperfection > 0``: rows that draw dawdle noise."""
        return self.imperfection > 0.0

    @cached_property
    def fully_imperfect(self) -> bool:
        """Whether every driver has a positive imperfection."""
        return bool(self.imperfect.all())

    @cached_property
    def desired_speed_floor(self) -> np.ndarray:
        """``max(desired_speed, 0.1)``: IDM reference speed."""
        return np.maximum(self.desired_speed, 0.1)

    @cached_property
    def twice_sqrt_accel_decel(self) -> np.ndarray:
        """``2 * sqrt(max_accel * comfort_decel)``: IDM gap denominator."""
        return 2.0 * np.sqrt(self.max_accel * self.comfort_decel)


class ProfileView:
    """Row-gathered facade over :class:`ProfileArrays` (see ``view``).

    Each attribute access gathers the corresponding column (base or
    derived) through the stored row indices and caches the result on the
    instance, so repeated access costs one fancy-index at most.
    """

    def __init__(self, base: ProfileArrays, rows: np.ndarray) -> None:
        self._base = base
        self._rows = rows

    def __getattr__(self, name: str) -> np.ndarray:
        column = getattr(self._base, name)[self._rows]
        self.__dict__[name] = column
        return column


@dataclass
class Vehicle:
    """Mutable vehicle record owned by the simulation engine."""

    vid: str
    state: VehicleState
    length: float = constants.VEHICLE_LENGTH
    is_autonomous: bool = False
    profile: DriverProfile = field(default_factory=DriverProfile)
    accel: float = 0.0
    prev_accel: float = 0.0
    spawn_time: int = 0
    finish_time: int | None = None
    cooldown: int = 0

    @property
    def lane(self) -> int:
        return self.state.lat

    @property
    def lon(self) -> float:
        return self.state.lon

    @property
    def v(self) -> float:
        return self.state.v

    @property
    def rear(self) -> float:
        """Longitudinal position of the rear bumper."""
        return self.state.lon - self.length

    def gap_to(self, leader: "Vehicle") -> float:
        """Bumper-to-bumper gap to a leader in the same lane (m)."""
        return leader.rear - self.state.lon

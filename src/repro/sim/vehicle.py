"""Vehicle state containers.

A vehicle carries kinematic state (lane, longitudinal position,
velocity), the most recent commanded acceleration (needed by the jerk
comfort term), and driver-model parameters for conventional vehicles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import constants

__all__ = ["VehicleState", "Vehicle", "DriverProfile"]


@dataclass(frozen=True)
class VehicleState:
    """Immutable kinematic snapshot of one vehicle at one time step.

    ``lat`` is the lane number (paper's ``.lat``), ``lon`` the distance
    from the road origin (paper's ``.lon``), ``v`` the longitudinal
    velocity.
    """

    lat: int
    lon: float
    v: float

    def advanced(self, lane_delta: int, accel: float, dt: float = constants.DT,
                 v_min: float = 0.0, v_max: float = constants.V_MAX) -> "VehicleState":
        """Return the next state under Eq. 18 kinematics.

        Velocity is clamped to ``[v_min, v_max]`` after integration; the
        position update uses the commanded acceleration for the full
        step, matching the paper's transition model.
        """
        new_v = min(max(self.v + accel * dt, v_min), v_max)
        new_lon = self.lon + self.v * dt + 0.5 * accel * dt * dt
        return VehicleState(lat=self.lat + lane_delta, lon=new_lon, v=new_v)


@dataclass
class DriverProfile:
    """Heterogeneous human-driver parameters for conventional vehicles.

    Randomizing these per vehicle produces the diverse, NGSIM-like
    traffic mix the paper evaluates in (and generates REAL from).
    """

    desired_speed: float = constants.V_MAX
    time_headway: float = 1.5
    min_gap: float = 2.0
    max_accel: float = 2.0
    comfort_decel: float = 2.5
    politeness: float = 0.3
    lane_change_threshold: float = 0.2
    imperfection: float = 0.2


@dataclass
class Vehicle:
    """Mutable vehicle record owned by the simulation engine."""

    vid: str
    state: VehicleState
    length: float = constants.VEHICLE_LENGTH
    is_autonomous: bool = False
    profile: DriverProfile = field(default_factory=DriverProfile)
    accel: float = 0.0
    prev_accel: float = 0.0
    spawn_time: int = 0
    finish_time: int | None = None
    cooldown: int = 0

    @property
    def lane(self) -> int:
        return self.state.lat

    @property
    def lon(self) -> float:
        return self.state.lon

    @property
    def v(self) -> float:
        return self.state.v

    @property
    def rear(self) -> float:
        """Longitudinal position of the rear bumper."""
        return self.state.lon - self.length

    def gap_to(self, leader: "Vehicle") -> float:
        """Bumper-to-bumper gap to a leader in the same lane (m)."""
        return leader.rear - self.state.lon

"""Microscopic multi-lane traffic simulator (SUMO substitute).

Provides the road, vehicles, car-following and lane-change models, the
stepping engine with collision detection, traffic population helpers and
a TraCI-like control facade.
"""

from . import constants
from .road import Road
from .vehicle import Vehicle, VehicleState, DriverProfile
from .carfollowing import CarFollowingModel, IDM, ACC, Krauss, free_road_gap
from .lanechange import MOBIL, LaneChangeDecision
from .engine import SimulationEngine, CollisionEvent, Maneuver
from .spawn import (random_profile, populate_traffic, replenish_traffic,
                    insert_autonomous_vehicle, build_episode)
from .traci import TraCI
from .render import render_window
from .metrics import FlowState, measure_flow, TimeSpaceRecorder
from . import scenarios

__all__ = [
    "constants", "Road",
    "Vehicle", "VehicleState", "DriverProfile",
    "CarFollowingModel", "IDM", "ACC", "Krauss", "free_road_gap",
    "MOBIL", "LaneChangeDecision",
    "SimulationEngine", "CollisionEvent", "Maneuver",
    "random_profile", "populate_traffic", "replenish_traffic",
    "insert_autonomous_vehicle", "build_episode",
    "TraCI",
    "render_window",
    "FlowState", "measure_flow", "TimeSpaceRecorder",
    "scenarios",
]

"""MOBIL-style lane-change model for conventional vehicles.

Implements the incentive + safety criterion of MOBIL (Kesting et al.),
which approximates SUMO's LC2013 behaviour for straight multi-lane
roads: a vehicle changes lane when the acceleration it would gain
exceeds a threshold after discounting (politeness-weighted) the
disadvantage imposed on the new follower, and only when the new
follower would not need to brake harder than a safe limit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .carfollowing import CarFollowingModel, FREE_ROAD_GAP, free_road_gap
from .vehicle import DriverProfile, ProfileArrays, Vehicle

__all__ = ["LaneChangeDecision", "MOBIL"]

#: Maximum deceleration (m/s^2) a lane change may impose on the new
#: follower or require from the changer.  Must be strictly below the
#: physical bound A_MAX: model accelerations are clamped to [-A_MAX,
#: A_MAX], so a threshold at A_MAX could never reject anything.
SAFE_DECEL = 2.0


@dataclass(frozen=True)
class LaneChangeDecision:
    """Outcome of a lane-change evaluation: target delta and incentive."""

    lane_delta: int
    incentive: float


class MOBIL:
    """Minimize Overall Braking Induced by Lane changes.

    Parameters
    ----------
    model:
        The car-following model used to score hypothetical accelerations.
    safe_decel:
        Hard safety bound on the deceleration imposed on the new follower.
    """

    def __init__(self, model: CarFollowingModel, safe_decel: float = SAFE_DECEL) -> None:
        self.model = model
        self.safe_decel = safe_decel

    def evaluate(self, vehicle: Vehicle,
                 current_leader: Vehicle | None,
                 side_leader: Vehicle | None,
                 side_follower: Vehicle | None,
                 lane_delta: int) -> LaneChangeDecision:
        """Score one candidate adjacent lane.

        Returns a decision whose ``incentive`` is ``-inf`` when the
        safety criterion fails, so callers can pick the argmax across
        candidates and compare against the driver threshold.
        """
        profile = vehicle.profile

        own_now = self._accel(vehicle, current_leader, profile)
        own_new = self._accel(vehicle, side_leader, profile)

        if side_follower is not None:
            gap_after = vehicle.rear - side_follower.lon
            if gap_after <= max(side_follower.profile.min_gap, 1.0):
                return LaneChangeDecision(lane_delta, float("-inf"))
            follower_after = self.model.acceleration(
                side_follower.v, vehicle.v, gap_after, side_follower.profile)
            if follower_after < -self.safe_decel:
                return LaneChangeDecision(lane_delta, float("-inf"))
            follower_before_gap = (side_leader.rear - side_follower.lon
                                   if side_leader is not None else free_road_gap())
            follower_before = self.model.acceleration(
                side_follower.v,
                side_leader.v if side_leader is not None else 0.0,
                follower_before_gap, side_follower.profile)
            follower_cost = follower_before - follower_after
        else:
            follower_cost = 0.0

        if side_leader is not None and vehicle.gap_to(side_leader) <= max(profile.min_gap, 1.0):
            return LaneChangeDecision(lane_delta, float("-inf"))
        # The changer itself must not need an emergency brake in the new lane.
        if own_new < -self.safe_decel:
            return LaneChangeDecision(lane_delta, float("-inf"))

        incentive = (own_new - own_now) - profile.politeness * follower_cost
        return LaneChangeDecision(lane_delta, incentive)

    def decide(self, vehicle: Vehicle,
               leader: Vehicle | None,
               left: tuple[Vehicle | None, Vehicle | None] | None,
               right: tuple[Vehicle | None, Vehicle | None] | None) -> int:
        """Choose a lane delta in {-1, 0, +1}.

        ``left``/``right`` are ``(leader, follower)`` pairs in the
        adjacent lanes, or ``None`` when that lane does not exist.
        """
        candidates: list[LaneChangeDecision] = []
        if left is not None:
            candidates.append(self.evaluate(vehicle, leader, left[0], left[1], -1))
        if right is not None:
            candidates.append(self.evaluate(vehicle, leader, right[0], right[1], +1))
        if not candidates:
            return 0
        best = max(candidates, key=lambda decision: decision.incentive)
        if best.incentive > vehicle.profile.lane_change_threshold:
            return best.lane_delta
        return 0

    def _accel(self, vehicle: Vehicle, leader: Vehicle | None,
               profile: DriverProfile) -> float:
        gap = vehicle.gap_to(leader) if leader is not None else free_road_gap()
        leader_v = leader.v if leader is not None else 0.0
        return self.model.acceleration(vehicle.v, leader_v, gap, profile)

    # ------------------------------------------------------------------
    # batched path (bit-identical to evaluate()/decide() above)
    # ------------------------------------------------------------------
    def evaluate_batch(self, v: np.ndarray, rear: np.ndarray,
                       profiles: ProfileArrays,
                       ego: np.ndarray, follower: np.ndarray,
                       has_leader: np.ndarray, leader_v: np.ndarray,
                       leader_gap: np.ndarray, leader_rear: np.ndarray,
                       has_follower: np.ndarray, follower_v: np.ndarray,
                       follower_lon: np.ndarray,
                       own_rows: np.ndarray, own_v: np.ndarray,
                       own_leader_v: np.ndarray, own_gap: np.ndarray
                       ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`evaluate` for one candidate direction.

        All arrays are aligned per deciding vehicle.  ``profiles`` holds
        the whole population; ``ego`` and ``follower`` map each row to
        its changer / prospective-follower profile row.  Rows where
        ``has_leader``/``has_follower`` are false may carry arbitrary
        finite values in the corresponding neighbor columns -- except
        ``leader_v``, which the caller must already mask to 0.0 -- and
        they are masked exactly as the scalar path's ``None`` branches.

        ``own_rows``/``own_v``/``own_leader_v``/``own_gap`` describe
        each vehicle's *current-lane* car-following situation (already
        masked); its acceleration is both the incentive baseline and the
        step's longitudinal command, so it rides along as a fourth block
        of the stacked model call instead of costing a separate one.

        Returns ``(incentive, own_accel)``: the per-row incentive
        (``-inf`` where the safety criterion fails) and the current-lane
        acceleration per vehicle.
        """
        leader_gap = np.where(has_leader, leader_gap, FREE_ROAD_GAP)
        gap_after = rear - follower_lon
        follower_before_gap = np.where(has_leader, leader_rear - follower_lon,
                                       FREE_ROAD_GAP)

        # One stacked car-following call scores all four situations
        # (changer in the new lane; new follower after / before the
        # change; changer in its current lane) -- four model
        # invocations' worth of fixed per-op dispatch cost collapse
        # into one.
        rows = v.shape[0]
        stacked = self.model.acceleration_batch(
            np.concatenate((v, follower_v, follower_v, own_v)),
            np.concatenate((leader_v, v, leader_v, own_leader_v)),
            np.concatenate((leader_gap, gap_after, follower_before_gap, own_gap)),
            profiles.view(np.concatenate((ego, follower, follower, own_rows))))
        own_new = stacked[:rows]
        follower_after = stacked[rows:2 * rows]
        follower_before = stacked[2 * rows:3 * rows]
        own_accel = stacked[3 * rows:]
        follower_cost = np.where(has_follower, follower_before - follower_after, 0.0)

        min_gap_floor = profiles.min_gap_floor
        blocked = has_follower & (gap_after <= min_gap_floor[follower])
        blocked |= has_follower & (follower_after < -self.safe_decel)
        blocked |= has_leader & (leader_gap <= min_gap_floor[ego])
        blocked |= own_new < -self.safe_decel

        own_now = np.concatenate((own_accel, own_accel))
        incentive = (own_new - own_now) - profiles.politeness[ego] * follower_cost
        return np.where(blocked, -np.inf, incentive), own_accel

    def decide_batch(self, incentive_left: np.ndarray, incentive_right: np.ndarray,
                     thresholds: np.ndarray, valid_left: np.ndarray,
                     valid_right: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`decide`: lane deltas in {-1, 0, +1} per row.

        Invalid lanes are scored ``-inf``, which is outcome-equivalent
        to the scalar path's missing candidate (it can never beat the
        strict threshold).  Ties prefer left, matching ``max()`` over a
        [left, right] candidate list.
        """
        incentive_left = np.where(valid_left, incentive_left, -np.inf)
        incentive_right = np.where(valid_right, incentive_right, -np.inf)
        best = np.maximum(incentive_left, incentive_right)
        delta = np.where(incentive_left >= incentive_right, -1, 1)
        return np.where(best > thresholds, delta, 0)

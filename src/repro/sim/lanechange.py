"""MOBIL-style lane-change model for conventional vehicles.

Implements the incentive + safety criterion of MOBIL (Kesting et al.),
which approximates SUMO's LC2013 behaviour for straight multi-lane
roads: a vehicle changes lane when the acceleration it would gain
exceeds a threshold after discounting (politeness-weighted) the
disadvantage imposed on the new follower, and only when the new
follower would not need to brake harder than a safe limit.
"""

from __future__ import annotations

from dataclasses import dataclass

from .carfollowing import CarFollowingModel, free_road_gap
from .vehicle import DriverProfile, Vehicle

__all__ = ["LaneChangeDecision", "MOBIL"]

#: Maximum deceleration (m/s^2) a lane change may impose on the new
#: follower or require from the changer.  Must be strictly below the
#: physical bound A_MAX: model accelerations are clamped to [-A_MAX,
#: A_MAX], so a threshold at A_MAX could never reject anything.
SAFE_DECEL = 2.0


@dataclass(frozen=True)
class LaneChangeDecision:
    """Outcome of a lane-change evaluation: target delta and incentive."""

    lane_delta: int
    incentive: float


class MOBIL:
    """Minimize Overall Braking Induced by Lane changes.

    Parameters
    ----------
    model:
        The car-following model used to score hypothetical accelerations.
    safe_decel:
        Hard safety bound on the deceleration imposed on the new follower.
    """

    def __init__(self, model: CarFollowingModel, safe_decel: float = SAFE_DECEL) -> None:
        self.model = model
        self.safe_decel = safe_decel

    def evaluate(self, vehicle: Vehicle,
                 current_leader: Vehicle | None,
                 side_leader: Vehicle | None,
                 side_follower: Vehicle | None,
                 lane_delta: int) -> LaneChangeDecision:
        """Score one candidate adjacent lane.

        Returns a decision whose ``incentive`` is ``-inf`` when the
        safety criterion fails, so callers can pick the argmax across
        candidates and compare against the driver threshold.
        """
        profile = vehicle.profile

        own_now = self._accel(vehicle, current_leader, profile)
        own_new = self._accel(vehicle, side_leader, profile)

        if side_follower is not None:
            gap_after = vehicle.rear - side_follower.lon
            if gap_after <= max(side_follower.profile.min_gap, 1.0):
                return LaneChangeDecision(lane_delta, float("-inf"))
            follower_after = self.model.acceleration(
                side_follower.v, vehicle.v, gap_after, side_follower.profile)
            if follower_after < -self.safe_decel:
                return LaneChangeDecision(lane_delta, float("-inf"))
            follower_before_gap = (side_leader.rear - side_follower.lon
                                   if side_leader is not None else free_road_gap())
            follower_before = self.model.acceleration(
                side_follower.v,
                side_leader.v if side_leader is not None else 0.0,
                follower_before_gap, side_follower.profile)
            follower_cost = follower_before - follower_after
        else:
            follower_cost = 0.0

        if side_leader is not None and vehicle.gap_to(side_leader) <= max(profile.min_gap, 1.0):
            return LaneChangeDecision(lane_delta, float("-inf"))
        # The changer itself must not need an emergency brake in the new lane.
        if own_new < -self.safe_decel:
            return LaneChangeDecision(lane_delta, float("-inf"))

        incentive = (own_new - own_now) - profile.politeness * follower_cost
        return LaneChangeDecision(lane_delta, incentive)

    def decide(self, vehicle: Vehicle,
               leader: Vehicle | None,
               left: tuple[Vehicle | None, Vehicle | None] | None,
               right: tuple[Vehicle | None, Vehicle | None] | None) -> int:
        """Choose a lane delta in {-1, 0, +1}.

        ``left``/``right`` are ``(leader, follower)`` pairs in the
        adjacent lanes, or ``None`` when that lane does not exist.
        """
        candidates: list[LaneChangeDecision] = []
        if left is not None:
            candidates.append(self.evaluate(vehicle, leader, left[0], left[1], -1))
        if right is not None:
            candidates.append(self.evaluate(vehicle, leader, right[0], right[1], +1))
        if not candidates:
            return 0
        best = max(candidates, key=lambda decision: decision.incentive)
        if best.incentive > vehicle.profile.lane_change_threshold:
            return best.lane_delta
        return 0

    def _accel(self, vehicle: Vehicle, leader: Vehicle | None,
               profile: DriverProfile) -> float:
        gap = vehicle.gap_to(leader) if leader is not None else free_road_gap()
        leader_v = leader.v if leader is not None else 0.0
        return self.model.acceleration(vehicle.v, leader_v, gap, profile)

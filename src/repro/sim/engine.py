"""Discrete-time microscopic traffic simulation engine (SUMO substitute).

The engine advances all vehicles synchronously in 0.5 s steps.  Each
step:

1. externally controlled vehicles (the AV) receive a maneuver via
   :meth:`SimulationEngine.set_maneuver`;
2. every conventional vehicle picks a lane-change via MOBIL and an
   acceleration via its car-following model, all based on the state at
   time ``t``;
3. states advance with the Eq. 18 kinematics, lane changes are
   instantaneous single-lane hops (paper restriction 2);
4. collisions (overlap in a lane, or driving off the road) are detected
   and reported;
5. vehicles that pass the road end are retired with their finish time.

Per-vehicle state history is retained for the perception module.
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass, field
import numpy as np

from . import constants
from .carfollowing import CarFollowingModel, Krauss, free_road_gap
from .lanechange import MOBIL
from .road import Road
from .vehicle import Vehicle, VehicleState

__all__ = ["CollisionEvent", "SimulationEngine", "Maneuver"]

#: Lane-change cooldown for conventional vehicles (steps); 2 s, keeps
#: MOBIL from oscillating between lanes, similar to SUMO's LC holddown.
LANE_CHANGE_COOLDOWN = 4


@dataclass(frozen=True)
class Maneuver:
    """External maneuver command: lane delta in {-1, 0, +1} and acceleration."""

    lane_delta: int
    accel: float


@dataclass(frozen=True)
class CollisionEvent:
    """A detected collision at a time step.

    ``kind`` is ``"crash"`` for vehicle-vehicle overlap and
    ``"boundary"`` for leaving the road laterally.
    """

    step: int
    vehicle_id: str
    other_id: str | None
    kind: str


@dataclass
class _LaneIndex:
    """Sorted per-lane position index for leader/follower queries."""

    positions: list[float] = field(default_factory=list)
    vehicles: list[Vehicle] = field(default_factory=list)


class SimulationEngine:
    """Owns vehicles and advances the world clock.

    Parameters
    ----------
    road:
        Road geometry and speed limits.
    car_following:
        Model used by conventional vehicles (Krauss by default, matching
        SUMO).
    rng:
        Seeded generator driving stochastic driver imperfection.
    history_length:
        Number of past states retained per vehicle for perception.
    """

    def __init__(self, road: Road | None = None,
                 car_following: CarFollowingModel | None = None,
                 rng: np.random.Generator | None = None,
                 history_length: int = constants.HISTORY_STEPS + 1) -> None:
        self.road = road or Road()
        self.car_following = car_following or Krauss()
        self.lane_change = MOBIL(self.car_following)
        self.rng = rng or np.random.default_rng()
        self.history_length = history_length
        self.step_count = 0
        self.vehicles: dict[str, Vehicle] = {}
        self.history: dict[str, deque[VehicleState]] = {}
        self.collisions: list[CollisionEvent] = []
        self.retired: dict[str, Vehicle] = {}
        self._pending: dict[str, Maneuver] = {}
        self._lane_index: dict[int, _LaneIndex] = {}
        self._index_dirty = True

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def add_vehicle(self, vehicle: Vehicle) -> Vehicle:
        """Register a vehicle; raises on duplicate ids or invalid lanes."""
        if vehicle.vid in self.vehicles:
            raise ValueError(f"duplicate vehicle id {vehicle.vid!r}")
        if not self.road.is_valid_lane(vehicle.lane):
            raise ValueError(f"vehicle {vehicle.vid!r} placed on invalid lane {vehicle.lane}")
        vehicle.spawn_time = self.step_count
        self.vehicles[vehicle.vid] = vehicle
        self.history[vehicle.vid] = deque([vehicle.state], maxlen=self.history_length)
        self._index_dirty = True
        return vehicle

    def remove_vehicle(self, vid: str) -> None:
        """Retire a vehicle (e.g. it finished the road)."""
        vehicle = self.vehicles.pop(vid, None)
        if vehicle is not None:
            self.retired[vid] = vehicle
            self._index_dirty = True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, vid: str) -> Vehicle:
        """Return a live vehicle by id."""
        return self.vehicles[vid]

    def active_vehicles(self) -> list[Vehicle]:
        """Return live vehicles sorted by id for deterministic iteration."""
        return [self.vehicles[vid] for vid in sorted(self.vehicles)]

    def _rebuild_index(self) -> None:
        self._lane_index = {lane: _LaneIndex() for lane in range(1, self.road.num_lanes + 1)}
        for vehicle in self.vehicles.values():
            index = self._lane_index.setdefault(vehicle.lane, _LaneIndex())
            position = bisect.bisect_left(index.positions, vehicle.lon)
            index.positions.insert(position, vehicle.lon)
            index.vehicles.insert(position, vehicle)
        self._index_dirty = False

    def leader_in_lane(self, lane: int, lon: float, exclude: str | None = None) -> Vehicle | None:
        """Nearest vehicle strictly ahead of ``lon`` in ``lane``."""
        if self._index_dirty:
            self._rebuild_index()
        index = self._lane_index.get(lane)
        if index is None:
            return None
        position = bisect.bisect_right(index.positions, lon)
        while position < len(index.vehicles):
            candidate = index.vehicles[position]
            if candidate.vid != exclude and candidate.lon > lon:
                return candidate
            position += 1
        return None

    def follower_in_lane(self, lane: int, lon: float, exclude: str | None = None) -> Vehicle | None:
        """Nearest vehicle strictly behind ``lon`` in ``lane``."""
        if self._index_dirty:
            self._rebuild_index()
        index = self._lane_index.get(lane)
        if index is None:
            return None
        position = bisect.bisect_left(index.positions, lon) - 1
        while position >= 0:
            candidate = index.vehicles[position]
            if candidate.vid != exclude and candidate.lon < lon:
                return candidate
            position -= 1
        return None

    def leader_of(self, vehicle: Vehicle, lane: int | None = None) -> Vehicle | None:
        """Leader of ``vehicle`` in its own (or a given) lane."""
        return self.leader_in_lane(lane if lane is not None else vehicle.lane,
                                   vehicle.lon, exclude=vehicle.vid)

    def follower_of(self, vehicle: Vehicle, lane: int | None = None) -> Vehicle | None:
        """Follower of ``vehicle`` in its own (or a given) lane."""
        return self.follower_in_lane(lane if lane is not None else vehicle.lane,
                                     vehicle.lon, exclude=vehicle.vid)

    # ------------------------------------------------------------------
    # control
    # ------------------------------------------------------------------
    def set_maneuver(self, vid: str, lane_delta: int, accel: float) -> None:
        """Command an externally controlled vehicle for the next step.

        Accelerations are clipped to the paper's [-a', a'] restriction;
        lane deltas must be in {-1, 0, +1} (restriction 2).
        """
        if lane_delta not in (-1, 0, 1):
            raise ValueError("lane_delta must be -1, 0 or +1")
        accel = min(max(accel, -constants.A_MAX), constants.A_MAX)
        self._pending[vid] = Maneuver(lane_delta, accel)

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self) -> list[CollisionEvent]:
        """Advance the world by one 0.5 s step; return new collisions."""
        if self._index_dirty:
            self._rebuild_index()

        decisions: dict[str, Maneuver] = {}
        for vehicle in self.active_vehicles():
            if vehicle.vid in self._pending:
                decisions[vehicle.vid] = self._pending[vehicle.vid]
            elif not vehicle.is_autonomous:
                decisions[vehicle.vid] = self._conventional_decision(vehicle)
            else:
                decisions[vehicle.vid] = Maneuver(0, 0.0)

        new_collisions = self._apply(decisions)
        self._pending.clear()
        self.step_count += 1
        return new_collisions

    def _conventional_decision(self, vehicle: Vehicle) -> Maneuver:
        leader = self.leader_of(vehicle)
        lane_delta = 0
        if vehicle.cooldown > 0:
            vehicle.cooldown -= 1
        else:
            left = self._adjacent(vehicle, -1)
            right = self._adjacent(vehicle, +1)
            lane_delta = self.lane_change.decide(vehicle, leader, left, right)
            if lane_delta != 0:
                vehicle.cooldown = LANE_CHANGE_COOLDOWN
                leader = self.leader_of(vehicle, vehicle.lane + lane_delta)

        gap = vehicle.gap_to(leader) if leader is not None else free_road_gap()
        leader_v = leader.v if leader is not None else 0.0
        accel = self.car_following.acceleration(vehicle.v, leader_v, gap, vehicle.profile)
        # Seeded driver imperfection (Krauss sigma): occasionally dawdle.
        if vehicle.profile.imperfection > 0 and self.rng.random() < vehicle.profile.imperfection:
            accel -= self.rng.random() * 0.5 * vehicle.profile.max_accel
        accel = min(max(accel, -constants.A_MAX), constants.A_MAX)
        accel = self._emergency_brake(vehicle, leader, accel)
        return Maneuver(lane_delta, accel)

    @staticmethod
    def _emergency_brake(vehicle: Vehicle, leader: Vehicle | None,
                         accel: float) -> float:
        """Allow a CV to exceed comfortable braking in a near-collision.

        SUMO's emergencyDecel semantics: when the closing speed and gap
        demand more than the comfortable bound to avoid running into the
        leader (e.g. a vehicle just cut in), brake as hard as the tires
        allow.  The criterion is the constant-deceleration stopping
        envelope ``closing^2 / (2 * gap)`` plus a reaction-step margin.
        """
        if leader is None:
            return accel
        gap = vehicle.gap_to(leader)
        closing = vehicle.v - leader.v
        if gap <= 0.0 or closing <= 0.0:
            return accel
        # Gap available after one more reaction step at current speeds.
        effective_gap = max(gap - closing * constants.DT - 0.3, 0.1)
        required = closing * closing / (2.0 * effective_gap)
        if required <= constants.A_MAX:
            return accel
        return -min(required, constants.EMERGENCY_DECEL)

    def _adjacent(self, vehicle: Vehicle, direction: int) -> tuple[Vehicle | None, Vehicle | None] | None:
        lane = vehicle.lane + direction
        if not self.road.is_valid_lane(lane):
            return None
        return (self.leader_of(vehicle, lane), self.follower_of(vehicle, lane))

    def _resolve_lane_conflicts(self, decisions: dict[str, Maneuver]) -> dict[str, Maneuver]:
        """Cancel CV lane changes that would collide with concurrent movers.

        Decisions are made synchronously from the state at ``t``, so two
        vehicles can legitimately claim the same target gap.  Lane-keepers
        claim their predicted interval first; changers then abort (keep
        lane) when their interval overlaps an existing claim.  The AV's
        command is never overridden -- unsafe AV maneuvers must produce
        collisions so the reward can penalize them.
        """
        margin = 1.0
        claims: dict[int, list[tuple[float, float]]] = {}
        resolved = dict(decisions)

        def predicted_interval(vehicle: Vehicle, maneuver: Maneuver) -> tuple[float, float]:
            lon = vehicle.lon + vehicle.v * constants.DT + 0.5 * maneuver.accel * constants.DT ** 2
            return (lon - vehicle.length - margin, lon + margin)

        changers: list[str] = []
        for vid in sorted(decisions):
            vehicle = self.vehicles.get(vid)
            if vehicle is None:
                continue
            maneuver = decisions[vid]
            if maneuver.lane_delta == 0 or vehicle.is_autonomous:
                lane = vehicle.lane + maneuver.lane_delta
                claims.setdefault(lane, []).append(predicted_interval(vehicle, maneuver))
            else:
                changers.append(vid)

        for vid in changers:
            vehicle = self.vehicles[vid]
            maneuver = decisions[vid]
            target = vehicle.lane + maneuver.lane_delta
            interval = predicted_interval(vehicle, maneuver)
            overlapping = any(interval[0] < hi and lo < interval[1]
                              for lo, hi in claims.get(target, []))
            if overlapping:
                resolved[vid] = Maneuver(0, maneuver.accel)
                vehicle.cooldown = 0
                claims.setdefault(vehicle.lane, []).append(predicted_interval(vehicle, resolved[vid]))
            else:
                claims.setdefault(target, []).append(interval)
        return resolved

    def _apply(self, decisions: dict[str, Maneuver]) -> list[CollisionEvent]:
        new_events: list[CollisionEvent] = []
        decisions = self._resolve_lane_conflicts(decisions)
        for vid, maneuver in decisions.items():
            vehicle = self.vehicles.get(vid)
            if vehicle is None:
                continue
            target_lane = vehicle.lane + maneuver.lane_delta
            if not self.road.is_valid_lane(target_lane):
                event = CollisionEvent(self.step_count, vid, None, "boundary")
                new_events.append(event)
                self.collisions.append(event)
                target_lane = vehicle.lane  # stay on road after recording
                maneuver = Maneuver(0, maneuver.accel)
            v_floor = self.road.v_min if vehicle.is_autonomous else 0.0
            vehicle.prev_accel = vehicle.accel
            vehicle.accel = maneuver.accel
            vehicle.state = vehicle.state.advanced(
                maneuver.lane_delta, maneuver.accel,
                v_min=v_floor, v_max=self.road.v_max)
            self.history[vid].append(vehicle.state)

        self._index_dirty = True
        new_events.extend(self._detect_crashes())

        for vehicle in list(self.vehicles.values()):
            if vehicle.lon >= self.road.length:
                vehicle.finish_time = self.step_count + 1
                self.remove_vehicle(vehicle.vid)
        return new_events

    def _detect_crashes(self) -> list[CollisionEvent]:
        if self._index_dirty:
            self._rebuild_index()
        events: list[CollisionEvent] = []
        for index in self._lane_index.values():
            for follower, leader in zip(index.vehicles[:-1], index.vehicles[1:]):
                if follower.gap_to(leader) < 0.0:
                    event = CollisionEvent(self.step_count, follower.vid, leader.vid, "crash")
                    events.append(event)
                    self.collisions.append(event)
        return events

    # ------------------------------------------------------------------
    # history access (used by the perception module)
    # ------------------------------------------------------------------
    def state_history(self, vid: str, steps: int) -> list[VehicleState]:
        """Return the most recent ``steps`` states (oldest first).

        Pads by repeating the oldest known state when the vehicle has
        been alive for fewer steps, which mirrors a sensor that has just
        acquired a track.
        """
        recorded = list(self.history[vid])[-steps:]
        if len(recorded) < steps:
            recorded = [recorded[0]] * (steps - len(recorded)) + recorded
        return recorded

    def density_per_km(self) -> float:
        """Current total vehicle density across all lanes (veh/km)."""
        return len(self.vehicles) / (self.road.length / 1000.0)

"""Discrete-time microscopic traffic simulation engine (SUMO substitute).

The engine advances all vehicles synchronously in 0.5 s steps.  Each
step:

1. externally controlled vehicles (the AV) receive a maneuver via
   :meth:`SimulationEngine.set_maneuver`;
2. every conventional vehicle picks a lane-change via MOBIL and an
   acceleration via its car-following model, all based on the state at
   time ``t``;
3. states advance with the Eq. 18 kinematics, lane changes are
   instantaneous single-lane hops (paper restriction 2);
4. collisions (overlap in a lane, or driving off the road) are detected
   and reported;
5. vehicles that pass the road end are retired with their finish time.

Per-vehicle state history is retained for the perception module.
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass, field
import numpy as np

from . import constants
from .carfollowing import CarFollowingModel, FREE_ROAD_GAP, Krauss, free_road_gap
from .lanechange import MOBIL
from .road import Road
from .spatial import SpatialHash
from .vehicle import ProfileArrays, Vehicle, VehicleState
from ..seeding import resolve_rng

__all__ = ["CollisionEvent", "SimulationEngine", "Maneuver"]

#: Lane-change cooldown for conventional vehicles (steps); 2 s, keeps
#: MOBIL from oscillating between lanes, similar to SUMO's LC holddown.
LANE_CHANGE_COOLDOWN = 4

#: Shared one-element sentinel appended to each lane's id array so
#: out-of-range searchsorted positions resolve to "no neighbor".
_NO_NEIGHBOR = np.array([-1])

#: Shared one-element 0.0 pad: appended to value arrays so gathering
#: with a -1 neighbor index yields the masked-branch substitute value.
_ZERO = np.array([0.0])

#: ``0.5 * DT**2`` prefolded.  DT is a power of two (0.5 s), so every
#: intermediate scaling in both the scalar ``0.5*a*dt*dt`` chain and
#: the folded ``a * _HALF_DT_SQ`` form is exact -- the two are
#: bit-identical.
_HALF_DT_SQ = 0.5 * constants.DT * constants.DT


@dataclass(frozen=True)
class Maneuver:
    """External maneuver command: lane delta in {-1, 0, +1} and acceleration."""

    lane_delta: int
    accel: float


@dataclass(frozen=True)
class CollisionEvent:
    """A detected collision at a time step.

    ``kind`` is ``"crash"`` for vehicle-vehicle overlap and
    ``"boundary"`` for leaving the road laterally.
    """

    step: int
    vehicle_id: str
    other_id: str | None
    kind: str


@dataclass
class _LaneIndex:
    """Sorted per-lane position index for leader/follower queries."""

    positions: list[float] = field(default_factory=list)
    vehicles: list[Vehicle] = field(default_factory=list)


# Lane-sorted neighbor index; the leader/follower queries in
# ``_step_vectorized`` and the six-area perception kernel share the
# same lexsort-backed structure (see :mod:`repro.sim.spatial`).
_SortedLanes = SpatialHash


class SimulationEngine:
    """Owns vehicles and advances the world clock.

    Parameters
    ----------
    road:
        Road geometry and speed limits.
    car_following:
        Model used by conventional vehicles (Krauss by default, matching
        SUMO).
    rng:
        Seeded generator driving stochastic driver imperfection.
    history_length:
        Number of past states retained per vehicle for perception.
    reference:
        When true, always step with the scalar per-vehicle loop.  The
        default vectorized path is bit-identical to it; the reference
        mode exists so equivalence tests (and unusual custom models
        without a batched implementation) can exercise the original
        trajectory-for-trajectory semantics.
    """

    def __init__(self, road: Road | None = None,
                 car_following: CarFollowingModel | None = None,
                 rng: np.random.Generator | None = None,
                 history_length: int = constants.HISTORY_STEPS + 1,
                 reference: bool = False) -> None:
        self.road = road or Road()
        self.car_following = car_following or Krauss()
        self.lane_change = MOBIL(self.car_following)
        self.rng = resolve_rng(rng)
        self.history_length = history_length
        self.reference = reference
        self.step_count = 0
        self.vehicles: dict[str, Vehicle] = {}
        self.history: dict[str, deque[VehicleState]] = {}
        self.collisions: list[CollisionEvent] = []
        self.retired: dict[str, Vehicle] = {}
        self._pending: dict[str, Maneuver] = {}
        self._lane_index: dict[int, _LaneIndex] = {}
        self._index_dirty = True
        # Population generation: bumped on every add/remove/discard.
        # Caches keyed on it (sorted active list, static arrays) are
        # rebuilt only when the vehicle *set* changed, not per call.
        self._generation = 0
        self._active_cache: list[Vehicle] = []
        self._active_generation = -1
        self._static_cache: tuple | None = None
        self._static_generation = -1
        self._soa_cache: tuple | None = None
        self._profile_cache: ProfileArrays | None = None
        self._ego_cache: tuple[np.ndarray, np.ndarray] | None = None
        self._lane_targets = np.arange(1, self.road.num_lanes + 2)

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def add_vehicle(self, vehicle: Vehicle) -> Vehicle:
        """Register a vehicle; raises on duplicate ids or invalid lanes."""
        if vehicle.vid in self.vehicles:
            raise ValueError(f"duplicate vehicle id {vehicle.vid!r}")
        if not self.road.is_valid_lane(vehicle.lane):
            raise ValueError(f"vehicle {vehicle.vid!r} placed on invalid lane {vehicle.lane}")
        vehicle.spawn_time = self.step_count
        self.vehicles[vehicle.vid] = vehicle
        self.history[vehicle.vid] = deque([vehicle.state], maxlen=self.history_length)
        self._population_changed()
        return vehicle

    def remove_vehicle(self, vid: str) -> None:
        """Retire a vehicle (e.g. it finished the road)."""
        vehicle = self.vehicles.pop(vid, None)
        if vehicle is not None:
            self.retired[vid] = vehicle
            self._population_changed()

    def discard_vehicle(self, vid: str) -> None:
        """Drop a vehicle from the world without marking it retired.

        ``retired`` means "finished the road" to the reward/outcome
        code, so taking a crashed fleet AV out of the simulation must
        not go through :meth:`remove_vehicle`.  History is kept so
        perception can still read the final track.
        """
        if self.vehicles.pop(vid, None) is not None:
            self._population_changed()

    def _population_changed(self) -> None:
        self._generation += 1
        self._index_dirty = True
        self._soa_cache = None
        self._profile_cache = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, vid: str) -> Vehicle:
        """Return a live vehicle by id."""
        return self.vehicles[vid]

    def active_vehicles(self) -> list[Vehicle]:
        """Return live vehicles sorted by id for deterministic iteration.

        The sorted list is cached behind the population generation
        counter -- callers must treat it as read-only.
        """
        if self._active_generation != self._generation:
            self._active_cache = [self.vehicles[vid] for vid in sorted(self.vehicles)]
            self._active_generation = self._generation
        return self._active_cache

    def _rebuild_index(self) -> None:
        self._lane_index = {lane: _LaneIndex() for lane in range(1, self.road.num_lanes + 1)}
        for vehicle in self.vehicles.values():
            index = self._lane_index.setdefault(vehicle.lane, _LaneIndex())
            position = bisect.bisect_left(index.positions, vehicle.lon)
            index.positions.insert(position, vehicle.lon)
            index.vehicles.insert(position, vehicle)
        self._index_dirty = False

    def leader_in_lane(self, lane: int, lon: float, exclude: str | None = None) -> Vehicle | None:
        """Nearest vehicle strictly ahead of ``lon`` in ``lane``."""
        if self._index_dirty:
            self._rebuild_index()
        index = self._lane_index.get(lane)
        if index is None:
            return None
        position = bisect.bisect_right(index.positions, lon)
        while position < len(index.vehicles):
            candidate = index.vehicles[position]
            if candidate.vid != exclude and candidate.lon > lon:
                return candidate
            position += 1
        return None

    def follower_in_lane(self, lane: int, lon: float, exclude: str | None = None) -> Vehicle | None:
        """Nearest vehicle strictly behind ``lon`` in ``lane``."""
        if self._index_dirty:
            self._rebuild_index()
        index = self._lane_index.get(lane)
        if index is None:
            return None
        position = bisect.bisect_left(index.positions, lon) - 1
        while position >= 0:
            candidate = index.vehicles[position]
            if candidate.vid != exclude and candidate.lon < lon:
                return candidate
            position -= 1
        return None

    def leader_of(self, vehicle: Vehicle, lane: int | None = None) -> Vehicle | None:
        """Leader of ``vehicle`` in its own (or a given) lane."""
        return self.leader_in_lane(lane if lane is not None else vehicle.lane,
                                   vehicle.lon, exclude=vehicle.vid)

    def follower_of(self, vehicle: Vehicle, lane: int | None = None) -> Vehicle | None:
        """Follower of ``vehicle`` in its own (or a given) lane."""
        return self.follower_in_lane(lane if lane is not None else vehicle.lane,
                                     vehicle.lon, exclude=vehicle.vid)

    # ------------------------------------------------------------------
    # control
    # ------------------------------------------------------------------
    def invalidate_profiles(self) -> None:
        """Drop the cached driver-parameter arrays.

        The vectorized step reads :class:`DriverProfile` fields through
        a struct-of-arrays view cached until the population changes.
        Code that mutates a live vehicle's profile mid-run (e.g. the
        synthetic-trajectory slowdown events) must call this so the next
        step sees the new parameters.
        """
        self._profile_cache = None

    def set_maneuver(self, vid: str, lane_delta: int, accel: float) -> None:
        """Command an externally controlled vehicle for the next step.

        Accelerations are clipped to the paper's [-a', a'] restriction;
        lane deltas must be in {-1, 0, +1} (restriction 2).
        """
        if lane_delta not in (-1, 0, 1):
            raise ValueError("lane_delta must be -1, 0 or +1")
        accel = min(max(accel, -constants.A_MAX), constants.A_MAX)
        self._pending[vid] = Maneuver(lane_delta, accel)

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self) -> list[CollisionEvent]:
        """Advance the world by one 0.5 s step; return new collisions.

        Dispatches to the vectorized struct-of-arrays path, falling back
        to the scalar reference loop when ``reference=True`` or when a
        custom model does not provide the batched interface.  The two
        paths produce bit-identical trajectories, collision events, and
        RNG stream consumption.
        """
        if self.reference or not self._vectorizable():
            return self._step_reference()
        return self._step_vectorized()

    def _vectorizable(self) -> bool:
        return (hasattr(self.car_following, "acceleration_batch")
                and hasattr(self.lane_change, "evaluate_batch"))

    def _dawdle_noise(self, count: int) -> np.ndarray | None:
        """Draw the per-step dawdle noise block: one (u_hit, u_mag) pair per
        eligible conventional vehicle, in sorted-vid order.

        A single block draw (instead of data-dependent sequential draws)
        keeps the RNG stream consumption identical between the reference
        and vectorized paths: ``Generator.random((n, 2))`` consumes the
        same stream as 2n sequential ``random()`` calls.
        """
        return self.rng.random((count, 2)) if count else None

    def _step_reference(self) -> list[CollisionEvent]:
        if self._index_dirty:
            self._rebuild_index()

        vehicles = self.active_vehicles()
        noise = self._dawdle_noise(sum(
            1 for vehicle in vehicles
            if not vehicle.is_autonomous and vehicle.vid not in self._pending
            and vehicle.profile.imperfection > 0.0))
        noise_row = 0

        decisions: dict[str, Maneuver] = {}
        for vehicle in vehicles:
            if vehicle.vid in self._pending:
                decisions[vehicle.vid] = self._pending[vehicle.vid]
            elif not vehicle.is_autonomous:
                pair = None
                if vehicle.profile.imperfection > 0.0:
                    pair = noise[noise_row]
                    noise_row += 1
                decisions[vehicle.vid] = self._conventional_decision(vehicle, pair)
            else:
                decisions[vehicle.vid] = Maneuver(0, 0.0)

        new_collisions = self._apply(decisions)
        self._pending.clear()
        self.step_count += 1
        return new_collisions

    def _conventional_decision(self, vehicle: Vehicle,
                               noise: np.ndarray | None = None) -> Maneuver:
        leader = self.leader_of(vehicle)
        lane_delta = 0
        if vehicle.cooldown > 0:
            vehicle.cooldown -= 1
        else:
            left = self._adjacent(vehicle, -1)
            right = self._adjacent(vehicle, +1)
            lane_delta = self.lane_change.decide(vehicle, leader, left, right)
            if lane_delta != 0:
                vehicle.cooldown = LANE_CHANGE_COOLDOWN
                leader = self.leader_of(vehicle, vehicle.lane + lane_delta)

        gap = vehicle.gap_to(leader) if leader is not None else free_road_gap()
        leader_v = leader.v if leader is not None else 0.0
        accel = self.car_following.acceleration(vehicle.v, leader_v, gap, vehicle.profile)
        # Seeded driver imperfection (Krauss sigma): occasionally dawdle.
        # The (u_hit, u_mag) pair comes from the per-step block draw.
        if noise is not None and float(noise[0]) < vehicle.profile.imperfection:
            accel -= float(noise[1]) * 0.5 * vehicle.profile.max_accel
        accel = min(max(accel, -constants.A_MAX), constants.A_MAX)
        accel = self._emergency_brake(vehicle, leader, accel)
        return Maneuver(lane_delta, accel)

    # ------------------------------------------------------------------
    # vectorized stepping
    # ------------------------------------------------------------------
    def _static_arrays(self, vehicles: list[Vehicle]
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                  np.ndarray, bool]:
        """Lengths, autonomy flags (and their negation / any-AV flag),
        and per-vehicle velocity floors, cached behind the population
        generation counter."""
        if self._static_generation != self._generation:
            count = len(vehicles)
            is_av = np.fromiter((vehicle.is_autonomous for vehicle in vehicles),
                                dtype=bool, count=count)
            self._static_cache = (
                np.fromiter((vehicle.length for vehicle in vehicles),
                            dtype=np.float64, count=count),
                is_av,
                np.where(is_av, self.road.v_min, 0.0),
                ~is_av,
                bool(is_av.any()),
            )
            self._static_generation = self._generation
        return self._static_cache

    def _step_vectorized(self) -> list[CollisionEvent]:
        """Advance all vehicles on struct-of-arrays state.

        Every formula below transcribes the scalar path with identical
        operation order (see docs/performance.md for the methodology),
        so positions, velocities, lanes, cooldowns, collision events,
        and RNG draws match the reference loop bit for bit.
        """
        new_events: list[CollisionEvent] = []
        # SoA carryover: the arrays written at the end of the previous
        # step double as this step's input, skipping the object gather.
        # Valid only while the population is unchanged (the add/remove
        # paths null it) and no external code replaced a state or
        # cooldown in between (checked by object identity / value below).
        cached = self._soa_cache
        if cached is not None \
                and [vehicle.state for vehicle in cached[0]] == cached[1] \
                and [vehicle.cooldown for vehicle in cached[0]] == cached[6]:
            vehicles, _, lane, lon, v, cooldown, _, deques = cached
            count = len(vehicles)
        else:
            vehicles = self.active_vehicles()
            count = len(vehicles)
            if count == 0:
                self._pending.clear()
                self.step_count += 1
                return new_events
            lane = np.fromiter((vehicle.state.lat for vehicle in vehicles),
                               dtype=np.int64, count=count)
            lon = np.fromiter((vehicle.state.lon for vehicle in vehicles),
                              dtype=np.float64, count=count)
            v = np.fromiter((vehicle.state.v for vehicle in vehicles),
                            dtype=np.float64, count=count)
            cooldown = np.fromiter((vehicle.cooldown for vehicle in vehicles),
                                   dtype=np.int64, count=count)
            deques = [self.history[vehicle.vid] for vehicle in vehicles]
        length, is_av, v_floor, not_av, has_av = self._static_arrays(vehicles)
        profiles = self._profile_cache
        if profiles is None:
            profiles = ProfileArrays.from_profiles(
                vehicle.profile for vehicle in vehicles)
            self._profile_cache = profiles
        rear = lon - length

        lane_delta = np.zeros(count, dtype=np.int64)
        cv_changers = False
        av_changers = False
        any_delta = False
        if self._pending:
            accel = np.zeros(count)
            pending = np.zeros(count, dtype=bool)
            for row, vehicle in enumerate(vehicles):
                maneuver = self._pending.get(vehicle.vid)
                if maneuver is not None:
                    pending[row] = True
                    lane_delta[row] = maneuver.lane_delta
                    accel[row] = maneuver.accel
                    if maneuver.lane_delta != 0:
                        any_delta = True
                        if not vehicle.is_autonomous:
                            cv_changers = True
                        else:
                            av_changers = True
            conventional = ~(is_av | pending)
            all_conventional = False
            may_off_road = True
        else:
            # No external commands: only MOBIL decides, and it never
            # selects an invalid lane, so the boundary check is dead.
            # With no AVs either (the common traffic-generation case),
            # every per-row mask below merges with an all-True array --
            # all_conventional lets those merges collapse to no-ops.
            accel = None
            conventional = not_av
            all_conventional = not has_av
            may_off_road = False

        # One lane-sorted pass answers every neighbor query of the step:
        # own-lane leaders plus both adjacent-lane leader/follower pairs.
        lanes = _SortedLanes(lane, lon, self.road.num_lanes, self._lane_targets)
        leaders3, followers3 = lanes.neighbors(
            np.concatenate((lane, lane - 1, lane + 1)),
            np.concatenate((lon, lon, lon)))
        own_leader = leaders3[:count]

        # Car-following inputs vs the own-lane leader.  The trailing 0.0
        # sentinel makes a -1 "no neighbor" index gather an exact 0.0 --
        # the same value the masked branches would substitute -- so the
        # safe-index np.where dance disappears.  The acceleration itself
        # is computed inside the stacked MOBIL call when lane changes are
        # being decided (the common case), standalone otherwise; for the
        # few vehicles that end up changing lane, the affected rows are
        # recomputed against the target-lane leader below.
        cf_has = own_leader >= 0
        v_ext = np.concatenate((v, _ZERO))
        rear_ext = np.concatenate((rear, _ZERO))
        cf_leader_v = v_ext[own_leader]
        cf_gap = np.where(cf_has, rear_ext[own_leader] - lon, FREE_ROAD_GAP)

        # MOBIL lane-change decisions for CVs off cooldown, both
        # directions evaluated in one concatenated [left; right] batch.
        everyone_decides = False
        if cooldown.any():
            if all_conventional:
                on_cooldown = cooldown > 0
                deciding = ~on_cooldown
            else:
                on_cooldown = conventional & (cooldown > 0)
                deciding = conventional & ~on_cooldown
            cooldown = np.where(on_cooldown, cooldown - 1, cooldown)
        else:
            # No one is on cooldown: the decrement is a no-op and every
            # conventional vehicle gets to decide.
            deciding = conventional
            everyone_decides = all_conventional
        if everyone_decides or deciding.any():
            side_leader = leaders3[count:]
            side_follower = followers3[count:]
            has_leader = side_leader >= 0
            has_follower = side_follower >= 0
            cache = self._ego_cache
            if cache is None or cache[0].shape[0] != count:
                rows = np.arange(count)
                cache = (rows, np.concatenate((rows, rows)))
                self._ego_cache = cache
            rows, ego = cache
            lon_ext = np.concatenate((lon, _ZERO))
            lon2 = np.concatenate((lon, lon))
            leader_rear = rear_ext[side_leader]
            incentive, cf_accel = self.lane_change.evaluate_batch(
                v[ego], rear[ego], profiles, ego, side_follower,
                has_leader, v_ext[side_leader], leader_rear - lon2, leader_rear,
                has_follower, v_ext[side_follower], lon_ext[side_follower],
                rows, v, cf_leader_v, cf_gap)
            decided = self.lane_change.decide_batch(
                incentive[:count], incentive[count:],
                profiles.lane_change_threshold,
                lane > 1, lane < self.road.num_lanes)
            if everyone_decides:
                lane_delta = decided
                changed = decided != 0
            else:
                lane_delta = np.where(deciding, decided, lane_delta)
                changed = deciding & (lane_delta != 0)
            changed_rows = changed.nonzero()[0]
            if changed_rows.size:
                cv_changers = True
                any_delta = True
                cooldown = np.where(changed, LANE_CHANGE_COOLDOWN, cooldown)
                offset = np.where(lane_delta[changed_rows] == -1, 0, count)
                new_leader = side_leader[changed_rows + offset]
                has = new_leader >= 0
                leader_v = v_ext[new_leader]
                gap = np.where(has, rear_ext[new_leader] - lon[changed_rows],
                               FREE_ROAD_GAP)
                cf_leader_v[changed_rows] = leader_v
                cf_gap[changed_rows] = gap
                cf_accel[changed_rows] = self.car_following.acceleration_batch(
                    v[changed_rows], leader_v, gap, profiles.view(changed_rows))
        else:
            cf_accel = self.car_following.acceleration_batch(
                v, cf_leader_v, cf_gap, profiles)

        # Seeded driver imperfection: same block draw as _step_reference.
        if all_conventional:
            eligible = profiles.imperfect
            all_eligible = profiles.fully_imperfect
        else:
            eligible = conventional & profiles.imperfect
            all_eligible = bool(eligible.all())
        noise = self._dawdle_noise(
            count if all_eligible else int(np.count_nonzero(eligible)))
        if noise is not None:
            if all_eligible:
                # Common dense-traffic case: every row draws, so the
                # gather/scatter pair degenerates to whole-array ops
                # (rows with no hit subtract an exact 0.0 -- a no-op).
                hit = noise[:, 0] < profiles.imperfection
                reduction = np.where(
                    hit, noise[:, 1] * profiles.half_max_accel, 0.0)
                cf_accel = cf_accel - reduction
            else:
                hit = noise[:, 0] < profiles.imperfection[eligible]
                reduction = np.where(
                    hit, noise[:, 1] * profiles.half_max_accel[eligible], 0.0)
                cf_accel[eligible] = cf_accel[eligible] - reduction

        cf_accel = np.minimum(np.maximum(cf_accel, -constants.A_MAX), constants.A_MAX)

        # Emergency braking envelope against the car-following leader.
        # The no-leader sentinel gap (1e6 m) keeps ``required`` far below
        # A_MAX, so those rows disengage without an explicit has-leader
        # term in the mask.
        closing = v - cf_leader_v
        engaged = (cf_gap > 0.0) & (closing > 0.0)
        effective_gap = np.maximum(cf_gap - closing * constants.DT - 0.3, 0.1)
        required = closing * closing / (2.0 * effective_gap)
        danger = engaged & (required > constants.A_MAX)
        if danger.any():
            cf_accel = np.where(
                danger, -np.minimum(required, constants.EMERGENCY_DECEL),
                cf_accel)
        if all_conventional:
            accel = cf_accel
        elif accel is None:
            accel = np.where(conventional, cf_accel, 0.0)
        else:
            accel = np.where(conventional, cf_accel, accel)

        # Synchronous lane-change conflicts (see _resolve_lane_conflicts
        # for the scalar semantics): AV-vs-AV arbitration runs first --
        # an AV lane change aborts only when it overlaps another AV's
        # claim, never a CV's -- then CV changers abort, in sorted-vid
        # order, against keeper claims and the AVs' final targets.
        target = lane + lane_delta if any_delta else lane
        if cv_changers or av_changers:
            predicted = lon + v * constants.DT + accel * _HALF_DT_SQ
            claim_lo = predicted - length - 1.0
            claim_hi = predicted + 1.0
        if av_changers:
            av_mover = (lane_delta != 0) & is_av
            av_keeper = is_av & ~av_mover
            av_keeper_claims: dict[int, tuple[np.ndarray, np.ndarray]] = {}
            av_extra: dict[int, list[tuple[float, float]]] = {}
            for row in np.flatnonzero(av_mover):
                lane_to = int(target[row])
                if lane_to not in av_keeper_claims:
                    mask = av_keeper & (target == lane_to)
                    av_keeper_claims[lane_to] = (claim_lo[mask], claim_hi[mask])
                lows, highs = av_keeper_claims[lane_to]
                overlapping = bool(np.any((claim_lo[row] < highs)
                                          & (lows < claim_hi[row])))
                if not overlapping:
                    for low, high in av_extra.get(lane_to, ()):
                        if claim_lo[row] < high and low < claim_hi[row]:
                            overlapping = True
                            break
                if overlapping:
                    lane_delta[row] = 0
                    target[row] = lane[row]
                    cooldown[row] = 0
                    av_extra.setdefault(int(lane[row]), []).append(
                        (claim_lo[row], claim_hi[row]))
                else:
                    av_extra.setdefault(lane_to, []).append(
                        (claim_lo[row], claim_hi[row]))
        if cv_changers:
            changer = (lane_delta != 0) & not_av
            keeper = ~changer
            keeper_claims: dict[int, tuple[np.ndarray, np.ndarray]] = {}
            extra_claims: dict[int, list[tuple[float, float]]] = {}
            for row in np.flatnonzero(changer):
                lane_to = int(target[row])
                if lane_to not in keeper_claims:
                    mask = keeper & (target == lane_to)
                    keeper_claims[lane_to] = (claim_lo[mask], claim_hi[mask])
                lows, highs = keeper_claims[lane_to]
                overlapping = bool(np.any((claim_lo[row] < highs)
                                          & (lows < claim_hi[row])))
                if not overlapping:
                    for low, high in extra_claims.get(lane_to, ()):
                        if claim_lo[row] < high and low < claim_hi[row]:
                            overlapping = True
                            break
                if overlapping:
                    lane_delta[row] = 0
                    target[row] = lane[row]
                    cooldown[row] = 0
                    extra_claims.setdefault(int(lane[row]), []).append(
                        (claim_lo[row], claim_hi[row]))
                else:
                    extra_claims.setdefault(lane_to, []).append(
                        (claim_lo[row], claim_hi[row]))

        # Boundary events (driving off the road laterally), sorted-vid
        # order; only externally commanded maneuvers can leave the road.
        if may_off_road:
            off_road = (target < 1) | (target > self.road.num_lanes)
            if off_road.any():
                for row in np.flatnonzero(off_road):
                    event = CollisionEvent(self.step_count, vehicles[row].vid,
                                           None, "boundary")
                    new_events.append(event)
                    self.collisions.append(event)
                lane_delta = np.where(off_road, 0, lane_delta)
                target = np.where(off_road, lane, target)

        # Eq. 18 kinematics (VehicleState.advanced, transcribed).
        new_v = np.minimum(np.maximum(v + accel * constants.DT, v_floor),
                           self.road.v_max)
        new_lon = lon + v * constants.DT + accel * _HALF_DT_SQ

        lat_list = target.tolist()
        lon_list = new_lon.tolist()
        v_list = new_v.tolist()
        accel_list = accel.tolist()
        cooldown_list = cooldown.tolist()
        states: list[VehicleState] = []
        record_state = states.append
        new_instance = object.__new__
        # States are built by writing the instance dict directly: the
        # frozen-dataclass constructor routes every field through
        # object.__setattr__, a measurable cost at one state per vehicle
        # per step.  The objects are identical (same fields, eq, hash).
        for vehicle, lat_next, lon_next, v_next, accel_next, cd_next, past in zip(
                vehicles, lat_list, lon_list, v_list, accel_list,
                cooldown_list, deques):
            vehicle.prev_accel = vehicle.accel
            vehicle.accel = accel_next
            state = new_instance(VehicleState)
            state_dict = state.__dict__
            state_dict["lat"] = lat_next
            state_dict["lon"] = lon_next
            state_dict["v"] = v_next
            vehicle.state = state
            vehicle.cooldown = cd_next
            past.append(state)
            record_state(state)
        self._index_dirty = True

        # Crash detection on the advanced state: consecutive same-lane
        # pairs, lanes ascending then positions ascending.
        order = np.lexsort((new_lon, target))
        sorted_lane = target[order]
        sorted_lon = new_lon[order]
        sorted_rear = sorted_lon - length[order]
        crash = (sorted_lane[1:] == sorted_lane[:-1]) \
            & ((sorted_rear[1:] - sorted_lon[:-1]) < 0.0)
        for pair in crash.nonzero()[0]:
            follower = vehicles[int(order[pair])]
            leader = vehicles[int(order[pair + 1])]
            event = CollisionEvent(self.step_count, follower.vid, leader.vid,
                                   "crash")
            new_events.append(event)
            self.collisions.append(event)

        if float(new_lon.max()) >= self.road.length:
            for vehicle in list(self.vehicles.values()):
                if vehicle.lon >= self.road.length:
                    vehicle.finish_time = self.step_count + 1
                    self.remove_vehicle(vehicle.vid)
        else:
            # Nobody retired: the arrays just written back are next
            # step's inputs (retirement clears _soa_cache instead).
            self._soa_cache = (vehicles, states, target, new_lon, new_v,
                               cooldown, cooldown_list, deques)

        self._pending.clear()
        self.step_count += 1
        return new_events

    @staticmethod
    def _emergency_brake(vehicle: Vehicle, leader: Vehicle | None,
                         accel: float) -> float:
        """Allow a CV to exceed comfortable braking in a near-collision.

        SUMO's emergencyDecel semantics: when the closing speed and gap
        demand more than the comfortable bound to avoid running into the
        leader (e.g. a vehicle just cut in), brake as hard as the tires
        allow.  The criterion is the constant-deceleration stopping
        envelope ``closing^2 / (2 * gap)`` plus a reaction-step margin.
        """
        if leader is None:
            return accel
        gap = vehicle.gap_to(leader)
        closing = vehicle.v - leader.v
        if gap <= 0.0 or closing <= 0.0:
            return accel
        # Gap available after one more reaction step at current speeds.
        effective_gap = max(gap - closing * constants.DT - 0.3, 0.1)
        required = closing * closing / (2.0 * effective_gap)
        if required <= constants.A_MAX:
            return accel
        return -min(required, constants.EMERGENCY_DECEL)

    def _adjacent(self, vehicle: Vehicle, direction: int) -> tuple[Vehicle | None, Vehicle | None] | None:
        lane = vehicle.lane + direction
        if not self.road.is_valid_lane(lane):
            return None
        return (self.leader_of(vehicle, lane), self.follower_of(vehicle, lane))

    def _resolve_lane_conflicts(self, decisions: dict[str, Maneuver]) -> dict[str, Maneuver]:
        """Cancel lane changes that would collide with concurrent movers.

        Decisions are made synchronously from the state at ``t``, so two
        vehicles can legitimately claim the same target gap.  Resolution
        runs in sorted-vid order (canonical: invariant to insertion
        order) in three waves:

        1. lane-keepers (CV and AV) claim their predicted intervals;
        2. AV changers arbitrate **among themselves**: an AV lane change
           aborts only when it overlaps another AV's claim.  CV claims
           never override an AV command -- an AV maneuver that is unsafe
           with respect to conventional traffic must produce the
           collision so the reward can penalize it.  With a single AV
           this wave is a no-op, preserving the M=1 contract;
        3. CV changers abort (keep lane) when overlapping any existing
           claim, including the AVs' final targets.
        """
        margin = 1.0
        claims: dict[int, list[tuple[float, float]]] = {}
        av_claims: dict[int, list[tuple[float, float]]] = {}
        resolved = dict(decisions)

        def predicted_interval(vehicle: Vehicle, maneuver: Maneuver) -> tuple[float, float]:
            lon = vehicle.lon + vehicle.v * constants.DT + 0.5 * maneuver.accel * constants.DT ** 2
            return (lon - vehicle.length - margin, lon + margin)

        av_movers: list[str] = []
        changers: list[str] = []
        for vid in sorted(decisions):
            vehicle = self.vehicles.get(vid)
            if vehicle is None:
                continue
            maneuver = decisions[vid]
            if maneuver.lane_delta == 0:
                interval = predicted_interval(vehicle, maneuver)
                claims.setdefault(vehicle.lane, []).append(interval)
                if vehicle.is_autonomous:
                    av_claims.setdefault(vehicle.lane, []).append(interval)
            elif vehicle.is_autonomous:
                av_movers.append(vid)
            else:
                changers.append(vid)

        for vid in av_movers:
            vehicle = self.vehicles[vid]
            maneuver = decisions[vid]
            target = vehicle.lane + maneuver.lane_delta
            interval = predicted_interval(vehicle, maneuver)
            overlapping = any(interval[0] < hi and lo < interval[1]
                              for lo, hi in av_claims.get(target, []))
            if overlapping:
                resolved[vid] = Maneuver(0, maneuver.accel)
                vehicle.cooldown = 0
                lane_to = vehicle.lane
            else:
                lane_to = target
            claims.setdefault(lane_to, []).append(interval)
            av_claims.setdefault(lane_to, []).append(interval)

        for vid in changers:
            vehicle = self.vehicles[vid]
            maneuver = decisions[vid]
            target = vehicle.lane + maneuver.lane_delta
            interval = predicted_interval(vehicle, maneuver)
            overlapping = any(interval[0] < hi and lo < interval[1]
                              for lo, hi in claims.get(target, []))
            if overlapping:
                resolved[vid] = Maneuver(0, maneuver.accel)
                vehicle.cooldown = 0
                claims.setdefault(vehicle.lane, []).append(predicted_interval(vehicle, resolved[vid]))
            else:
                claims.setdefault(target, []).append(interval)
        return resolved

    def _apply(self, decisions: dict[str, Maneuver]) -> list[CollisionEvent]:
        new_events: list[CollisionEvent] = []
        decisions = self._resolve_lane_conflicts(decisions)
        for vid, maneuver in decisions.items():
            vehicle = self.vehicles.get(vid)
            if vehicle is None:
                continue
            target_lane = vehicle.lane + maneuver.lane_delta
            if not self.road.is_valid_lane(target_lane):
                event = CollisionEvent(self.step_count, vid, None, "boundary")
                new_events.append(event)
                self.collisions.append(event)
                target_lane = vehicle.lane  # stay on road after recording
                maneuver = Maneuver(0, maneuver.accel)
            v_floor = self.road.v_min if vehicle.is_autonomous else 0.0
            vehicle.prev_accel = vehicle.accel
            vehicle.accel = maneuver.accel
            vehicle.state = vehicle.state.advanced(
                maneuver.lane_delta, maneuver.accel,
                v_min=v_floor, v_max=self.road.v_max)
            self.history[vid].append(vehicle.state)

        self._index_dirty = True
        new_events.extend(self._detect_crashes())

        for vehicle in list(self.vehicles.values()):
            if vehicle.lon >= self.road.length:
                vehicle.finish_time = self.step_count + 1
                self.remove_vehicle(vehicle.vid)
        return new_events

    def _detect_crashes(self) -> list[CollisionEvent]:
        if self._index_dirty:
            self._rebuild_index()
        events: list[CollisionEvent] = []
        for index in self._lane_index.values():
            for follower, leader in zip(index.vehicles[:-1], index.vehicles[1:]):
                if follower.gap_to(leader) < 0.0:
                    event = CollisionEvent(self.step_count, follower.vid, leader.vid, "crash")
                    events.append(event)
                    self.collisions.append(event)
        return events

    # ------------------------------------------------------------------
    # history access (used by the perception module)
    # ------------------------------------------------------------------
    def state_history(self, vid: str, steps: int) -> list[VehicleState]:
        """Return the most recent ``steps`` states (oldest first).

        Pads by repeating the oldest known state when the vehicle has
        been alive for fewer steps, which mirrors a sensor that has just
        acquired a track.
        """
        recorded = list(self.history[vid])[-steps:]
        if len(recorded) < steps:
            recorded = [recorded[0]] * (steps - len(recorded)) + recorded
        return recorded

    def density_per_km(self) -> float:
        """Current total vehicle density across all lanes (veh/km)."""
        return len(self.vehicles) / (self.road.length / 1000.0)

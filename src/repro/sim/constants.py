"""Traffic constants shared across the simulator (paper Section V-A).

All values default to the paper's experimental settings; every consumer
accepts overrides so experiments can rescale without touching code.
"""

from __future__ import annotations

#: Time between consecutive decision steps (s); the paper fixes 0.5 s.
DT = 0.5

#: Width of one lane (m).
LANE_WIDTH = 3.2

#: Road speed limits (m/s): 5 km/h and 90 km/h.
V_MIN = 5.0 / 3.6
V_MAX = 90.0 / 3.6

#: Acceleration bound a' (m/s^2); maneuvers use a in [-A_MAX, A_MAX].
A_MAX = 3.0

#: Physical vehicle length (m), a standard passenger-car value.
VEHICLE_LENGTH = 5.0

#: Maximum emergency deceleration (m/s^2) available to conventional
#: vehicles in a near-collision, matching SUMO's emergencyDecel
#: (default 9, physical tire limit ~8-9).  Normal driving stays within
#: [-A_MAX, A_MAX]; the autonomous vehicle's action space is always
#: bounded by A_MAX (paper restriction 3).
EMERGENCY_DECEL = 8.0

#: Number of lanes kappa on the simulated road.
NUM_LANES = 6

#: Road length for end-to-end episodes (m).
ROAD_LENGTH = 3000.0

#: Traffic density (vehicles per km across all lanes).
DENSITY_PER_KM = 180.0

#: Sensor detection radius R (m).
SENSOR_RANGE = 100.0

#: Number of historical time steps z fed to the perception module.
HISTORY_STEPS = 5

"""Traffic population: seed a road with heterogeneous conventional traffic.

Reproduces the paper's episode setup: a straight six-lane road populated
at a target density (180 veh/km by default), with one autonomous vehicle
initialized at the road origin on a random lane.  Each conventional
driver gets randomized IDM/Krauss parameters so the traffic is as
heterogeneous as NGSIM-like real data.
"""

from __future__ import annotations

import numpy as np

from ..seeding import default_generator
from . import constants
from .engine import SimulationEngine
from .road import Road
from .vehicle import DriverProfile, Vehicle, VehicleState

__all__ = ["random_profile", "populate_traffic", "insert_autonomous_vehicle",
           "build_episode", "fleet_vids", "insert_autonomous_fleet",
           "build_fleet_episode"]

#: Clear space (m) kept around the AV spawn point so episodes start fair.
SPAWN_CLEARANCE = 30.0


def random_profile(rng: np.random.Generator, road: Road) -> DriverProfile:
    """Draw a heterogeneous human-driver profile.

    Desired speeds spread around 80-100% of the limit; headways, gaps
    and politeness vary so lane-change pressure differs per driver.
    """
    return DriverProfile(
        desired_speed=float(rng.uniform(0.75, 1.0) * road.v_max),
        time_headway=float(rng.uniform(1.0, 2.0)),
        min_gap=float(rng.uniform(1.5, 3.0)),
        max_accel=float(rng.uniform(1.5, 2.5)),
        comfort_decel=float(rng.uniform(2.0, 3.0)),
        politeness=float(rng.uniform(0.1, 0.5)),
        lane_change_threshold=float(rng.uniform(0.1, 0.4)),
        imperfection=float(rng.uniform(0.0, 0.12)),
    )


def populate_traffic(engine: SimulationEngine, rng: np.random.Generator,
                     density_per_km: float = constants.DENSITY_PER_KM,
                     keep_clear: tuple[int, float, float] | None = None) -> list[Vehicle]:
    """Fill the road with conventional vehicles at the target density.

    Vehicles are spread across lanes with jittered spacing and speeds
    near their desired speed.  ``keep_clear=(lane, lon_min, lon_max)``
    reserves space (on every lane around the AV spawn) so insertion of
    the autonomous vehicle cannot start inside a platoon.
    """
    road = engine.road
    total = int(round(density_per_km * road.length / 1000.0))
    per_lane = max(total // road.num_lanes, 1)
    spacing = road.length / per_lane
    created: list[Vehicle] = []
    counter = 0
    for lane in range(1, road.num_lanes + 1):
        offset = rng.uniform(0.0, spacing)
        for slot in range(per_lane):
            lon = offset + slot * spacing + rng.uniform(-0.25, 0.25) * spacing
            lon = float(np.clip(lon, 0.0, road.length - 1.0))
            if keep_clear is not None and keep_clear[1] <= lon <= keep_clear[2]:
                continue
            profile = random_profile(rng, road)
            velocity = float(np.clip(profile.desired_speed * rng.uniform(0.7, 1.0),
                                     road.v_min, road.v_max))
            vehicle = Vehicle(
                vid=f"cv{counter}",
                state=VehicleState(lat=lane, lon=lon, v=velocity),
                profile=profile,
            )
            # Skip placements that would overlap an existing vehicle.
            leader = engine.leader_in_lane(lane, lon)
            follower = engine.follower_in_lane(lane, lon)
            min_space = constants.VEHICLE_LENGTH + 1.0
            if leader is not None and leader.lon - lon < min_space:
                continue
            if follower is not None and lon - follower.lon < min_space:
                continue
            engine.add_vehicle(vehicle)
            created.append(vehicle)
            counter += 1
    _equilibrate_speeds(engine, created)
    return created


def _equilibrate_speeds(engine: SimulationEngine, vehicles: list[Vehicle]) -> None:
    """Cap initial speeds so the starting state is dynamically feasible.

    Sampled speeds can be inconsistent with sampled gaps (a fast
    follower close behind a slow leader cannot avoid a crash no matter
    what it does).  Walking each lane front to back, each vehicle's
    speed is limited to the Krauss safe speed for its actual leader, so
    episodes never begin in a doomed configuration.
    """
    by_lane: dict[int, list[Vehicle]] = {}
    for vehicle in vehicles:
        by_lane.setdefault(vehicle.lane, []).append(vehicle)
    for lane_vehicles in by_lane.values():
        lane_vehicles.sort(key=lambda vehicle: -vehicle.lon)
        for leader, follower in zip(lane_vehicles[:-1], lane_vehicles[1:]):
            gap = max(follower.gap_to(leader) - follower.profile.min_gap, 0.0)
            brake = follower.profile.comfort_decel
            tau = 1.0
            v_safe = leader.v + (gap - leader.v * tau) / ((follower.v + leader.v) / (2.0 * brake) + tau)
            v_safe = max(v_safe, 0.0)
            if follower.v > v_safe:
                follower.state = VehicleState(follower.lane, follower.lon, v_safe)
                engine.history[follower.vid][-1] = follower.state


def replenish_traffic(engine: SimulationEngine, rng: np.random.Generator,
                      density_per_km: float = constants.DENSITY_PER_KM) -> list[Vehicle]:
    """Inject vehicles at the road origin to hold a target density.

    Open roads drain as vehicles retire at the far end; recorded scenes
    (the REAL dataset substitute) need steady inflow like a real highway
    segment.  A vehicle enters on a lane only when the entry area is
    clear enough for a safe merge.
    """
    road = engine.road
    deficit = int(round(density_per_km * road.length / 1000.0)) - len(engine.vehicles)
    created: list[Vehicle] = []
    if deficit <= 0:
        return created
    lanes = list(range(1, road.num_lanes + 1))
    rng.shuffle(lanes)
    for lane in lanes[:deficit]:
        leader = engine.leader_in_lane(lane, 0.0)
        clear = leader.rear if leader is not None else road.length
        if clear < constants.VEHICLE_LENGTH + 10.0:
            continue
        profile = random_profile(rng, road)
        # Enter no faster than is safe for the available headway.
        v_entry = min(profile.desired_speed,
                      leader.v + max(clear - profile.min_gap, 0.0) / 2.0 if leader else road.v_max)
        v_entry = float(np.clip(v_entry, road.v_min, road.v_max))
        vehicle = Vehicle(
            vid=f"in{engine.step_count}_{lane}",
            state=VehicleState(lat=lane, lon=0.0, v=v_entry),
            profile=profile,
        )
        engine.add_vehicle(vehicle)
        created.append(vehicle)
    return created


def insert_autonomous_vehicle(engine: SimulationEngine, rng: np.random.Generator,
                              vid: str = "av") -> Vehicle:
    """Place the AV at the road origin on a random lane (paper setup)."""
    road = engine.road
    lane = int(rng.integers(1, road.num_lanes + 1))
    vehicle = Vehicle(
        vid=vid,
        state=VehicleState(lat=lane, lon=0.0, v=float(rng.uniform(0.5, 0.8) * road.v_max)),
        is_autonomous=True,
    )
    return engine.add_vehicle(vehicle)


def fleet_vids(count: int) -> list[str]:
    """Canonical fleet vehicle ids: ``av`` plus zero-padded ``av01``...

    Index 0 is always ``"av"`` (the single-AV id), so an M=1 fleet is
    indistinguishable from the classic episode.  Later ids are
    zero-padded to a fixed width so lexicographic order equals spawn
    order -- the engine's sorted-vid iteration then visits the fleet in
    canonical order regardless of insertion sequence.
    """
    if count <= 1:
        return ["av"]
    width = len(str(count - 1))
    return ["av"] + [f"av{index:0{width}d}" for index in range(1, count)]


def insert_autonomous_fleet(engine: SimulationEngine, rng: np.random.Generator,
                            count: int = 1) -> list[Vehicle]:
    """Place ``count`` AVs: the first exactly like the single-AV setup.

    AV 0 spawns at the road origin via :func:`insert_autonomous_vehicle`
    with the same RNG draws, so an M=1 fleet consumes the identical
    stream as :func:`build_episode`.  Each additional AV k draws the
    same (lane, speed) pair shape and starts at ``k * length / count``;
    conventional vehicles already inside its clearance window are
    discarded deterministically (no RNG, no retirement bookkeeping).
    """
    road = engine.road
    vids = fleet_vids(count)
    fleet = [insert_autonomous_vehicle(engine, rng, vid=vids[0])]
    for index in range(1, count):
        lane = int(rng.integers(1, road.num_lanes + 1))
        velocity = float(rng.uniform(0.5, 0.8) * road.v_max)
        lon = index * road.length / count
        for other in list(engine.vehicles.values()):
            if other.lane == lane and not other.is_autonomous \
                    and abs(other.lon - lon) <= SPAWN_CLEARANCE:
                engine.discard_vehicle(other.vid)
        fleet.append(engine.add_vehicle(Vehicle(
            vid=vids[index],
            state=VehicleState(lat=lane, lon=lon, v=velocity),
            is_autonomous=True,
        )))
    return fleet


def build_fleet_episode(seed: int, road: Road | None = None,
                        density_per_km: float = constants.DENSITY_PER_KM,
                        history_length: int = constants.HISTORY_STEPS + 1,
                        car_following=None, reference: bool = False,
                        num_avs: int = 1
                        ) -> tuple[SimulationEngine, list[Vehicle]]:
    """Seeded episode with an M-vehicle autonomous fleet.

    For ``num_avs=1`` this is exactly :func:`build_episode` (same RNG
    consumption, same world, same AV) -- the M=1 bit-compat contract
    the fleet equivalence suite pins down.
    """
    rng = default_generator(seed)
    engine = SimulationEngine(road=road or Road(), car_following=car_following,
                              rng=rng, history_length=history_length,
                              reference=reference)
    populate_traffic(engine, rng, density_per_km,
                     keep_clear=(0, 0.0, SPAWN_CLEARANCE))
    fleet = insert_autonomous_fleet(engine, rng, num_avs)
    return engine, fleet


def build_episode(seed: int, road: Road | None = None,
                  density_per_km: float = constants.DENSITY_PER_KM,
                  history_length: int = constants.HISTORY_STEPS + 1,
                  car_following=None, reference: bool = False
                  ) -> tuple[SimulationEngine, Vehicle]:
    """Create a fully initialized episode: populated road plus the AV.

    Every episode is seeded so experiments are reproducible while each
    episode differs (the paper randomizes episode initialization).
    ``car_following`` overrides the default Krauss model; ``reference``
    selects the scalar engine path (for equivalence testing).
    """
    rng = default_generator(seed)
    engine = SimulationEngine(road=road or Road(), car_following=car_following,
                              rng=rng, history_length=history_length,
                              reference=reference)
    lane_guess = None
    populate_traffic(engine, rng, density_per_km,
                     keep_clear=(lane_guess or 0, 0.0, SPAWN_CLEARANCE))
    autonomous = insert_autonomous_vehicle(engine, rng)
    return engine, autonomous

"""Hybrid reward function (paper Section IV-C, Eqs. 28-30).

Four terms, each bounded, combined with tunable coefficients:

* **safety** r1 in [-3, 0]: log-scaled time-to-collision against the
  front vehicle, -3 on any collision (Eq. 29);
* **efficiency** r2 in [0, 1]: normalized ego velocity;
* **comfort** r3 in [-1, 0]: negative normalized jerk;
* **impact** r4 in [-1, 0]: penalizes forcing the rear conventional
  vehicle to decelerate by more than v_thr in one step (Eq. 30).

Terms referencing a phantom front/rear vehicle are masked, exactly as
the paper specifies.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

from ..sim import constants

__all__ = ["RewardWeights", "StepOutcome", "RewardBreakdown", "HybridReward"]


@dataclass(frozen=True)
class RewardWeights:
    """Coefficients w1..w4; defaults are the paper's grid-search optimum."""

    safety: float = 0.9
    efficiency: float = 0.8
    comfort: float = 0.6
    impact: float = 0.2


@dataclass(frozen=True)
class StepOutcome:
    """Ground observations needed to score one executed action.

    All fields describe the transition from step t to t+1.
    """

    collided: bool
    ego_velocity_next: float          # A^{t+1}.v
    ego_accel: float                  # A^t.a
    ego_accel_prev: float             # A^{t-1}.a
    front_gap_next: float | None      # d_lon bumper gap to C_2 at t+1 (None if absent/phantom)
    front_closing_speed: float | None  # -(C_2^{t+1}.v - A^{t+1}.v); positive means closing
    rear_velocity_now: float | None   # C_5^t.v (None if absent/phantom)
    rear_velocity_next: float | None  # C_5^{t+1}.v


@dataclass(frozen=True)
class RewardBreakdown:
    """Per-term values plus the weighted total."""

    safety: float
    efficiency: float
    comfort: float
    impact: float
    total: float


class HybridReward:
    """Eq. 28 hybrid reward with the paper's term definitions.

    Parameters
    ----------
    weights:
        Term coefficients (defaults: w1=0.9, w2=0.8, w3=0.6, w4=0.2).
    ttc_threshold:
        The scaling threshold G of Eq. 29 (paper: 4 s).
    velocity_threshold:
        v_thr of Eq. 30 (paper: 0.5 m/s).
    """

    def __init__(self, weights: RewardWeights | None = None,
                 ttc_threshold: float = 4.0,
                 velocity_threshold: float = 0.5,
                 v_min: float = constants.V_MIN,
                 v_max: float = constants.V_MAX,
                 a_max: float = constants.A_MAX,
                 dt: float = constants.DT) -> None:
        self.weights = weights or RewardWeights()
        self.ttc_threshold = ttc_threshold
        self.velocity_threshold = velocity_threshold
        self.v_min = v_min
        self.v_max = v_max
        self.a_max = a_max
        self.dt = dt

    # ------------------------------------------------------------------
    # individual terms
    # ------------------------------------------------------------------
    def safety(self, outcome: StepOutcome) -> float:
        """Eq. 29: log-scaled TTC, clipped to [-3, 0]; -3 on collision."""
        if outcome.collided:
            return -3.0
        if outcome.front_gap_next is None or outcome.front_closing_speed is None:
            return 0.0
        if outcome.front_closing_speed <= 0.0:
            return 0.0  # opening gap: TTC undefined/infinite
        ttc = outcome.front_gap_next / outcome.front_closing_speed
        if ttc >= self.ttc_threshold:
            return 0.0
        if ttc <= 0.0:
            return -3.0
        return max(-3.0, math.log(ttc / self.ttc_threshold))

    def efficiency(self, outcome: StepOutcome) -> float:
        """r2 = (v - v_min) / (v_max - v_min), in [0, 1]."""
        ratio = (outcome.ego_velocity_next - self.v_min) / (self.v_max - self.v_min)
        return min(max(ratio, 0.0), 1.0)

    def comfort(self, outcome: StepOutcome) -> float:
        """r3 = -|jerk| normalized by the largest possible change, in [-1, 0]."""
        return -abs(outcome.ego_accel - outcome.ego_accel_prev) / (2.0 * self.a_max)

    def impact(self, outcome: StepOutcome) -> float:
        """Eq. 30: penalize forcing the rear CV to brake hard, in [-1, 0]."""
        if outcome.rear_velocity_now is None or outcome.rear_velocity_next is None:
            return 0.0
        drop = outcome.rear_velocity_now - outcome.rear_velocity_next
        if drop <= self.velocity_threshold:
            return 0.0
        value = (outcome.rear_velocity_next - outcome.rear_velocity_now) / (2.0 * self.a_max * self.dt)
        return max(value, -1.0)

    # ------------------------------------------------------------------
    # combination
    # ------------------------------------------------------------------
    def compute(self, outcome: StepOutcome) -> RewardBreakdown:
        """Score one executed action (Eq. 28)."""
        r1 = self.safety(outcome)
        r2 = self.efficiency(outcome)
        r3 = self.comfort(outcome)
        r4 = self.impact(outcome)
        w = self.weights
        total = w.safety * r1 + w.efficiency * r2 + w.comfort * r3 + w.impact * r4
        return RewardBreakdown(safety=r1, efficiency=r2, comfort=r3,
                               impact=r4, total=total)

"""DRL-SC: deep RL with safety check (paper baseline, Nageshrao et al. 2019).

A plain DQN over the 9 discretized maneuvers (3 lane behaviors x 3
acceleration levels) reading only the *current* half of the state (no
enhanced-perception future states), plus a rule-based safety layer that
overrides choices violating a TTC / clearance check -- the paper's
"deep reinforcement learning model with safety check".
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..perception.phantom import TrackKind
from ..sim import constants
from .agents import PamdpAgent
from .pamdp import AugmentedState, LaneBehavior, ParameterizedAction, CURRENT_SHAPE
from .policies import Controller, DISCRETE_ACCELS
from .replay import Batch

__all__ = ["DRLSCAgent", "DRLSCController", "MANEUVERS"]

#: The 9 discrete maneuvers, indexed behavior-major.
MANEUVERS: list[tuple[LaneBehavior, float]] = [
    (behavior, accel) for behavior in LaneBehavior for accel in DISCRETE_ACCELS
]


class _DQN(nn.Module):
    """MLP over the flattened current state -> 9 action values."""

    def __init__(self, hidden_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        flat = CURRENT_SHAPE[0] * CURRENT_SHAPE[1]
        self.net = nn.MLP([flat, hidden_dim, hidden_dim, len(MANEUVERS)], rng=rng)

    def forward(self, current: nn.Tensor) -> nn.Tensor:
        batch = current.shape[0]
        return self.net(current.reshape(batch, CURRENT_SHAPE[0] * CURRENT_SHAPE[1]))


class DRLSCAgent(PamdpAgent):
    """DQN half of DRL-SC (the safety check lives in the controller)."""

    def __init__(self, hidden_dim: int = 64, lr: float = 1e-3, **kwargs) -> None:
        super().__init__(**kwargs)
        self.q_net = _DQN(hidden_dim, self.rng)
        self.q_target = _DQN(hidden_dim, self.rng)
        self.q_target.copy_from(self.q_net)
        self.optimizer = nn.Adam(self.q_net.parameters(), lr=lr)

    def maneuver_index(self, behavior: LaneBehavior, accel: float) -> int:
        """Index of the discrete maneuver nearest to (behavior, accel)."""
        accel_index = int(np.argmin([abs(accel - level) for level in DISCRETE_ACCELS]))
        return int(behavior) * len(DISCRETE_ACCELS) + accel_index

    def act(self, state: AugmentedState, explore: bool = True) -> ParameterizedAction:
        if explore and self._explore_discrete():
            behavior = self._random_behavior()
            index = behavior * len(DISCRETE_ACCELS) + int(self.rng.integers(len(DISCRETE_ACCELS)))
        else:
            with nn.no_grad():
                values = self.q_net(nn.Tensor(state.current[None])).numpy()[0]
            index = int(np.argmax(values))
        behavior, accel = MANEUVERS[index]
        return ParameterizedAction(behavior, accel)

    def _update(self, batch: Batch) -> dict[str, float]:
        with nn.no_grad():
            next_q = self.q_target(nn.Tensor(batch.next_current)).numpy()
        targets = batch.reward + self.gamma * (1.0 - batch.done) * next_q.max(axis=1)

        indices = np.array([
            int(b) * len(DISCRETE_ACCELS)
            + int(np.argmin([abs(a - level) for level in DISCRETE_ACCELS]))
            for b, a in zip(batch.behavior, batch.accel)
        ])
        one_hot = np.eye(len(MANEUVERS))[indices]

        self.optimizer.zero_grad()
        q_all = self.q_net(nn.Tensor(batch.current))
        q_taken = (q_all * nn.Tensor(one_hot)).sum(axis=1)
        diff = q_taken - nn.Tensor(targets)
        loss = (diff * diff).mean() * 0.5
        loss.backward()
        nn.clip_grad_norm(self.q_net.parameters(), 10.0)
        self.optimizer.step()
        self.q_target.soft_update_from(self.q_net, self.tau)
        return {"q_loss": loss.item(), "x_loss": 0.0}


class DRLSCController(Controller):
    """DQN choice + rule-based safety override.

    The safety check vetoes (1) lane changes into an occupied or
    off-road lane and (2) accelerations that push TTC below a threshold;
    vetoed actions degrade to lane-keep with a comfortable brake.
    """

    name = "DRL-SC"

    def __init__(self, agent: DRLSCAgent, ttc_threshold: float = 3.0,
                 min_side_gap: float = 8.0) -> None:
        self.agent = agent
        self.ttc_threshold = ttc_threshold
        self.min_side_gap = min_side_gap

    def select_action(self, env, state: AugmentedState) -> ParameterizedAction:
        action = self.agent.act(state, explore=False)
        return self.safety_check(env, action)

    def safety_check(self, env, action: ParameterizedAction) -> ParameterizedAction:
        """Override unsafe picks (used during both training and testing)."""
        av = env.av
        scene = env.frame.scene
        behavior, accel = action.behavior, action.accel

        if behavior is not LaneBehavior.KEEP:
            lane = av.lane + behavior.lane_delta
            if not env.road.is_valid_lane(lane) or not self._side_clear(env, scene, behavior):
                behavior = LaneBehavior.KEEP

        leader_area = 2 if behavior is LaneBehavior.KEEP else (1 if behavior is LaneBehavior.LEFT else 3)
        target = scene.targets[leader_area]
        if target.kind is not TrackKind.ZERO:
            gap = target.current.lon - constants.VEHICLE_LENGTH - av.lon
            closing = (av.v + accel * constants.DT) - target.current.v
            if closing > 0.0 and gap / max(closing, 1e-6) < self.ttc_threshold:
                accel = -min(constants.A_MAX, 2.0)
        return ParameterizedAction(behavior, float(accel))

    def _side_clear(self, env, scene, behavior: LaneBehavior) -> bool:
        leader_area, follower_area = (1, 4) if behavior is LaneBehavior.LEFT else (3, 6)
        av = env.av
        for area in (leader_area, follower_area):
            target = scene.targets[area]
            if target.kind is TrackKind.ZERO:
                continue
            if abs(target.current.lon - av.lon) < self.min_side_gap:
                return False
        return True

"""x- and Q-network structures for the P-DQN family (paper Section IV-B).

Two structural variants share the same optimization paradigm:

* **Branched (BP-DQN, Fig. 6)** -- the paper's contribution: the current
  states h^t, the future states f^{t+1}, and (for Q) the acceleration
  vector x_out are processed in *separate* computational branches
  (Eqs. 24-27), avoiding erroneous weight sharing between inputs of
  different scales.
* **Single-branch (vanilla P-DQN)** -- everything is flattened into one
  vector and pushed through a shared MLP, the structure the paper
  improves upon.

Both expose the same interface:

* ``x_net(current, future) -> (B, 3)`` accelerations, one per lane
  behavior, bounded to [-a', a'] by ``a' * tanh`` (Eq. 25);
* ``q_net(current, future, accels) -> (B, 3)`` Q-values, one per lane
  behavior paired with its acceleration (Eq. 27).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..sim import constants
from .pamdp import CURRENT_SHAPE, FUTURE_SHAPE
from ..seeding import resolve_rng

__all__ = ["BranchEncoder", "BranchedXNetwork", "BranchedQNetwork",
           "VanillaXNetwork", "VanillaQNetwork", "NUM_BEHAVIORS"]

#: Three lane behaviors: ll, lr, lk.
NUM_BEHAVIORS = 3

_FLAT_STATE = CURRENT_SHAPE[0] * CURRENT_SHAPE[1] + FUTURE_SHAPE[0] * FUTURE_SHAPE[1]


class BranchEncoder(nn.Module):
    """Per-vehicle scalar reduction of Eqs. 24/26.

    Applies a shared two-layer ReLU map to each vehicle row, producing
    one scalar per vehicle: ``(B, N, 4) -> (B, N)``.
    """

    def __init__(self, in_features: int, hidden_dim: int,
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.lift = nn.Linear(in_features, hidden_dim, rng=rng)
        self.reduce = nn.Linear(hidden_dim, 1, rng=rng)

    def forward(self, rows: nn.Tensor) -> nn.Tensor:
        batch, vehicles = rows.shape[0], rows.shape[1]
        hidden = self.lift(rows).relu()
        return self.reduce(hidden).relu().reshape(batch, vehicles)


class BranchedXNetwork(nn.Module):
    """BP-DQN deterministic policy network x (Eqs. 24-25)."""

    def __init__(self, hidden_dim: int = 64,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = resolve_rng(rng)
        self.current_branch = BranchEncoder(CURRENT_SHAPE[1], hidden_dim, rng)
        self.future_branch = BranchEncoder(FUTURE_SHAPE[1], hidden_dim, rng)
        merged = CURRENT_SHAPE[0] + FUTURE_SHAPE[0]  # 7 + 6 = 13
        self.merge = nn.Linear(merged, NUM_BEHAVIORS, rng=rng)

    def forward(self, current: nn.Tensor, future: nn.Tensor) -> nn.Tensor:
        h = self.current_branch(current)              # (B, 7)
        f = self.future_branch(future)                # (B, 6)
        merged = nn.concat([h, f], axis=1)            # (B, 13)
        return self.merge(merged).tanh() * constants.A_MAX


class BranchedQNetwork(nn.Module):
    """BP-DQN value network Q (Eqs. 26-27)."""

    def __init__(self, hidden_dim: int = 64,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = resolve_rng(rng)
        self.current_branch = BranchEncoder(CURRENT_SHAPE[1], hidden_dim, rng)
        self.future_branch = BranchEncoder(FUTURE_SHAPE[1], hidden_dim, rng)
        self.accel_lift = nn.Linear(NUM_BEHAVIORS, hidden_dim, rng=rng)
        self.accel_reduce = nn.Linear(hidden_dim, NUM_BEHAVIORS, rng=rng)
        merged = CURRENT_SHAPE[0] + FUTURE_SHAPE[0] + NUM_BEHAVIORS  # 16
        self.merge = nn.Linear(merged, NUM_BEHAVIORS, rng=rng)

    def forward(self, current: nn.Tensor, future: nn.Tensor,
                accels: nn.Tensor) -> nn.Tensor:
        h = self.current_branch(current)                         # (B, 7)
        f = self.future_branch(future)                           # (B, 6)
        x = self.accel_reduce(self.accel_lift(accels / constants.A_MAX).relu()).relu()
        merged = nn.concat([h, f, x], axis=1)                    # (B, 16)
        return self.merge(merged)                                # (B, 3)


class VanillaXNetwork(nn.Module):
    """Single-branch P-DQN policy: flatten everything, shared MLP."""

    def __init__(self, hidden_dim: int = 64,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = resolve_rng(rng)
        self.net = nn.MLP([_FLAT_STATE, hidden_dim, hidden_dim, NUM_BEHAVIORS], rng=rng)

    def forward(self, current: nn.Tensor, future: nn.Tensor) -> nn.Tensor:
        flat = _flatten_state(current, future)
        return self.net(flat).tanh() * constants.A_MAX


class VanillaQNetwork(nn.Module):
    """Single-branch P-DQN value net: state and accels share one MLP."""

    def __init__(self, hidden_dim: int = 64,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = resolve_rng(rng)
        self.net = nn.MLP([_FLAT_STATE + NUM_BEHAVIORS, hidden_dim, hidden_dim,
                           NUM_BEHAVIORS], rng=rng)

    def forward(self, current: nn.Tensor, future: nn.Tensor,
                accels: nn.Tensor) -> nn.Tensor:
        flat = _flatten_state(current, future)
        # Wrong weight sharing by design: raw accelerations concatenated
        # straight onto state features of a different scale.
        return self.net(nn.concat([flat, accels / constants.A_MAX], axis=1))


def _flatten_state(current: nn.Tensor, future: nn.Tensor) -> nn.Tensor:
    batch = current.shape[0]
    return nn.concat([
        current.reshape(batch, CURRENT_SHAPE[0] * CURRENT_SHAPE[1]),
        future.reshape(batch, FUTURE_SHAPE[0] * FUTURE_SHAPE[1]),
    ], axis=1)

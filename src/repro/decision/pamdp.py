"""Parameterized Action MDP formulation (paper Section IV-A).

Defines the augmented state (Eqs. 15-16), the parameterized action
(Eq. 17) and the lane-change behavior encoding.  The state transition
(Eq. 18) is realized by the simulation engine; the reward lives in
:mod:`repro.decision.reward`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from ..perception.graph import OUTPUT_SCALE
from ..perception.module import PerceptionFrame
from ..sim import constants

__all__ = ["LaneBehavior", "ParameterizedAction", "AugmentedState",
           "build_augmented_state", "augmented_state_from_graph",
           "CURRENT_SHAPE", "FUTURE_SHAPE"]

#: Shape of the current-state half h^t: ego + six targets, 4 features each.
CURRENT_SHAPE = (7, 4)

#: Shape of the future-state half f^{t+1}: six targets, 4 features each.
FUTURE_SHAPE = (6, 4)


class LaneBehavior(IntEnum):
    """Discrete lateral behaviors, ordered as the paper's x_out (Eq. 25)."""

    LEFT = 0    # ll: change lane to left  (lane delta -1)
    RIGHT = 1   # lr: change lane to right (lane delta +1)
    KEEP = 2    # lk: lane keep            (lane delta 0)

    @property
    def lane_delta(self) -> int:
        return {LaneBehavior.LEFT: -1, LaneBehavior.RIGHT: 1, LaneBehavior.KEEP: 0}[self]

    @staticmethod
    def from_delta(delta: int) -> "LaneBehavior":
        return {-1: LaneBehavior.LEFT, 1: LaneBehavior.RIGHT, 0: LaneBehavior.KEEP}[delta]


@dataclass(frozen=True)
class ParameterizedAction:
    """Eq. 17: a discrete behavior paired with a continuous acceleration."""

    behavior: LaneBehavior
    accel: float

    def __post_init__(self) -> None:
        if not -constants.A_MAX <= self.accel <= constants.A_MAX:
            raise ValueError(f"acceleration {self.accel} outside [-a', a']")

    @property
    def lane_delta(self) -> int:
        return self.behavior.lane_delta


@dataclass
class AugmentedState:
    """Eq. 15-16: current states plus predicted one-step future states.

    Both halves use the perception feature scaling so network inputs are
    O(1).  ``current[0]`` is the ego reference row (Eq. 15 h_A); rows
    1..6 are the targets' relative states; ``future`` rows carry the
    predicted relative states with the phantom indicator appended.
    """

    current: np.ndarray   # (7, 4)
    future: np.ndarray    # (6, 4)
    target_mask: np.ndarray  # (6,) 1 = real observed target

    def __post_init__(self) -> None:
        if self.current.shape != CURRENT_SHAPE:
            raise ValueError(f"current half must be {CURRENT_SHAPE}, got {self.current.shape}")
        if self.future.shape != FUTURE_SHAPE:
            raise ValueError(f"future half must be {FUTURE_SHAPE}, got {self.future.shape}")

    def flat(self) -> np.ndarray:
        """Single flat vector (52,) for single-branch comparators."""
        return np.concatenate([self.current.reshape(-1), self.future.reshape(-1)])


def build_augmented_state(frame: PerceptionFrame) -> AugmentedState:
    """Assemble s_+^t from a perception frame.

    The current half reuses the graph's last history step (already the
    Eq. 7/8 vectors at time t); the future half combines the predictor's
    physical-unit outputs (rescaled to feature space) with each target's
    phantom indicator.
    """
    return augmented_state_from_graph(frame.graph, frame.prediction)


def augmented_state_from_graph(graph, prediction: np.ndarray) -> AugmentedState:
    """Assemble s_+^t from a graph plus a (6, 3) physical-unit prediction.

    Decoupled from :class:`PerceptionFrame` so batched consumers -- the
    inference server pairs one stacked LST-GAT forward with per-request
    graph slices -- can build states without materializing frames.
    Bit-identical to the :func:`build_augmented_state` path.
    """
    current = np.zeros(CURRENT_SHAPE)
    current[0] = graph.ego_features[-1, 0]
    current[1:] = graph.target_features[-1]

    indicators = graph.target_features[-1, :, 3:4]
    future = np.concatenate([prediction / OUTPUT_SCALE, indicators], axis=1)
    return AugmentedState(current=current, future=future,
                          target_mask=graph.target_mask.copy())

"""Fleet driving environment: M HEAD agents sharing one engine.

Promotes the single-AV assumption out of :class:`DrivingEnv`: M
autonomous vehicles drive one struct-of-arrays world, and all per-step
fleet work that used to be M sequential single-AV paths becomes single
stacked calls:

* **perception** -- each AV keeps its own tracker/phantom state
  (:class:`~repro.perception.module.EnhancedPerception`), but the M
  LST-GAT forwards collapse into one
  :meth:`~repro.perception.predictor.StatePredictor.predict_many` call
  over the concatenated graphs;
* **decision** -- :class:`FleetController` turns the M augmented states
  into one :meth:`~repro.decision.agents.PDQNAgent.act_batch` forward;
* **simulation** -- the engine advances everyone in one vectorized
  step, with AV-vs-AV lane-change conflicts arbitrated in canonical
  sorted-vid order (see ``SimulationEngine._resolve_lane_conflicts``).

The M=1 contract: a one-AV fleet episode is **bit-identical** to the
classic :class:`DrivingEnv` rollout for the same seed and action
sequence -- same engine world, same RNG stream, same rewards, records
and augmented states.  ``tests/decision/test_fleet_equivalence.py``
replays a pre-refactor golden trace through both paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..perception.graph import build_graphs
from ..perception.module import EnhancedPerception, PerceptionFrame
from ..perception.sensor import WorldArrays
from ..sim import constants
from ..sim.engine import SimulationEngine
from ..sim.road import Road
from ..sim.spawn import build_fleet_episode, fleet_vids
from ..sim.vehicle import Vehicle
from .agents import PamdpAgent
from .environment import (EpisodeResult, StepRecord, build_step_outcome,
                          build_step_record, population_arrays)
from .pamdp import AugmentedState, ParameterizedAction, augmented_state_from_graph
from .reward import HybridReward, RewardBreakdown

__all__ = ["FleetStepRecord", "FleetEpisodeResult", "FleetEnv",
           "FleetController"]


@dataclass(frozen=True)
class FleetStepRecord:
    """One AV's step record plus the fleet-level disturbance context.

    ``rear_is_av`` classifies the rear vehicle whose slowdown the
    impact metrics attribute to this AV: AV-on-AV disturbance when the
    follower is a fleet member, AV-on-conventional otherwise.
    """

    vid: str
    record: StepRecord
    rear_id: str | None
    rear_is_av: bool
    collided_with_av: bool


@dataclass
class FleetEpisodeResult:
    """Everything recorded over one fleet episode."""

    av_ids: list[str]
    results: dict[str, EpisodeResult]
    fleet_records: list[FleetStepRecord] = field(default_factory=list)
    steps: int = 0

    @property
    def collisions(self) -> int:
        return sum(1 for result in self.results.values() if result.collided)

    @property
    def av_av_collisions(self) -> int:
        seen = {record.vid for record in self.fleet_records
                if record.collided_with_av}
        return len(seen)

    @property
    def finished(self) -> int:
        return sum(1 for result in self.results.values() if result.finished)

    @property
    def total_reward(self) -> float:
        return sum(result.total_reward for result in self.results.values())


class FleetEnv:
    """Gym-style environment driving an M-vehicle autonomous fleet.

    Parameters
    ----------
    perceptions:
        One :class:`EnhancedPerception` per AV (index 0 serves ``"av"``).
        All instances should share the same predictor so fleet
        perception runs as one stacked forward; per-AV trackers stay
        independent.
    reward / road / density_per_km / max_steps / reference:
        As in :class:`DrivingEnv`; the reward is shared by every AV.
    """

    def __init__(self, perceptions: list[EnhancedPerception],
                 reward: HybridReward | None = None,
                 road: Road | None = None,
                 density_per_km: float = constants.DENSITY_PER_KM,
                 max_steps: int = 2000,
                 reference: bool = False) -> None:
        if not perceptions:
            raise ValueError("a fleet needs at least one perception module")
        self.perceptions = list(perceptions)
        self.num_avs = len(self.perceptions)
        self.av_ids = fleet_vids(self.num_avs)
        self._perception = dict(zip(self.av_ids, self.perceptions))
        self.predictor = self.perceptions[0].predictor
        self.reward = reward or HybridReward()
        self.road = road or Road()
        self.density_per_km = density_per_km
        self.max_steps = max_steps
        self.reference = reference
        self.engine: SimulationEngine | None = None
        self.results: dict[str, EpisodeResult] = {}
        self.fleet_records: list[FleetStepRecord] = []
        self._frames: dict[str, PerceptionFrame] = {}
        self._done: dict[str, bool] = {}
        self._steps = 0

    # ------------------------------------------------------------------
    # episode control
    # ------------------------------------------------------------------
    def reset(self, seed: int) -> dict[str, AugmentedState]:
        """Start a fresh seeded fleet episode; initial state per AV."""
        self.engine, _ = build_fleet_episode(
            seed, road=self.road, density_per_km=self.density_per_km,
            reference=self.reference, num_avs=self.num_avs)
        for perception in self.perceptions:
            perception.reset()
        self.results = {vid: EpisodeResult() for vid in self.av_ids}
        self.fleet_records = []
        self._frames = {}
        self._done = {vid: False for vid in self.av_ids}
        self._steps = 0
        return self._perceive_active()

    def av(self, vid: str = "av") -> Vehicle | None:
        if self.engine is None:
            return None
        return self.engine.vehicles.get(vid)

    def frame(self, vid: str = "av") -> PerceptionFrame | None:
        """The most recent perception frame of one AV."""
        return self._frames.get(vid)

    def active_ids(self) -> list[str]:
        """Fleet members still driving, in canonical order."""
        return [vid for vid in self.av_ids if not self._done[vid]]

    def done(self) -> bool:
        return (self._steps >= self.max_steps
                or all(self._done.get(vid, True) for vid in self.av_ids))

    def result(self) -> FleetEpisodeResult:
        return FleetEpisodeResult(av_ids=list(self.av_ids),
                                  results=self.results,
                                  fleet_records=self.fleet_records,
                                  steps=self._steps)

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self, actions: dict[str, ParameterizedAction]
             ) -> tuple[dict[str, AugmentedState], dict[str, RewardBreakdown],
                        bool, dict[str, StepRecord]]:
        """Apply every active AV's action and advance the world by 0.5 s.

        ``actions`` must cover exactly the :meth:`active_ids`.  Returns
        per-AV next states (empty when the fleet is done), reward
        breakdowns, the fleet-level done flag, and the per-AV records.
        """
        if self.engine is None:
            raise RuntimeError("call reset() before step()")
        if self.done():
            raise RuntimeError("fleet episode is over; call reset()")
        engine = self.engine
        active = self.active_ids()
        missing = [vid for vid in active if vid not in actions]
        if missing:
            raise ValueError(f"missing actions for active AVs: {missing}")
        av_set = set(self.av_ids)

        # Phase 1 (canonical order): pre-step context + maneuver commands.
        pre: dict[str, tuple] = {}
        for vid in active:
            action = actions[vid]
            vehicle = engine.get(vid)
            rear_before = engine.follower_of(vehicle)
            rear_id = rear_before.vid if rear_before is not None else None
            rear_v_before = rear_before.v if rear_before is not None else None
            rear_is_av = rear_id in av_set
            pre[vid] = (action, vehicle.accel, rear_id, rear_v_before, rear_is_av)
            engine.set_maneuver(vid, action.lane_delta, action.accel)

        events = engine.step()
        self._steps += 1

        # Phase 2: outcomes for every AV against the intact post-step
        # world -- crashed AVs are only discarded afterwards so no AV's
        # reward depends on its position in the canonical order.
        breakdowns: dict[str, RewardBreakdown] = {}
        records: dict[str, StepRecord] = {}
        crashed: list[str] = []
        population = population_arrays(engine)
        for vid in active:
            action, accel_prev, rear_id, rear_v_before, rear_is_av = pre[vid]
            collided = any(event.vehicle_id == vid or event.other_id == vid
                           for event in events)
            finished = vid not in engine.vehicles and not collided
            av_after = engine.vehicles.get(vid) or engine.retired.get(vid)
            outcome = build_step_outcome(
                engine, av_after, collided, action.accel, accel_prev,
                rear_id, rear_v_before,
                self._perception[vid].sensor.detection_range)
            breakdown = self.reward.compute(outcome)
            record = build_step_record(engine, av_after, outcome, breakdown,
                                       collided, self._steps,
                                       self.reward.velocity_threshold,
                                       population=population)
            result = self.results[vid]
            result.records.append(record)
            result.steps = self._steps
            result.collided = collided
            result.finished = finished
            self._done[vid] = (collided or finished
                               or self._steps >= self.max_steps)
            collided_with_av = any(
                (event.vehicle_id == vid and event.other_id in av_set)
                or (event.other_id == vid and event.vehicle_id in av_set)
                for event in events)
            self.fleet_records.append(FleetStepRecord(
                vid=vid, record=record, rear_id=rear_id,
                rear_is_av=rear_is_av, collided_with_av=collided_with_av))
            breakdowns[vid] = breakdown
            records[vid] = record
            if collided and vid in engine.vehicles:
                crashed.append(vid)

        # Phase 3: crashed AVs leave the world (not "retired" -- they
        # did not finish); survivors keep driving around the wreck site.
        for vid in crashed:
            engine.discard_vehicle(vid)

        done = self.done()
        next_states: dict[str, AugmentedState] = {}
        if not done:
            next_states = self._perceive_active()
        return next_states, breakdowns, done, records

    # ------------------------------------------------------------------
    # batched perception
    # ------------------------------------------------------------------
    def _perceive_active(self) -> dict[str, AugmentedState]:
        """One perception cycle for every active AV, one stacked forward.

        Per-AV sensing/graph assembly runs in canonical order (each AV
        owns its tracker state); the M predictor forwards collapse into
        a single ``predict_many`` call over the concatenated graphs --
        bit-identical per AV to the sequential ``perceive`` path.
        """
        engine = self.engine
        world = {vid: vehicle.state for vid, vehicle in engine.vehicles.items()}
        arrays = WorldArrays(world, engine.road)
        active = self.active_ids()
        scenes = []
        for vid in active:
            scenes.append(self._perception[vid].observe_scene(
                vid, engine.get(vid).state, world, engine.road,
                world_arrays=arrays))
        graphs = build_graphs(scenes, engine.road)
        if self.predictor is not None:
            predictions = self.predictor.predict_many(graphs)
        else:
            predictions = [np.zeros((6, 3)) for _ in graphs]
        states: dict[str, AugmentedState] = {}
        for vid, scene, graph, prediction in zip(active, scenes, graphs,
                                                 predictions):
            self._frames[vid] = PerceptionFrame(scene=scene, graph=graph,
                                                prediction=prediction)
            states[vid] = augmented_state_from_graph(graph, prediction)
        return states


class FleetController:
    """Batched fleet policy: one ``act_batch`` forward for all M AVs.

    Wraps a trained :class:`~repro.decision.agents.PamdpAgent`; per-AV
    greedy actions come out of a single stacked x-net + Q-net forward,
    bit-identical per state to the scalar ``act(state, explore=False)``.
    """

    def __init__(self, agent: PamdpAgent, name: str = "HEAD-fleet") -> None:
        self.agent = agent
        self.name = name

    def select_actions(self, states: dict[str, AugmentedState]
                       ) -> dict[str, ParameterizedAction]:
        if not states:
            return {}
        vids = list(states)
        actions = self.agent.act_batch([states[vid] for vid in vids],
                                       explore=False)
        return dict(zip(vids, actions))

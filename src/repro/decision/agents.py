"""Deep RL agents solving the PAMDP (paper Sections IV-B, V-D).

Four agents share the replay/target-network machinery:

* :class:`PDQNAgent` -- the P-DQN optimization paradigm (Eqs. 19-23);
  instantiated with branched networks it *is* the paper's **BP-DQN**,
  with single-branch networks it is the vanilla **P-DQN** comparator.
* :class:`PQPAgent` -- P-QP (Masson et al.): the same two networks but
  trained in *alternating* phases, so the action and action-parameter
  policies never share an update (the shortcoming the paper cites).
* :class:`PDDPGAgent` -- P-DDPG (Hausknecht & Stone): the parameterized
  action space collapsed into one continuous vector optimized by DDPG.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..sim import constants
from ..seeding import resolve_rng
from .networks import (BranchedQNetwork, BranchedXNetwork, NUM_BEHAVIORS,
                       VanillaQNetwork, VanillaXNetwork)
from .pamdp import AugmentedState, LaneBehavior, ParameterizedAction
from .replay import Batch, ReplayBuffer, Transition

__all__ = ["EpsilonSchedule", "PamdpAgent", "PDQNAgent", "PQPAgent", "PDDPGAgent"]


@dataclass
class EpsilonSchedule:
    """Linear epsilon decay for discrete exploration."""

    start: float = 1.0
    end: float = 0.05
    decay_steps: int = 5_000

    def value(self, step: int) -> float:
        if step >= self.decay_steps:
            return self.end
        fraction = step / self.decay_steps
        return self.start + fraction * (self.end - self.start)


class PamdpAgent:
    """Base class: replay, exploration bookkeeping, action plumbing."""

    def __init__(self, gamma: float = 0.9, batch_size: int = 64,
                 buffer_capacity: int = 20_000, tau: float = 0.01,
                 warmup: int = 200, noise_scale: float = 1.0,
                 epsilon: EpsilonSchedule | None = None,
                 rng: np.random.Generator | None = None) -> None:
        self.gamma = gamma
        self.batch_size = batch_size
        self.tau = tau
        self.warmup = warmup
        self.noise_scale = noise_scale
        self.epsilon = epsilon or EpsilonSchedule()
        self.rng = resolve_rng(rng)
        self.buffer = ReplayBuffer(buffer_capacity, rng=self.rng)
        self.total_steps = 0

    # -- interface ------------------------------------------------------
    def act(self, state: AugmentedState, explore: bool = True) -> ParameterizedAction:
        raise NotImplementedError

    def observe(self, transition: Transition) -> None:
        """Store a transition and advance the exploration clock."""
        self.buffer.push(transition)
        self.total_steps += 1

    def learn(self) -> dict[str, float] | None:
        """One optimization step; returns losses or None while warming up."""
        if len(self.buffer) < max(self.warmup, self.batch_size):
            return None
        return self._update(self.buffer.sample(self.batch_size))

    def _update(self, batch: Batch) -> dict[str, float]:
        raise NotImplementedError

    # -- helpers --------------------------------------------------------
    def _noise(self) -> float:
        decay = max(0.1, 1.0 - self.total_steps / max(self.epsilon.decay_steps, 1))
        return float(self.rng.normal(0.0, self.noise_scale * decay))

    def _explore_discrete(self) -> bool:
        return self.rng.random() < self.epsilon.value(self.total_steps)

    #: Exploration prior over [ll, lr, lk]: random lane changes at every
    #: 0.5 s step are almost always fatal in dense traffic, so discrete
    #: exploration is biased toward lane-keeping (a standard practice in
    #: autonomous-driving RL); the argmax policy is unaffected.
    EXPLORE_BEHAVIOR_PROBS = (0.1, 0.1, 0.8)

    def _random_behavior(self) -> int:
        return int(self.rng.choice(NUM_BEHAVIORS, p=self.EXPLORE_BEHAVIOR_PROBS))


class PDQNAgent(PamdpAgent):
    """P-DQN optimization paradigm (Eqs. 19-23); BP-DQN when branched.

    Parameters
    ----------
    branched:
        True builds the paper's BP-DQN networks, False the vanilla
        single-branch P-DQN comparator.
    """

    def __init__(self, branched: bool = True, hidden_dim: int = 64,
                 lr_q: float = 1e-3, lr_x: float = 1e-4, **kwargs) -> None:
        super().__init__(**kwargs)
        rng = self.rng
        x_cls = BranchedXNetwork if branched else VanillaXNetwork
        q_cls = BranchedQNetwork if branched else VanillaQNetwork
        self.branched = branched
        self.x_net = x_cls(hidden_dim, rng=rng)
        self.q_net = q_cls(hidden_dim, rng=rng)
        self.x_target = x_cls(hidden_dim, rng=rng)
        self.q_target = q_cls(hidden_dim, rng=rng)
        self.x_target.copy_from(self.x_net)
        self.q_target.copy_from(self.q_net)
        self.opt_q = nn.Adam(self.q_net.parameters(), lr=lr_q)
        self.opt_x = nn.Adam(self.x_net.parameters(), lr=lr_x)

    # -- acting ---------------------------------------------------------
    def action_values(self, state: AugmentedState) -> tuple[np.ndarray, np.ndarray]:
        """Return (accels, q_values), each (3,), without exploration."""
        with nn.no_grad():
            current = nn.Tensor(state.current[None])
            future = nn.Tensor(state.future[None])
            accels = self.x_net(current, future)
            q_values = self.q_net(current, future, accels)
        return accels.numpy()[0], q_values.numpy()[0]

    def act(self, state: AugmentedState, explore: bool = True) -> ParameterizedAction:
        accels, q_values = self.action_values(state)
        if explore and self._explore_discrete():
            behavior = self._random_behavior()
        else:
            behavior = int(np.argmax(q_values))
        accel = float(accels[behavior])
        if explore:
            accel += self._noise()
        accel = float(np.clip(accel, -constants.A_MAX, constants.A_MAX))
        self._last_accels = accels.copy()
        self._last_accels[behavior] = accel
        return ParameterizedAction(LaneBehavior(behavior), accel)

    def act_batch(self, states: list[AugmentedState],
                  explore: bool = False) -> list[ParameterizedAction]:
        """Greedy actions for many states in one network forward.

        Batching exploits the stacked matmuls of ``repro.nn``: K parallel
        episodes cost one forward of batch K instead of K forwards of
        batch 1.  Exploration draws are per-state sequential RNG, so
        ``explore=True`` falls back to the scalar :meth:`act` loop
        (which preserves the draw order) -- this helper targets greedy
        evaluation.  Does not record ``last_aux``.
        """
        if explore:
            return [self.act(state, explore=True) for state in states]
        if not states:
            return []
        with nn.no_grad():
            current = nn.Tensor(np.stack([state.current for state in states]))
            future = nn.Tensor(np.stack([state.future for state in states]))
            accels = self.x_net(current, future)
            q_values = self.q_net(current, future, accels)
        accel_rows = accels.numpy()
        behaviors = np.argmax(q_values.numpy(), axis=1)
        return [
            ParameterizedAction(
                LaneBehavior(int(behavior)),
                float(np.clip(float(row[behavior]),
                              -constants.A_MAX, constants.A_MAX)))
            for row, behavior in zip(accel_rows, behaviors)
        ]

    def last_aux(self) -> np.ndarray:
        """The full x_out executed at the last act() (for the replay aux)."""
        return getattr(self, "_last_accels", np.zeros(NUM_BEHAVIORS))

    # -- learning -------------------------------------------------------
    def _td_targets(self, batch: Batch) -> np.ndarray:
        """Bellman targets (Eq. 22) with the Double-DQN decoupling.

        The behavior that maximizes the next-state value is selected by
        the *online* Q network and evaluated by the *target* network --
        the standard correction for the max-operator's overestimation
        bias, which in this domain systematically over-values risky
        tailgating/lane-change actions.
        """
        with nn.no_grad():
            next_current = nn.Tensor(batch.next_current)
            next_future = nn.Tensor(batch.next_future)
            next_accels = self.x_target(next_current, next_future)
            online_q = self.q_net(next_current, next_future, next_accels).numpy()
            target_q = self.q_target(next_current, next_future, next_accels).numpy()
        chosen = online_q.argmax(axis=1)
        best = target_q[np.arange(len(chosen)), chosen]
        return batch.reward + self.gamma * (1.0 - batch.done) * best

    def _q_loss(self, batch: Batch) -> nn.Tensor:
        targets = self._td_targets(batch)
        current = nn.Tensor(batch.current)
        future = nn.Tensor(batch.future)
        executed = nn.Tensor(batch.aux[:, :NUM_BEHAVIORS])
        q_all = self.q_net(current, future, executed)            # (B, 3)
        one_hot = np.eye(NUM_BEHAVIORS)[batch.behavior]
        q_taken = (q_all * nn.Tensor(one_hot)).sum(axis=1)
        diff = q_taken - nn.Tensor(targets)
        return (diff * diff).mean() * 0.5                        # Eq. 22

    def _x_loss(self, batch: Batch) -> nn.Tensor:
        current = nn.Tensor(batch.current)
        future = nn.Tensor(batch.future)
        accels = self.x_net(current, future)
        q_all = self.q_net(current, future, accels)
        return -q_all.sum(axis=1).mean()                         # Eq. 23

    def _update(self, batch: Batch) -> dict[str, float]:
        self.opt_q.zero_grad()
        self.opt_x.zero_grad()
        q_loss = self._q_loss(batch)
        q_loss.backward()
        nn.clip_grad_norm(self.q_net.parameters(), 10.0)
        self.opt_q.step()

        self.opt_q.zero_grad()
        self.opt_x.zero_grad()
        x_loss = self._x_loss(batch)
        x_loss.backward()
        nn.clip_grad_norm(self.x_net.parameters(), 10.0)
        self.opt_x.step()

        self.q_target.soft_update_from(self.q_net, self.tau)
        self.x_target.soft_update_from(self.x_net, self.tau)
        return {"q_loss": q_loss.item(), "x_loss": x_loss.item()}


class PQPAgent(PDQNAgent):
    """P-QP: alternate between Q-learning and parameter optimization.

    Identical networks to vanilla P-DQN, but updates run in long
    alternating phases so neither policy benefits from the other's
    fresh gradients -- the information-sharing gap the paper points out.
    """

    def __init__(self, phase_length: int = 200, **kwargs) -> None:
        kwargs.setdefault("branched", False)
        super().__init__(**kwargs)
        self.phase_length = phase_length
        self._updates = 0

    def _update(self, batch: Batch) -> dict[str, float]:
        phase_q = (self._updates // self.phase_length) % 2 == 0
        self._updates += 1
        losses = {"q_loss": 0.0, "x_loss": 0.0}
        if phase_q:
            self.opt_q.zero_grad()
            self.opt_x.zero_grad()
            q_loss = self._q_loss(batch)
            q_loss.backward()
            nn.clip_grad_norm(self.q_net.parameters(), 10.0)
            self.opt_q.step()
            self.q_target.soft_update_from(self.q_net, self.tau)
            losses["q_loss"] = q_loss.item()
        else:
            self.opt_q.zero_grad()
            self.opt_x.zero_grad()
            x_loss = self._x_loss(batch)
            x_loss.backward()
            nn.clip_grad_norm(self.x_net.parameters(), 10.0)
            self.opt_x.step()
            self.x_target.soft_update_from(self.x_net, self.tau)
            losses["x_loss"] = x_loss.item()
        return losses


class _DDPGActor(nn.Module):
    """Actor emitting the collapsed 6-dim action (3 logits + 3 accels)."""

    def __init__(self, hidden_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        from .networks import _FLAT_STATE, _flatten_state  # shared helpers
        self._flatten = _flatten_state
        self.net = nn.MLP([_FLAT_STATE, hidden_dim, hidden_dim, 2 * NUM_BEHAVIORS],
                          rng=rng)

    def forward(self, current: nn.Tensor, future: nn.Tensor) -> nn.Tensor:
        return self.net(self._flatten(current, future)).tanh()


class _DDPGCritic(nn.Module):
    """Critic scoring (state, collapsed action) -> scalar Q."""

    def __init__(self, hidden_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        from .networks import _FLAT_STATE, _flatten_state
        self._flatten = _flatten_state
        self.net = nn.MLP([_FLAT_STATE + 2 * NUM_BEHAVIORS, hidden_dim, hidden_dim, 1],
                          rng=rng)

    def forward(self, current: nn.Tensor, future: nn.Tensor,
                action: nn.Tensor) -> nn.Tensor:
        flat = self._flatten(current, future)
        return self.net(nn.concat([flat, action], axis=1))


class PDDPGAgent(PamdpAgent):
    """P-DDPG: DDPG on the collapsed continuous action space.

    The actor emits ``[w_ll, w_lr, w_lk, a_ll, a_lr, a_lk]`` in
    [-1, 1]; the executed behavior is the argmax of the first three, and
    the executed acceleration the matching entry of the last three
    scaled by a'.  The critic never learns which parameter pairs with
    which behavior -- the structural flaw the paper cites.
    """

    def __init__(self, hidden_dim: int = 64, lr_actor: float = 1e-4,
                 lr_critic: float = 1e-3, **kwargs) -> None:
        super().__init__(**kwargs)
        rng = self.rng
        self.actor = _DDPGActor(hidden_dim, rng)
        self.critic = _DDPGCritic(hidden_dim, rng)
        self.actor_target = _DDPGActor(hidden_dim, rng)
        self.critic_target = _DDPGCritic(hidden_dim, rng)
        self.actor_target.copy_from(self.actor)
        self.critic_target.copy_from(self.critic)
        self.opt_actor = nn.Adam(self.actor.parameters(), lr=lr_actor)
        self.opt_critic = nn.Adam(self.critic.parameters(), lr=lr_critic)

    def act(self, state: AugmentedState, explore: bool = True) -> ParameterizedAction:
        with nn.no_grad():
            raw = self.actor(nn.Tensor(state.current[None]),
                             nn.Tensor(state.future[None])).numpy()[0]
        if explore:
            raw = raw + self.rng.normal(0.0, 0.3 * self.noise_scale, size=raw.shape)
            raw = np.clip(raw, -1.0, 1.0)
        if explore and self._explore_discrete():
            behavior = self._random_behavior()
        else:
            behavior = int(np.argmax(raw[:NUM_BEHAVIORS]))
        accel = float(raw[NUM_BEHAVIORS + behavior] * constants.A_MAX)
        self._last_action = raw
        return ParameterizedAction(LaneBehavior(behavior), accel)

    def last_aux(self) -> np.ndarray:
        return getattr(self, "_last_action", np.zeros(2 * NUM_BEHAVIORS))

    def _update(self, batch: Batch) -> dict[str, float]:
        current = nn.Tensor(batch.current)
        future = nn.Tensor(batch.future)
        action = nn.Tensor(batch.aux)

        with nn.no_grad():
            next_current = nn.Tensor(batch.next_current)
            next_future = nn.Tensor(batch.next_future)
            next_action = self.actor_target(next_current, next_future)
            next_q = self.critic_target(next_current, next_future, next_action).numpy()[:, 0]
        targets = batch.reward + self.gamma * (1.0 - batch.done) * next_q

        self.opt_critic.zero_grad()
        self.opt_actor.zero_grad()
        q_values = self.critic(current, future, action)
        diff = q_values.reshape(len(batch)) - nn.Tensor(targets)
        critic_loss = (diff * diff).mean() * 0.5
        critic_loss.backward()
        nn.clip_grad_norm(self.critic.parameters(), 10.0)
        self.opt_critic.step()

        self.opt_critic.zero_grad()
        self.opt_actor.zero_grad()
        actor_action = self.actor(current, future)
        actor_loss = -self.critic(current, future, actor_action).mean()
        actor_loss.backward()
        nn.clip_grad_norm(self.actor.parameters(), 10.0)
        self.opt_actor.step()

        self.critic_target.soft_update_from(self.critic, self.tau)
        self.actor_target.soft_update_from(self.actor, self.tau)
        return {"q_loss": critic_loss.item(), "x_loss": actor_loss.item()}

"""Decision baselines (paper Section V-A): IDM-LC, ACC-LC, DRL-SC, TP-BTS.

All controllers implement :class:`Controller` -- given the environment
(for its sensor-limited perception frame) and the augmented state, emit
one parameterized action.  RL agents are adapted via
:class:`AgentController`.

* **IDM-LC / ACC-LC** -- rule-based longitudinal control (IDM / ACC)
  combined with a MOBIL lane-change evaluation on the perceived targets.
* **DRL-SC** -- a DQN over 9 discretized maneuvers with a safety check
  that overrides unsafe picks (Nageshrao et al. 2019).
* **TP-BTS** -- trajectory-prediction + behavior-tree search: roll the
  perceived scene forward under each discrete maneuver sequence and
  pick the best scoring branch (Liu et al. 2021).
"""

from __future__ import annotations

import numpy as np

from ..perception.phantom import PerceivedScene, TrackKind
from ..sim import constants
from ..sim.carfollowing import ACC, CarFollowingModel, IDM, free_road_gap
from ..sim.vehicle import DriverProfile
from .pamdp import AugmentedState, LaneBehavior, ParameterizedAction

__all__ = ["Controller", "AgentController", "RuleBasedPolicy", "IDMLCPolicy",
           "ACCLCPolicy", "TPBTSPolicy", "DISCRETE_ACCELS"]

#: Acceleration levels used by the discrete baselines (DRL-SC, TP-BTS).
DISCRETE_ACCELS = (-constants.A_MAX, 0.0, constants.A_MAX)


class Controller:
    """Anything that can drive the AV one step at a time."""

    name = "controller"

    #: Whether greedy decisions depend only on ``(env, state)`` -- no
    #: internal per-episode state.  Stateless controllers can be shared
    #: across the slots of a batched evaluation run.
    stateless = False

    def begin_episode(self) -> None:
        """Hook called at episode start (reset internal state)."""

    def select_action(self, env, state: AugmentedState) -> ParameterizedAction:
        raise NotImplementedError

    def select_actions(self, envs, states) -> list[ParameterizedAction]:
        """Batched :meth:`select_action` over parallel episodes.

        The default loops; controllers backed by batchable models (e.g.
        a Q-network) override this to answer the whole front at once.
        """
        return [self.select_action(env, state)
                for env, state in zip(envs, states)]


class AgentController(Controller):
    """Adapter exposing a trained RL agent as a greedy controller."""

    stateless = True

    def __init__(self, agent, name: str = "agent") -> None:
        self.agent = agent
        self.name = name

    def select_action(self, env, state: AugmentedState) -> ParameterizedAction:
        return self.agent.act(state, explore=False)

    def select_actions(self, envs, states) -> list[ParameterizedAction]:
        act_batch = getattr(self.agent, "act_batch", None)
        if act_batch is None:
            return super().select_actions(envs, states)
        return act_batch(states, explore=False)


class RuleBasedPolicy(Controller):
    """IDM-LC / ACC-LC: car-following + MOBIL on the perceived targets.

    Decisions use only the sensor-limited perception frame, like every
    other method: the front target's gap and speed feed the longitudinal
    model, and adjacent-lane targets feed a MOBIL-style incentive and
    safety test.
    """

    LANE_CHANGE_COOLDOWN = 4

    def __init__(self, model: CarFollowingModel, name: str,
                 politeness: float = 0.3, change_threshold: float = 0.25) -> None:
        self.model = model
        self.name = name
        self.profile = DriverProfile(desired_speed=constants.V_MAX, imperfection=0.0,
                                     politeness=politeness,
                                     lane_change_threshold=change_threshold)
        self._cooldown = 0

    def begin_episode(self) -> None:
        self._cooldown = 0

    # -- helpers ---------------------------------------------------------
    @staticmethod
    def _gap_and_speed(scene: PerceivedScene, area: int,
                       ego_lon: float) -> tuple[float, float]:
        """Bumper gap and absolute speed of the target in ``area``.

        Phantoms constructed at the detection boundary act like a
        vehicle at distance R; inherent phantoms (off-road) are reported
        by the caller via lane validity, not here.
        """
        target = scene.targets[area]
        if target.kind is TrackKind.ZERO:
            return free_road_gap(), 0.0
        gap = abs(target.current.lon - ego_lon) - constants.VEHICLE_LENGTH
        return max(gap, 0.0), target.current.v

    def _accel_for(self, scene: PerceivedScene, leader_area: int,
                   ego_v: float, ego_lon: float) -> float:
        gap, leader_v = self._gap_and_speed(scene, leader_area, ego_lon)
        return self.model.acceleration(ego_v, leader_v, gap, self.profile)

    def select_action(self, env, state: AugmentedState) -> ParameterizedAction:
        frame = env.frame
        scene = frame.scene
        av = env.av
        ego_v, ego_lon, ego_lane = av.v, av.lon, av.lane

        accel_keep = self._accel_for(scene, 2, ego_v, ego_lon)
        behavior = LaneBehavior.KEEP
        if self._cooldown > 0:
            self._cooldown -= 1
        else:
            best_gain = self.profile.lane_change_threshold
            for area_leader, area_follower, candidate in (
                    (1, 4, LaneBehavior.LEFT), (3, 6, LaneBehavior.RIGHT)):
                target_lane = ego_lane + candidate.lane_delta
                if not env.road.is_valid_lane(target_lane):
                    continue
                accel_new = self._accel_for(scene, area_leader, ego_v, ego_lon)
                if not self._side_safe(scene, area_leader, area_follower, ego_v, ego_lon):
                    continue
                gain = accel_new - accel_keep
                if gain > best_gain:
                    best_gain = gain
                    behavior = candidate
                    accel_keep = accel_new
            if behavior is not LaneBehavior.KEEP:
                self._cooldown = self.LANE_CHANGE_COOLDOWN
        accel = float(np.clip(accel_keep, -constants.A_MAX, constants.A_MAX))
        return ParameterizedAction(behavior, accel)

    def _side_safe(self, scene: PerceivedScene, area_leader: int,
                   area_follower: int, ego_v: float, ego_lon: float) -> bool:
        gap_leader, leader_v = self._gap_and_speed(scene, area_leader, ego_lon)
        if gap_leader < self.profile.min_gap + max(ego_v - leader_v, 0.0):
            return False
        follower = scene.targets[area_follower]
        if follower.kind is TrackKind.ZERO:
            return True
        gap_follower = ego_lon - constants.VEHICLE_LENGTH - follower.current.lon
        needed = follower.profile.min_gap if hasattr(follower, "profile") else 2.0
        closing = max(follower.current.v - ego_v, 0.0)
        return gap_follower > needed + closing


class IDMLCPolicy(RuleBasedPolicy):
    """Intelligent driver model + lane change (paper baseline IDM-LC)."""

    def __init__(self) -> None:
        super().__init__(IDM(), name="IDM-LC")


class ACCLCPolicy(RuleBasedPolicy):
    """Adaptive cruise control + lane change (paper baseline ACC-LC)."""

    def __init__(self) -> None:
        super().__init__(ACC(), name="ACC-LC")


class TPBTSPolicy(Controller):
    """Trajectory prediction + behavior-tree search (paper baseline TP-BTS).

    Expands the 9 discrete maneuvers over ``depth`` steps, rolling the
    perceived targets forward with the perception module's one-step
    prediction followed by constant-velocity extrapolation, and scores
    each branch with a safety >> efficiency >> impact behavior-tree
    ordering.  The continuous acceleration is *not* searched -- the
    discretization the paper criticizes.
    """

    name = "TP-BTS"
    stateless = True

    def __init__(self, depth: int = 2, safety_gap: float = 5.0) -> None:
        self.depth = depth
        self.safety_gap = safety_gap

    def select_action(self, env, state: AugmentedState) -> ParameterizedAction:
        frame = env.frame
        av = env.av
        # Fallback when every branch fails the safety gate: brake in lane.
        best_score = -5e8
        best = ParameterizedAction(LaneBehavior.KEEP, -constants.A_MAX)
        for behavior in LaneBehavior:
            target_lane = av.lane + behavior.lane_delta
            if not env.road.is_valid_lane(target_lane):
                continue
            for accel in DISCRETE_ACCELS:
                score = self._rollout_score(env, frame, behavior, accel)
                if score > best_score:
                    best_score = score
                    best = ParameterizedAction(behavior, accel)
        return best

    def _rollout_score(self, env, frame, behavior: LaneBehavior, accel: float) -> float:
        """Score one first-step maneuver with greedy continuation.

        Safety gates run *before* each simulated move (and pass-through
        of a leader during a move is detected), so a maneuver cannot
        score well by jumping past an obstacle within one step.
        """
        av = env.av
        dt = constants.DT
        lane = av.lane + behavior.lane_delta
        lon = float(av.lon)
        velocity = float(av.v)

        # Predicted next states of perceived targets (physical units).
        # A masked target -- or a disabled predictor, whose output is the
        # all-zero vector -- falls back to constant-velocity extrapolation.
        mask = frame.scene.target_mask()
        others = []
        for area, target in sorted(frame.scene.targets.items()):
            if target.kind is TrackKind.ZERO:
                continue
            predicted = frame.prediction[area - 1]
            if mask[area - 1] == 1.0 and np.any(predicted != 0.0):
                d_lat, d_lon, v_rel = predicted
                o_lane = av.lane + int(round(d_lat / env.road.lane_width))
                o_lon = av.lon + d_lon
                o_v = av.v + v_rel
            else:
                current = target.current
                o_lane, o_lon, o_v = current.lat, current.lon + current.v * dt, current.v
            others.append((o_lane, o_lon, o_v))

        score = -0.3 if behavior is not LaneBehavior.KEEP else 0.0
        discount = 1.0
        for step in range(self.depth):
            next_velocity = float(np.clip(velocity + accel * dt,
                                          env.road.v_min, env.road.v_max))
            front = min(((o_lon - constants.VEHICLE_LENGTH - lon, o_v)
                         for o_lane, o_lon, o_v in others
                         if o_lane == lane and o_lon > lon), default=None)
            rear_gap = min((lon - constants.VEHICLE_LENGTH - o_lon
                            for o_lane, o_lon, o_v in others
                            if o_lane == lane and o_lon <= lon), default=free_road_gap())
            if front is not None:
                front_gap, front_v = front
                closing = next_velocity - front_v
                ttc = front_gap / closing if closing > 0.1 else float("inf")
                # Behaviour tree: safety is a hard gate, then stopping margin.
                if front_gap < 1.0 or ttc < 2.0:
                    return -1e9
                braking_margin = closing * closing / (2.0 * constants.A_MAX) + 2.0
                if front_gap < braking_margin:
                    return -1e9
                # Advancing must not pass through the leader.
                travel = velocity * dt + 0.5 * accel * dt * dt
                if travel - front_v * dt > front_gap - 1.0:
                    return -1e9
                safety = min(ttc / 8.0, 1.0) - 1.0
            else:
                safety = 0.0
            if step == 0 and behavior is not LaneBehavior.KEEP and rear_gap < 4.0:
                return -1e9
            efficiency = next_velocity / env.road.v_max
            impact = -1.0 if (behavior is not LaneBehavior.KEEP and step == 0
                              and rear_gap < 10.0) else 0.0
            score += discount * (2.0 * safety + efficiency + 0.5 * impact)
            discount *= 0.9
            # greedy continuation: keep lane, keep accel, others constant v
            lon += velocity * dt + 0.5 * accel * dt * dt
            velocity = next_velocity
            others = [(o_lane, o_lon + o_v * dt, o_v) for o_lane, o_lon, o_v in others]
        return score

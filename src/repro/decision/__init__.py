"""Maneuver decision module: PAMDP, hybrid reward, BP-DQN and comparators."""

from .pamdp import (LaneBehavior, ParameterizedAction, AugmentedState,
                    build_augmented_state, CURRENT_SHAPE, FUTURE_SHAPE)
from .reward import RewardWeights, StepOutcome, RewardBreakdown, HybridReward
from .environment import StepRecord, EpisodeResult, DrivingEnv
from .fleet import FleetStepRecord, FleetEpisodeResult, FleetEnv, FleetController
from .replay import Transition, Batch, ReplayBuffer
from .networks import (BranchEncoder, BranchedXNetwork, BranchedQNetwork,
                       VanillaXNetwork, VanillaQNetwork, NUM_BEHAVIORS)
from .agents import EpsilonSchedule, PamdpAgent, PDQNAgent, PQPAgent, PDDPGAgent
from .policies import (Controller, AgentController, RuleBasedPolicy, IDMLCPolicy,
                       ACCLCPolicy, TPBTSPolicy, DISCRETE_ACCELS)
from .drlsc import DRLSCAgent, DRLSCController, MANEUVERS
from .safety import SafetyFallbackPolicy, front_ttc
from .trainer import RLTrainingLog, train_agent, NaNLossError, CHECKPOINT_NAME

__all__ = [
    "LaneBehavior", "ParameterizedAction", "AugmentedState",
    "build_augmented_state", "CURRENT_SHAPE", "FUTURE_SHAPE",
    "RewardWeights", "StepOutcome", "RewardBreakdown", "HybridReward",
    "StepRecord", "EpisodeResult", "DrivingEnv",
    "FleetStepRecord", "FleetEpisodeResult", "FleetEnv", "FleetController",
    "Transition", "Batch", "ReplayBuffer",
    "BranchEncoder", "BranchedXNetwork", "BranchedQNetwork",
    "VanillaXNetwork", "VanillaQNetwork", "NUM_BEHAVIORS",
    "EpsilonSchedule", "PamdpAgent", "PDQNAgent", "PQPAgent", "PDDPGAgent",
    "Controller", "AgentController", "RuleBasedPolicy", "IDMLCPolicy",
    "ACCLCPolicy", "TPBTSPolicy", "DISCRETE_ACCELS",
    "DRLSCAgent", "DRLSCController", "MANEUVERS",
    "SafetyFallbackPolicy", "front_ttc",
    "RLTrainingLog", "train_agent", "NaNLossError", "CHECKPOINT_NAME",
]

"""Experience replay buffer for the PAMDP agents.

Stores transitions as pre-allocated numpy arrays (the paper uses a
20,000-transition buffer) and samples uniform mini-batches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .pamdp import AugmentedState, CURRENT_SHAPE, FUTURE_SHAPE
from ..seeding import resolve_rng

__all__ = ["Transition", "Batch", "ReplayBuffer"]


@dataclass(frozen=True)
class Transition:
    """One (s, b, a, r, s', done) tuple in PAMDP form."""

    state: AugmentedState
    behavior: int
    accel: float
    reward: float
    next_state: AugmentedState | None   # None at terminal
    done: bool
    aux: np.ndarray | None = None       # agent-specific payload, width <= 6
                                        # (P-DQN family: the full x_out; P-DDPG:
                                        # the collapsed 6-dim action vector)


@dataclass(frozen=True)
class Batch:
    """A sampled mini-batch in array form (all float64)."""

    current: np.ndarray       # (B, 7, 4)
    future: np.ndarray        # (B, 6, 4)
    behavior: np.ndarray      # (B,) int
    accel: np.ndarray         # (B,)
    reward: np.ndarray        # (B,)
    next_current: np.ndarray  # (B, 7, 4)
    next_future: np.ndarray   # (B, 6, 4)
    done: np.ndarray          # (B,) float 0/1
    aux: np.ndarray           # (B, 6) agent-specific payload

    def __len__(self) -> int:
        return len(self.reward)


class ReplayBuffer:
    """Fixed-capacity ring buffer with uniform sampling."""

    def __init__(self, capacity: int = 20_000,
                 rng: np.random.Generator | None = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.rng = resolve_rng(rng)
        self._current = np.zeros((capacity, *CURRENT_SHAPE))
        self._future = np.zeros((capacity, *FUTURE_SHAPE))
        self._behavior = np.zeros(capacity, dtype=np.int64)
        self._accel = np.zeros(capacity)
        self._reward = np.zeros(capacity)
        self._next_current = np.zeros((capacity, *CURRENT_SHAPE))
        self._next_future = np.zeros((capacity, *FUTURE_SHAPE))
        self._done = np.zeros(capacity)
        self._aux = np.zeros((capacity, 6))
        self._size = 0
        self._cursor = 0

    def __len__(self) -> int:
        return self._size

    def push(self, transition: Transition) -> None:
        """Insert one transition, overwriting the oldest when full."""
        index = self._cursor
        self._current[index] = transition.state.current
        self._future[index] = transition.state.future
        self._behavior[index] = transition.behavior
        self._accel[index] = transition.accel
        self._reward[index] = transition.reward
        if transition.next_state is not None:
            self._next_current[index] = transition.next_state.current
            self._next_future[index] = transition.next_state.future
        else:
            self._next_current[index] = 0.0
            self._next_future[index] = 0.0
        self._done[index] = 1.0 if transition.done else 0.0
        self._aux[index] = 0.0
        if transition.aux is not None:
            payload = np.asarray(transition.aux, dtype=np.float64).reshape(-1)
            self._aux[index, :payload.size] = payload
        self._cursor = (self._cursor + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def sample(self, batch_size: int) -> Batch:
        """Uniformly sample a mini-batch (with replacement when small)."""
        if self._size == 0:
            raise ValueError("cannot sample from an empty buffer")
        replace = self._size < batch_size
        indices = self.rng.choice(self._size, size=batch_size, replace=replace)
        return Batch(
            current=self._current[indices],
            future=self._future[indices],
            behavior=self._behavior[indices],
            accel=self._accel[indices],
            reward=self._reward[indices],
            next_current=self._next_current[indices],
            next_future=self._next_future[indices],
            done=self._done[indices],
            aux=self._aux[indices],
        )

"""Experience replay buffer for the PAMDP agents.

Stores transitions as pre-allocated numpy arrays (the paper uses a
20,000-transition buffer) and samples uniform mini-batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .pamdp import AugmentedState, CURRENT_SHAPE, FUTURE_SHAPE
from ..seeding import resolve_rng

__all__ = ["Transition", "Batch", "TransitionBatch", "ReplayBuffer"]

#: Width of the agent-specific aux payload column (see :class:`Transition`).
AUX_WIDTH = 6


@dataclass(frozen=True)
class Transition:
    """One (s, b, a, r, s', done) tuple in PAMDP form."""

    state: AugmentedState
    behavior: int
    accel: float
    reward: float
    next_state: AugmentedState | None   # None at terminal
    done: bool
    aux: np.ndarray | None = None       # agent-specific payload, width <= 6
                                        # (P-DQN family: the full x_out; P-DDPG:
                                        # the collapsed 6-dim action vector)


@dataclass(frozen=True)
class Batch:
    """A sampled mini-batch in array form (all float64)."""

    current: np.ndarray       # (B, 7, 4)
    future: np.ndarray        # (B, 6, 4)
    behavior: np.ndarray      # (B,) int
    accel: np.ndarray         # (B,)
    reward: np.ndarray        # (B,)
    next_current: np.ndarray  # (B, 7, 4)
    next_future: np.ndarray   # (B, 6, 4)
    done: np.ndarray          # (B,) float 0/1
    aux: np.ndarray           # (B, 6) agent-specific payload

    def __len__(self) -> int:
        return len(self.reward)


@dataclass(frozen=True)
class TransitionBatch:
    """A run of transitions in storage layout (row i = i-th transition).

    This is the wire format of multi-process training: a worker packs a
    whole episode into nine arrays (cheap to pickle, one memcpy each),
    and the learner inserts slices of it with
    :meth:`ReplayBuffer.push_many` instead of paying the per-
    :class:`Transition` Python loop.  Field layout and dtypes match the
    buffer's internal arrays exactly; terminal transitions store zeros
    for the next state and the aux column is zero-padded to
    :data:`AUX_WIDTH`, byte-for-byte what :meth:`ReplayBuffer.push`
    would have written.
    """

    current: np.ndarray       # (N, 7, 4)
    future: np.ndarray        # (N, 6, 4)
    behavior: np.ndarray      # (N,) int64
    accel: np.ndarray         # (N,)
    reward: np.ndarray        # (N,)
    next_current: np.ndarray  # (N, 7, 4)
    next_future: np.ndarray   # (N, 6, 4)
    done: np.ndarray          # (N,) float 0/1
    aux: np.ndarray           # (N, 6)

    _FIELDS = ("current", "future", "behavior", "accel", "reward",
               "next_current", "next_future", "done", "aux")

    def __len__(self) -> int:
        return len(self.reward)

    def __getitem__(self, index: slice) -> "TransitionBatch":
        if not isinstance(index, slice):
            raise TypeError("TransitionBatch slices whole runs; index rows "
                            "via the field arrays")
        return TransitionBatch(**{name: getattr(self, name)[index]
                                  for name in self._FIELDS})

    @staticmethod
    def from_transitions(transitions: Sequence[Transition]) -> "TransitionBatch":
        """Pack :class:`Transition` objects into storage layout."""
        size = len(transitions)
        batch = TransitionBatch(
            current=np.zeros((size, *CURRENT_SHAPE)),
            future=np.zeros((size, *FUTURE_SHAPE)),
            behavior=np.zeros(size, dtype=np.int64),
            accel=np.zeros(size),
            reward=np.zeros(size),
            next_current=np.zeros((size, *CURRENT_SHAPE)),
            next_future=np.zeros((size, *FUTURE_SHAPE)),
            done=np.zeros(size),
            aux=np.zeros((size, AUX_WIDTH)),
        )
        for row, transition in enumerate(transitions):
            batch.current[row] = transition.state.current
            batch.future[row] = transition.state.future
            batch.behavior[row] = transition.behavior
            batch.accel[row] = transition.accel
            batch.reward[row] = transition.reward
            if transition.next_state is not None:
                batch.next_current[row] = transition.next_state.current
                batch.next_future[row] = transition.next_state.future
            batch.done[row] = 1.0 if transition.done else 0.0
            if transition.aux is not None:
                payload = np.asarray(transition.aux,
                                     dtype=np.float64).reshape(-1)
                batch.aux[row, :payload.size] = payload
        return batch

    def arrays(self) -> dict[str, np.ndarray]:
        """Field name -> array mapping (views, not copies)."""
        return {name: getattr(self, name) for name in self._FIELDS}


class ReplayBuffer:
    """Fixed-capacity ring buffer with uniform sampling."""

    def __init__(self, capacity: int = 20_000,
                 rng: np.random.Generator | None = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.rng = resolve_rng(rng)
        self._current = np.zeros((capacity, *CURRENT_SHAPE))
        self._future = np.zeros((capacity, *FUTURE_SHAPE))
        self._behavior = np.zeros(capacity, dtype=np.int64)
        self._accel = np.zeros(capacity)
        self._reward = np.zeros(capacity)
        self._next_current = np.zeros((capacity, *CURRENT_SHAPE))
        self._next_future = np.zeros((capacity, *FUTURE_SHAPE))
        self._done = np.zeros(capacity)
        self._aux = np.zeros((capacity, 6))
        self._size = 0
        self._cursor = 0

    def __len__(self) -> int:
        return self._size

    def push(self, transition: Transition) -> None:
        """Insert one transition, overwriting the oldest when full."""
        index = self._cursor
        self._current[index] = transition.state.current
        self._future[index] = transition.state.future
        self._behavior[index] = transition.behavior
        self._accel[index] = transition.accel
        self._reward[index] = transition.reward
        if transition.next_state is not None:
            self._next_current[index] = transition.next_state.current
            self._next_future[index] = transition.next_state.future
        else:
            self._next_current[index] = 0.0
            self._next_future[index] = 0.0
        self._done[index] = 1.0 if transition.done else 0.0
        self._aux[index] = 0.0
        if transition.aux is not None:
            payload = np.asarray(transition.aux, dtype=np.float64).reshape(-1)
            self._aux[index, :payload.size] = payload
        self._cursor = (self._cursor + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def push_many(self,
                  transitions: "TransitionBatch | Iterable[Transition]") -> None:
        """Insert a run of transitions with vectorized slice assignment.

        Exactly equivalent to calling :meth:`push` on each transition in
        order -- same final arrays, ``_size`` and ``_cursor`` bit for bit
        (property-tested in ``tests/decision/test_push_many.py``) -- but
        one or two slice copies per field instead of a Python loop per
        transition, which is what lets the learner drain whole worker
        episodes per queue message.
        """
        if not isinstance(transitions, TransitionBatch):
            transitions = TransitionBatch.from_transitions(list(transitions))
        count = len(transitions)
        if count == 0:
            return
        start = self._cursor
        final_cursor = (start + count) % self.capacity
        if count > self.capacity:
            # only the trailing window survives sequential overwriting;
            # its first surviving row would have cycled to this slot
            start = (start + count - self.capacity) % self.capacity
            transitions = transitions[count - self.capacity:]
            count = self.capacity
        head = min(count, self.capacity - start)
        for name, column in transitions.arrays().items():
            storage = getattr(self, "_" + name)
            storage[start:start + head] = column[:head]
            if head < count:
                storage[:count - head] = column[head:]
        self._cursor = final_cursor
        self._size = min(self._size + count, self.capacity)

    def sample(self, batch_size: int) -> Batch:
        """Uniformly sample a mini-batch (with replacement when small)."""
        if self._size == 0:
            raise ValueError("cannot sample from an empty buffer")
        replace = self._size < batch_size
        indices = self.rng.choice(self._size, size=batch_size, replace=replace)
        return Batch(
            current=self._current[indices],
            future=self._future[indices],
            behavior=self._behavior[indices],
            accel=self._accel[indices],
            reward=self._reward[indices],
            next_current=self._next_current[indices],
            next_future=self._next_future[indices],
            done=self._done[indices],
            aux=self._aux[indices],
        )

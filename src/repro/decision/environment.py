"""RL driving environment: engine + perception + reward behind a gym-like API.

One environment instance owns a simulated episode: the autonomous
vehicle starts at the road origin among dense conventional traffic and
drives until it finishes the road, collides, or times out.  Every
``step`` applies a parameterized action (Eq. 17), advances the world by
0.5 s (Eq. 18), and returns the next augmented state (Eqs. 15-16), the
hybrid reward (Eq. 28), and a :class:`StepRecord` with the raw
quantities the evaluation metrics aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..perception.module import EnhancedPerception, PerceptionFrame
from ..sim import constants
from ..sim.engine import SimulationEngine
from ..sim.road import Road
from ..sim.spawn import build_episode
from ..sim.vehicle import Vehicle
from .pamdp import AugmentedState, ParameterizedAction, build_augmented_state
from .reward import HybridReward, RewardBreakdown, StepOutcome

__all__ = ["StepRecord", "EpisodeResult", "DrivingEnv",
           "build_step_outcome", "build_step_record", "population_arrays"]


@dataclass(frozen=True)
class StepRecord:
    """Raw observations of one executed step (consumed by repro.eval)."""

    step: int
    av_velocity: float
    av_accel: float
    av_jerk: float
    ttc: float | None
    rear_velocity_drop: float | None
    impact_event: bool
    collided: bool
    reward: RewardBreakdown
    trailing_ids: tuple[str, ...]
    trailing_mean_velocity: float | None


@dataclass
class EpisodeResult:
    """Everything recorded over one episode."""

    records: list[StepRecord] = field(default_factory=list)
    finished: bool = False
    collided: bool = False
    steps: int = 0

    @property
    def total_reward(self) -> float:
        return sum(record.reward.total for record in self.records)

    @property
    def mean_reward(self) -> float:
        return self.total_reward / max(len(self.records), 1)


class DrivingEnv:
    """Gym-style driving environment solving the paper's PAMDP.

    Parameters
    ----------
    perception:
        The enhanced perception module (or an ablated variant).
    reward:
        Hybrid reward function.
    road / density_per_km:
        Episode geometry and traffic volume.
    max_steps:
        Hard episode cap (guards against stalled policies).
    reference:
        Step episodes with the scalar reference engine instead of the
        (bit-identical) vectorized path; used by equivalence tests.
    faults:
        Optional :class:`~repro.faults.injector.FaultInjector` applying
        actuator faults to every commanded action; it is reset with the
        episode seed on :meth:`reset` so fault realizations are
        reproducible per episode.  Sensor-side faults are wired by
        giving ``perception`` a
        :class:`~repro.faults.injector.FaultySensor` sharing the same
        injector.
    """

    AV_ID = "av"

    def __init__(self, perception: EnhancedPerception,
                 reward: HybridReward | None = None,
                 road: Road | None = None,
                 density_per_km: float = constants.DENSITY_PER_KM,
                 max_steps: int = 2000,
                 reference: bool = False,
                 faults=None) -> None:
        self.perception = perception
        self.reward = reward or HybridReward()
        self.road = road or Road()
        self.density_per_km = density_per_km
        self.max_steps = max_steps
        self.reference = reference
        self.faults = faults
        self.engine: SimulationEngine | None = None
        self.result = EpisodeResult()
        self._frame: PerceptionFrame | None = None
        self._steps = 0

    # ------------------------------------------------------------------
    # episode control
    # ------------------------------------------------------------------
    def reset(self, seed: int) -> AugmentedState:
        """Start a fresh seeded episode and return the initial state."""
        self.engine, _ = build_episode(seed, road=self.road,
                                       density_per_km=self.density_per_km,
                                       reference=self.reference)
        if self.faults is not None:
            self.faults.reset(seed)
        self.perception.reset()
        self.result = EpisodeResult()
        self._steps = 0
        self._frame = self.perception.perceive(self.engine, self.AV_ID)
        return build_augmented_state(self._frame)

    @property
    def av(self) -> Vehicle | None:
        if self.engine is None:
            return None
        return self.engine.vehicles.get(self.AV_ID)

    @property
    def frame(self) -> PerceptionFrame | None:
        """The most recent perception frame (for policies that need it)."""
        return self._frame

    def done(self) -> bool:
        return (self.result.finished or self.result.collided
                or self._steps >= self.max_steps)

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self, action: ParameterizedAction
             ) -> tuple[AugmentedState | None, RewardBreakdown, bool, StepRecord]:
        """Apply one parameterized action and advance the world by 0.5 s."""
        if self.engine is None:
            raise RuntimeError("call reset() before step()")
        if self.done():
            raise RuntimeError("episode is over; call reset()")
        if self.faults is not None:
            action = self.faults.filter_action(action)
        engine = self.engine
        av = engine.get(self.AV_ID)

        rear_before = engine.follower_of(av)
        rear_id = rear_before.vid if rear_before is not None else None
        rear_v_before = rear_before.v if rear_before is not None else None
        accel_prev = av.accel

        engine.set_maneuver(self.AV_ID, action.lane_delta, action.accel)
        events = engine.step()
        self._steps += 1

        collided = any(event.vehicle_id == self.AV_ID or event.other_id == self.AV_ID
                       for event in events)
        finished = self.AV_ID not in engine.vehicles and not collided

        av_after = engine.vehicles.get(self.AV_ID) or engine.retired.get(self.AV_ID)
        outcome = self._build_outcome(av_after, collided, action.accel, accel_prev,
                                      rear_id, rear_v_before)
        breakdown = self.reward.compute(outcome)
        record = self._record(av_after, outcome, breakdown, collided)
        self.result.records.append(record)
        self.result.steps = self._steps
        self.result.collided = collided
        self.result.finished = finished

        done = collided or finished or self._steps >= self.max_steps
        next_state: AugmentedState | None = None
        if not done:
            self._frame = self.perception.perceive(engine, self.AV_ID)
            next_state = build_augmented_state(self._frame)
        return next_state, breakdown, done, record

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _build_outcome(self, av: Vehicle, collided: bool, accel: float,
                       accel_prev: float, rear_id: str | None,
                       rear_v_before: float | None) -> StepOutcome:
        return build_step_outcome(self.engine, av, collided, accel, accel_prev,
                                  rear_id, rear_v_before,
                                  self.perception.sensor.detection_range)

    def _record(self, av: Vehicle, outcome: StepOutcome,
                breakdown: RewardBreakdown, collided: bool) -> StepRecord:
        return build_step_record(self.engine, av, outcome, breakdown, collided,
                                 self._steps, self.reward.velocity_threshold)


def build_step_outcome(engine: SimulationEngine, av: Vehicle | None,
                       collided: bool, accel: float, accel_prev: float,
                       rear_id: str | None, rear_v_before: float | None,
                       detection_range: float) -> StepOutcome:
    """Post-step reward inputs for one ego (shared by single-AV and fleet)."""
    front_gap = None
    closing = None
    if av is not None and av.vid in engine.vehicles:
        front = engine.leader_of(av)
        if front is not None and front.lon - av.lon <= detection_range:
            front_gap = av.gap_to(front)
            closing = av.v - front.v
    rear_v_next = None
    if rear_id is not None:
        rear_after = engine.vehicles.get(rear_id) or engine.retired.get(rear_id)
        if rear_after is not None:
            rear_v_next = rear_after.v
    return StepOutcome(
        collided=collided,
        ego_velocity_next=av.v if av is not None else 0.0,
        ego_accel=accel,
        ego_accel_prev=accel_prev,
        front_gap_next=front_gap,
        front_closing_speed=closing,
        rear_velocity_now=rear_v_before,
        rear_velocity_next=rear_v_next,
    )


def population_arrays(engine: SimulationEngine
                      ) -> tuple[list[str], np.ndarray, np.ndarray]:
    """(vids, lon, v) arrays of the live population, in dict order.

    The trailing scan of :func:`build_step_record` needs them for every
    ego against the same post-step world; a fleet computes them once per
    step and passes them to each record build.
    """
    vids = list(engine.vehicles)
    lons = np.fromiter((vehicle.lon for vehicle in engine.vehicles.values()),
                       np.float64, count=len(vids))
    speeds = np.fromiter((vehicle.v for vehicle in engine.vehicles.values()),
                         np.float64, count=len(vids))
    return vids, lons, speeds


def build_step_record(engine: SimulationEngine, av: Vehicle | None,
                      outcome: StepOutcome, breakdown: RewardBreakdown,
                      collided: bool, step: int,
                      velocity_threshold: float,
                      population: tuple[list[str], np.ndarray, np.ndarray]
                      | None = None) -> StepRecord:
    """Raw metric record for one executed step of one ego."""
    ttc = None
    if (outcome.front_gap_next is not None and outcome.front_closing_speed is not None
            and outcome.front_closing_speed > 0.0 and outcome.front_gap_next > 0.0):
        ttc = outcome.front_gap_next / outcome.front_closing_speed
    rear_drop = None
    impact_event = False
    if outcome.rear_velocity_now is not None and outcome.rear_velocity_next is not None:
        rear_drop = outcome.rear_velocity_now - outcome.rear_velocity_next
        impact_event = rear_drop > velocity_threshold

    # Trailing scan, vectorized: "behind > 0" excludes the ego itself
    # (and, exactly as the per-vehicle loop did, anything sharing its
    # longitude), so no explicit vid comparison is needed.
    trailing: list[str] = []
    velocities = np.zeros(0)
    if av is not None and av.vid in engine.vehicles:
        vids, lons, speeds = (population if population is not None
                              else population_arrays(engine))
        behind = av.lon - lons
        rows = np.flatnonzero((behind > 0.0) & (behind <= 100.0))
        trailing = [vids[row] for row in rows]
        velocities = speeds[rows]
    return StepRecord(
        step=step,
        av_velocity=av.v if av is not None else 0.0,
        av_accel=outcome.ego_accel,
        av_jerk=abs(outcome.ego_accel - outcome.ego_accel_prev),
        ttc=ttc,
        rear_velocity_drop=rear_drop,
        impact_event=impact_event,
        collided=collided,
        reward=breakdown,
        trailing_ids=tuple(sorted(trailing)),
        trailing_mean_velocity=(float(np.mean(velocities))
                                if len(velocities) else None),
    )

"""Safety fallback: TTC-gated emergency braking over any controller.

When perception reports degraded confidence -- the
:class:`~repro.faults.guard.PerceptionGuard` had to replace predictor
output, or the scene in front closes in faster than the policy reacts
-- the safest parameterized action is unambiguous: keep the lane and
brake at the comfort limit.  :class:`SafetyFallbackPolicy` wraps any
:class:`Controller` and overrides its action exactly in those cases,
leaving nominal driving untouched.

The time-to-collision test runs on the *perceived* front target (area
2 of the paper's layout), so the fallback sees the same sensor-limited
world as every other method; phantoms at the detection boundary are R
meters out and therefore never trip the threshold.
"""

from __future__ import annotations

from ..perception.phantom import TrackKind
from ..sim import constants
from .pamdp import AugmentedState, LaneBehavior, ParameterizedAction
from .policies import Controller

__all__ = ["SafetyFallbackPolicy", "front_ttc"]

#: Gap below which the follower is effectively touching the leader.
_CONTACT_GAP = 0.5


def front_ttc(env) -> float | None:
    """Time-to-collision against the perceived front target, if closing.

    Returns ``None`` when there is no perception frame, the front slot
    is empty, or the gap is opening; ``0.0`` on (near-)contact.
    """
    frame = env.frame
    av = env.av
    if frame is None or av is None:
        return None
    target = frame.scene.targets.get(2)
    if target is None or target.kind is TrackKind.ZERO:
        return None
    gap = target.current.lon - av.lon - constants.VEHICLE_LENGTH
    if gap <= _CONTACT_GAP:
        return 0.0
    closing = av.v - target.current.v
    if closing <= 0.0:
        return None
    return gap / closing


class SafetyFallbackPolicy(Controller):
    """Wrap ``inner`` with a degradation-aware emergency-braking override.

    Parameters
    ----------
    inner:
        The controller making nominal decisions.
    guard:
        Optional :class:`~repro.faults.guard.PerceptionGuard` whose
        per-frame confidence widens the braking threshold when the
        predictor had to be overridden.
    ttc_brake:
        Hard threshold (s): below it the AV brakes regardless of the
        inner policy.
    ttc_degraded:
        Cautious threshold (s) used while perception confidence is
        below ``min_confidence`` -- degraded predictions mean the inner
        policy is flying partially blind, so braking starts earlier.
    """

    def __init__(self, inner: Controller, guard=None,
                 ttc_brake: float = 1.5, ttc_degraded: float = 3.0,
                 min_confidence: float = 1.0) -> None:
        self.inner = inner
        self.guard = guard
        self.ttc_brake = ttc_brake
        self.ttc_degraded = ttc_degraded
        self.min_confidence = min_confidence
        self.name = f"{getattr(inner, 'name', 'controller')}+fallback"
        self.overrides = 0

    def begin_episode(self) -> None:
        self.inner.begin_episode()

    def _degraded(self) -> bool:
        return (self.guard is not None
                and self.guard.last_confidence < self.min_confidence)

    def select_action(self, env, state: AugmentedState) -> ParameterizedAction:
        action = self.inner.select_action(env, state)
        ttc = front_ttc(env)
        threshold = self.ttc_degraded if self._degraded() else self.ttc_brake
        if ttc is not None and ttc < threshold:
            self.overrides += 1
            return ParameterizedAction(LaneBehavior.KEEP, -constants.A_MAX)
        return action

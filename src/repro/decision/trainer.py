"""Episode-level training loop for the PAMDP agents.

Drives a :class:`~repro.decision.environment.DrivingEnv` with an agent,
stores transitions, and performs one optimization step per environment
step (paper: Adam, 4,000 episodes, batch 64; episode counts are
configurable because this reproduction trains on CPU).

The loop is crash-safe when given a ``checkpoint_dir``: every
``checkpoint_every`` episodes the full mutable training state (networks,
optimizer moments, replay buffer, RNG streams, reward history) is
written atomically via :mod:`repro.faults.checkpoint`, a killed process
resumes from the last checkpoint to the *same* learning curve, and a
non-finite loss or reward triggers a rollback to the last good
checkpoint instead of silently corrupting the run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from ..faults.checkpoint import load_checkpoint, save_checkpoint
from .agents import PamdpAgent
from .environment import DrivingEnv
from .pamdp import ParameterizedAction
from .replay import Transition

__all__ = ["RLTrainingLog", "train_agent", "NaNLossError", "CHECKPOINT_NAME",
           "EpisodeRunner", "EpisodeOutcome", "LearningSink"]

#: Optional hook rewriting actions before execution (DRL-SC safety check).
ActionFilter = Callable[[DrivingEnv, ParameterizedAction], ParameterizedAction]

#: Per-transition consumer driven by :class:`EpisodeRunner`; returns True
#: when training diverged and the episode must be abandoned.
TransitionSink = Callable[[Transition], bool]

#: File name of the rolling training checkpoint inside ``checkpoint_dir``.
CHECKPOINT_NAME = "train.ckpt.npz"


class NaNLossError(RuntimeError):
    """Training diverged to NaN/inf and no checkpoint was left to roll back to."""


@dataclass
class RLTrainingLog:
    """Per-episode statistics of one training run."""

    episode_rewards: list[float] = field(default_factory=list)
    episode_steps: list[int] = field(default_factory=list)
    collisions: int = 0
    wall_time: float = 0.0
    nan_rollbacks: int = 0
    resumed_episodes: int = 0
    #: Chained SHA-256 over the consumed transition stream, set by the
    #: parallel trainer (``repro.train``); equality across worker counts
    #: certifies the optimizer saw the identical sequence.  The serial
    #: loop leaves it None.
    transition_digest: str | None = None

    @property
    def episodes(self) -> int:
        return len(self.episode_rewards)

    def mean_recent_reward(self, window: int = 50) -> float:
        recent = self.episode_rewards[-window:]
        return sum(recent) / max(len(recent), 1)


def _checkpoint_extra(log: RLTrainingLog, next_episode: int,
                      wall_time: float) -> dict:
    return {
        "next_episode": next_episode,
        "episode_rewards": list(log.episode_rewards),
        "episode_steps": list(log.episode_steps),
        "collisions": log.collisions,
        "wall_time": wall_time,
    }


def _restore(path: Path, agent: PamdpAgent, log: RLTrainingLog) -> tuple[int, float]:
    """Load a checkpoint into agent and log; returns (next_episode, wall)."""
    extra = load_checkpoint(path, agent)
    log.episode_rewards[:] = [float(r) for r in extra["episode_rewards"]]
    log.episode_steps[:] = [int(s) for s in extra["episode_steps"]]
    log.collisions = int(extra["collisions"])
    return int(extra["next_episode"]), float(extra["wall_time"])


def _finite(losses: dict[str, float] | None) -> bool:
    return losses is None or all(np.isfinite(v) for v in losses.values())


@dataclass(frozen=True)
class EpisodeOutcome:
    """What one :class:`EpisodeRunner` episode produced."""

    reward_sum: float
    steps: int
    collided: bool
    diverged: bool  # sink reported non-finite training state; episode aborted

    @property
    def mean_reward(self) -> float:
        return self.reward_sum / max(self.steps, 1)


class LearningSink:
    """The serial per-step consumer: store, check finiteness, optimize.

    Mirrors the exact order of operations the training loop has always
    had -- ``observe`` (which advances the exploration clock) happens
    before the finiteness check, and the optimization step fires on the
    post-observe step count -- so the refactored loop is bit-identical
    to the original.
    """

    def __init__(self, agent: PamdpAgent, learn_every: int = 1) -> None:
        self.agent = agent
        self.learn_every = learn_every

    def __call__(self, transition: Transition) -> bool:
        self.agent.observe(transition)
        if not np.isfinite(transition.reward):
            return True
        if self.agent.total_steps % self.learn_every == 0:
            losses = self.agent.learn()
            if not _finite(losses):
                return True
        return False


class EpisodeRunner:
    """Drive one seeded episode; delegate transition handling to a sink.

    The acting side of training (reset, act/filter/step, transition
    assembly) is identical whether the consumer learns online (the
    serial loop's :class:`LearningSink`) or just collects for a learner
    process (``repro.train``'s worker sink), so both paths share this
    runner -- the only way to *guarantee* a worker generates exactly the
    trajectory the serial loop would have.
    """

    def __init__(self, env: DrivingEnv,
                 action_filter: ActionFilter | None = None,
                 max_episode_steps: int | None = None) -> None:
        self.env = env
        self.action_filter = action_filter
        self.max_episode_steps = max_episode_steps

    def run(self, agent: PamdpAgent, seed: int,
            sink: TransitionSink) -> EpisodeOutcome:
        env = self.env
        state = env.reset(seed)
        reward_sum = 0.0
        steps = 0
        cap = self.max_episode_steps or env.max_steps
        while steps < cap:
            action = agent.act(state, explore=True)
            if self.action_filter is not None:
                action = self.action_filter(env, action)
            next_state, breakdown, done, _ = env.step(action)
            aux = agent.last_aux() if hasattr(agent, "last_aux") else None
            diverged = sink(Transition(
                state=state, behavior=int(action.behavior),
                accel=action.accel, reward=breakdown.total,
                next_state=next_state, done=done, aux=aux,
            ))
            if diverged:
                return EpisodeOutcome(reward_sum, steps,
                                      env.result.collided, True)
            reward_sum += breakdown.total
            steps += 1
            if done or next_state is None:
                break
            state = next_state
        return EpisodeOutcome(reward_sum, steps, env.result.collided, False)


def train_agent(agent: PamdpAgent, env: DrivingEnv, episodes: int,
                seed_offset: int = 0, learn_every: int = 1,
                action_filter: ActionFilter | None = None,
                max_episode_steps: int | None = None,
                checkpoint_dir: str | Path | None = None,
                checkpoint_every: int = 0,
                resume: bool = True,
                max_nan_rollbacks: int = 3) -> RLTrainingLog:
    """Train ``agent`` for ``episodes`` seeded episodes.

    Parameters
    ----------
    seed_offset:
        Episode i uses seed ``seed_offset + i`` so runs are reproducible
        and disjoint from the evaluation seeds.
    learn_every:
        Environment steps between optimization steps.
    action_filter:
        Applied to every action before execution *and* reflected in the
        stored transition (the executed action is what gets credited).
    max_episode_steps:
        Optional override of the environment's episode cap.
    checkpoint_dir / checkpoint_every:
        When both are set, write an atomic checkpoint of the full
        training state every ``checkpoint_every`` episodes.
    resume:
        Continue from an existing checkpoint in ``checkpoint_dir`` (a
        killed run picks up where its last checkpoint left off and
        reproduces the uninterrupted run's episode rewards exactly).
    max_nan_rollbacks:
        A non-finite loss or reward restores the last good checkpoint
        (with a deterministic RNG perturbation so the run does not
        replay into the same divergence) at most this many times before
        :class:`NaNLossError` is raised.
    """
    log = RLTrainingLog()
    ckpt_path: Path | None = None
    if checkpoint_dir is not None:
        ckpt_path = Path(checkpoint_dir) / CHECKPOINT_NAME
    episode = 0
    base_wall = 0.0
    if ckpt_path is not None and resume and ckpt_path.exists():
        episode, base_wall = _restore(ckpt_path, agent, log)
        log.resumed_episodes = episode
    start = time.perf_counter()

    runner = EpisodeRunner(env, action_filter, max_episode_steps)
    sink = LearningSink(agent, learn_every)
    while episode < episodes:
        outcome = runner.run(agent, seed_offset + episode, sink)
        if outcome.diverged:
            log.nan_rollbacks += 1
            if (ckpt_path is None or not ckpt_path.exists()
                    or log.nan_rollbacks > max_nan_rollbacks):
                raise NaNLossError(
                    f"non-finite loss/reward in episode {episode} "
                    f"(rollbacks used: {log.nan_rollbacks - 1})")
            episode, base_wall = _restore(ckpt_path, agent, log)
            # deterministic jitter: without it the restored state replays
            # the exact trajectory back into the same divergence
            agent.rng.random(log.nan_rollbacks)
            continue
        log.episode_rewards.append(outcome.mean_reward)
        log.episode_steps.append(outcome.steps)
        if outcome.collided:
            log.collisions += 1
        episode += 1
        if (ckpt_path is not None and checkpoint_every > 0
                and episode % checkpoint_every == 0):
            wall = base_wall + (time.perf_counter() - start)
            save_checkpoint(ckpt_path, agent,
                            extra=_checkpoint_extra(log, episode, wall))
    log.wall_time = base_wall + (time.perf_counter() - start)
    return log

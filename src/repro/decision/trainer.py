"""Episode-level training loop for the PAMDP agents.

Drives a :class:`~repro.decision.environment.DrivingEnv` with an agent,
stores transitions, and performs one optimization step per environment
step (paper: Adam, 4,000 episodes, batch 64; episode counts are
configurable because this reproduction trains on CPU).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from .agents import PamdpAgent
from .environment import DrivingEnv
from .pamdp import ParameterizedAction
from .replay import Transition

__all__ = ["RLTrainingLog", "train_agent"]

#: Optional hook rewriting actions before execution (DRL-SC safety check).
ActionFilter = Callable[[DrivingEnv, ParameterizedAction], ParameterizedAction]


@dataclass
class RLTrainingLog:
    """Per-episode statistics of one training run."""

    episode_rewards: list[float] = field(default_factory=list)
    episode_steps: list[int] = field(default_factory=list)
    collisions: int = 0
    wall_time: float = 0.0

    @property
    def episodes(self) -> int:
        return len(self.episode_rewards)

    def mean_recent_reward(self, window: int = 50) -> float:
        recent = self.episode_rewards[-window:]
        return sum(recent) / max(len(recent), 1)


def train_agent(agent: PamdpAgent, env: DrivingEnv, episodes: int,
                seed_offset: int = 0, learn_every: int = 1,
                action_filter: ActionFilter | None = None,
                max_episode_steps: int | None = None) -> RLTrainingLog:
    """Train ``agent`` for ``episodes`` seeded episodes.

    Parameters
    ----------
    seed_offset:
        Episode i uses seed ``seed_offset + i`` so runs are reproducible
        and disjoint from the evaluation seeds.
    learn_every:
        Environment steps between optimization steps.
    action_filter:
        Applied to every action before execution *and* reflected in the
        stored transition (the executed action is what gets credited).
    max_episode_steps:
        Optional override of the environment's episode cap.
    """
    log = RLTrainingLog()
    start = time.perf_counter()
    for episode in range(episodes):
        state = env.reset(seed_offset + episode)
        episode_reward = 0.0
        steps = 0
        cap = max_episode_steps or env.max_steps
        while steps < cap:
            action = agent.act(state, explore=True)
            if action_filter is not None:
                action = action_filter(env, action)
            next_state, breakdown, done, _ = env.step(action)
            aux = agent.last_aux() if hasattr(agent, "last_aux") else None
            agent.observe(Transition(
                state=state, behavior=int(action.behavior), accel=action.accel,
                reward=breakdown.total, next_state=next_state, done=done, aux=aux,
            ))
            if agent.total_steps % learn_every == 0:
                agent.learn()
            episode_reward += breakdown.total
            steps += 1
            if done or next_state is None:
                break
            state = next_state
        log.episode_rewards.append(episode_reward / max(steps, 1))
        log.episode_steps.append(steps)
        if env.result.collided:
            log.collisions += 1
    log.wall_time = time.perf_counter() - start
    return log

"""Episode-level training loop for the PAMDP agents.

Drives a :class:`~repro.decision.environment.DrivingEnv` with an agent,
stores transitions, and performs one optimization step per environment
step (paper: Adam, 4,000 episodes, batch 64; episode counts are
configurable because this reproduction trains on CPU).

The loop is crash-safe when given a ``checkpoint_dir``: every
``checkpoint_every`` episodes the full mutable training state (networks,
optimizer moments, replay buffer, RNG streams, reward history) is
written atomically via :mod:`repro.faults.checkpoint`, a killed process
resumes from the last checkpoint to the *same* learning curve, and a
non-finite loss or reward triggers a rollback to the last good
checkpoint instead of silently corrupting the run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from ..faults.checkpoint import load_checkpoint, save_checkpoint
from .agents import PamdpAgent
from .environment import DrivingEnv
from .pamdp import ParameterizedAction
from .replay import Transition

__all__ = ["RLTrainingLog", "train_agent", "NaNLossError", "CHECKPOINT_NAME"]

#: Optional hook rewriting actions before execution (DRL-SC safety check).
ActionFilter = Callable[[DrivingEnv, ParameterizedAction], ParameterizedAction]

#: File name of the rolling training checkpoint inside ``checkpoint_dir``.
CHECKPOINT_NAME = "train.ckpt.npz"


class NaNLossError(RuntimeError):
    """Training diverged to NaN/inf and no checkpoint was left to roll back to."""


@dataclass
class RLTrainingLog:
    """Per-episode statistics of one training run."""

    episode_rewards: list[float] = field(default_factory=list)
    episode_steps: list[int] = field(default_factory=list)
    collisions: int = 0
    wall_time: float = 0.0
    nan_rollbacks: int = 0
    resumed_episodes: int = 0

    @property
    def episodes(self) -> int:
        return len(self.episode_rewards)

    def mean_recent_reward(self, window: int = 50) -> float:
        recent = self.episode_rewards[-window:]
        return sum(recent) / max(len(recent), 1)


def _checkpoint_extra(log: RLTrainingLog, next_episode: int,
                      wall_time: float) -> dict:
    return {
        "next_episode": next_episode,
        "episode_rewards": list(log.episode_rewards),
        "episode_steps": list(log.episode_steps),
        "collisions": log.collisions,
        "wall_time": wall_time,
    }


def _restore(path: Path, agent: PamdpAgent, log: RLTrainingLog) -> tuple[int, float]:
    """Load a checkpoint into agent and log; returns (next_episode, wall)."""
    extra = load_checkpoint(path, agent)
    log.episode_rewards[:] = [float(r) for r in extra["episode_rewards"]]
    log.episode_steps[:] = [int(s) for s in extra["episode_steps"]]
    log.collisions = int(extra["collisions"])
    return int(extra["next_episode"]), float(extra["wall_time"])


def _finite(losses: dict[str, float] | None) -> bool:
    return losses is None or all(np.isfinite(v) for v in losses.values())


def train_agent(agent: PamdpAgent, env: DrivingEnv, episodes: int,
                seed_offset: int = 0, learn_every: int = 1,
                action_filter: ActionFilter | None = None,
                max_episode_steps: int | None = None,
                checkpoint_dir: str | Path | None = None,
                checkpoint_every: int = 0,
                resume: bool = True,
                max_nan_rollbacks: int = 3) -> RLTrainingLog:
    """Train ``agent`` for ``episodes`` seeded episodes.

    Parameters
    ----------
    seed_offset:
        Episode i uses seed ``seed_offset + i`` so runs are reproducible
        and disjoint from the evaluation seeds.
    learn_every:
        Environment steps between optimization steps.
    action_filter:
        Applied to every action before execution *and* reflected in the
        stored transition (the executed action is what gets credited).
    max_episode_steps:
        Optional override of the environment's episode cap.
    checkpoint_dir / checkpoint_every:
        When both are set, write an atomic checkpoint of the full
        training state every ``checkpoint_every`` episodes.
    resume:
        Continue from an existing checkpoint in ``checkpoint_dir`` (a
        killed run picks up where its last checkpoint left off and
        reproduces the uninterrupted run's episode rewards exactly).
    max_nan_rollbacks:
        A non-finite loss or reward restores the last good checkpoint
        (with a deterministic RNG perturbation so the run does not
        replay into the same divergence) at most this many times before
        :class:`NaNLossError` is raised.
    """
    log = RLTrainingLog()
    ckpt_path: Path | None = None
    if checkpoint_dir is not None:
        ckpt_path = Path(checkpoint_dir) / CHECKPOINT_NAME
    episode = 0
    base_wall = 0.0
    if ckpt_path is not None and resume and ckpt_path.exists():
        episode, base_wall = _restore(ckpt_path, agent, log)
        log.resumed_episodes = episode
    start = time.perf_counter()

    while episode < episodes:
        diverged = _run_training_episode(agent, env, seed_offset + episode,
                                         learn_every, action_filter,
                                         max_episode_steps, log)
        if diverged:
            log.nan_rollbacks += 1
            if (ckpt_path is None or not ckpt_path.exists()
                    or log.nan_rollbacks > max_nan_rollbacks):
                raise NaNLossError(
                    f"non-finite loss/reward in episode {episode} "
                    f"(rollbacks used: {log.nan_rollbacks - 1})")
            episode, base_wall = _restore(ckpt_path, agent, log)
            # deterministic jitter: without it the restored state replays
            # the exact trajectory back into the same divergence
            agent.rng.random(log.nan_rollbacks)
            continue
        episode += 1
        if (ckpt_path is not None and checkpoint_every > 0
                and episode % checkpoint_every == 0):
            wall = base_wall + (time.perf_counter() - start)
            save_checkpoint(ckpt_path, agent,
                            extra=_checkpoint_extra(log, episode, wall))
    log.wall_time = base_wall + (time.perf_counter() - start)
    return log


def _run_training_episode(agent: PamdpAgent, env: DrivingEnv, seed: int,
                          learn_every: int, action_filter: ActionFilter | None,
                          max_episode_steps: int | None,
                          log: RLTrainingLog) -> bool:
    """Run one episode, appending to ``log``; True when training diverged."""
    state = env.reset(seed)
    episode_reward = 0.0
    steps = 0
    cap = max_episode_steps or env.max_steps
    while steps < cap:
        action = agent.act(state, explore=True)
        if action_filter is not None:
            action = action_filter(env, action)
        next_state, breakdown, done, _ = env.step(action)
        aux = agent.last_aux() if hasattr(agent, "last_aux") else None
        agent.observe(Transition(
            state=state, behavior=int(action.behavior), accel=action.accel,
            reward=breakdown.total, next_state=next_state, done=done, aux=aux,
        ))
        if not np.isfinite(breakdown.total):
            return True
        if agent.total_steps % learn_every == 0:
            losses = agent.learn()
            if not _finite(losses):
                return True
        episode_reward += breakdown.total
        steps += 1
        if done or next_state is None:
            break
        state = next_state
    log.episode_rewards.append(episode_reward / max(steps, 1))
    log.episode_steps.append(steps)
    if env.result.collided:
        log.collisions += 1
    return False

"""Dense layers and containers built on the autograd engine.

The paper's networks are compositions of linear transformations with
ReLU/LeakyReLU/Tanh nonlinearities (Eqs. 10-13 and 24-27); this module
provides those building blocks with PyTorch-compatible semantics.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor, linear
from ..seeding import resolve_rng

__all__ = ["Linear", "Sequential", "ReLU", "LeakyReLU", "Tanh", "Sigmoid", "MLP"]


class Linear(Module):
    """Affine map ``y = x @ W.T + b``.

    Parameters
    ----------
    in_features / out_features:
        Input and output dimensionality.
    bias:
        Whether to learn an additive bias (the paper's layers all do).
    rng:
        Random generator for reproducible initialization.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = resolve_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, inputs: Tensor) -> Tensor:
        return linear(inputs, self.weight, self.bias)


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.relu()


class LeakyReLU(Module):
    """Leaky ReLU activation (paper uses it inside the GAT scores, Eq. 10)."""

    def __init__(self, negative_slope: float = 0.2) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.leaky_relu(self.negative_slope)


class Tanh(Module):
    """Hyperbolic tangent activation (bounds BP-DQN accelerations, Eq. 25)."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.tanh()


class Sigmoid(Module):
    """Logistic activation."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.sigmoid()


class Sequential(Module):
    """Run sub-modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.children_list = list(modules)

    def forward(self, inputs: Tensor) -> Tensor:
        output = inputs
        for module in self.children_list:
            output = module(output)
        return output


class MLP(Module):
    """Multilayer perceptron with a configurable activation.

    Builds ``Linear -> act -> ... -> Linear`` with no activation after
    the final layer, which is the pattern used by every branch of the
    paper's x/Q networks.
    """

    def __init__(self, sizes: Sequence[int],
                 activation: Callable[[], Module] = ReLU,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("MLP needs at least an input and an output size")
        rng = resolve_rng(rng)
        layers: list[Module] = []
        for index, (n_in, n_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            layers.append(Linear(n_in, n_out, rng=rng))
            if index < len(sizes) - 2:
                layers.append(activation())
        self.net = Sequential(*layers)

    def forward(self, inputs: Tensor) -> Tensor:
        return self.net(inputs)

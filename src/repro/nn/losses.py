"""Loss functions used by the paper's training objectives."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["mse_loss", "masked_mse_loss", "huber_loss"]


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error over all elements (Eq. 14 without masking)."""
    diff = prediction - target
    return (diff * diff).mean()


def masked_mse_loss(prediction: Tensor, target: Tensor, mask: np.ndarray) -> Tensor:
    """MSE with per-row masking (Eq. 14 phantom-vehicle masking).

    Rows whose ``mask`` entry is 0 contribute no loss and no gradient --
    the paper masks phantom vehicles by setting their ground truth equal
    to the prediction, which is mathematically identical.

    Parameters
    ----------
    prediction / target:
        ``(n, d)`` tensors.
    mask:
        ``(n,)`` array of 0/1 flags; 1 keeps the row.
    """
    mask = np.asarray(mask, dtype=np.float64)
    if mask.ndim != 1 or mask.shape[0] != prediction.shape[0]:
        raise ValueError("mask must be 1-D with one flag per prediction row")
    kept = float(mask.sum())
    if kept == 0.0:
        return (prediction * 0.0).sum()
    diff = prediction - target
    weighted = diff * diff * Tensor(mask[:, None])
    return weighted.sum() * (1.0 / (kept * prediction.shape[1]))


def huber_loss(prediction: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Smooth L1 loss, the conventional robust TD-error objective.

    Provided as an alternative to the squared Bellman error of Eq. 22;
    the default trainers use MSE to match the paper.
    """
    diff = prediction - target
    abs_diff = diff.abs()
    quadratic = abs_diff.clip_value(0.0, delta)
    linear = abs_diff - quadratic
    return (quadratic * quadratic * 0.5 + linear * delta).mean()

"""Weight initialization schemes for :mod:`repro.nn` layers."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "kaiming_uniform", "uniform", "orthogonal"]


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform init, appropriate for tanh/sigmoid layers."""
    fan_in, fan_out = _fans(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He uniform init, appropriate for ReLU layers."""
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def uniform(shape: tuple[int, ...], rng: np.random.Generator, limit: float) -> np.ndarray:
    """Plain symmetric uniform init in ``[-limit, limit]``."""
    return rng.uniform(-limit, limit, size=shape)


def orthogonal(shape: tuple[int, int], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Orthogonal init for recurrent weight matrices."""
    rows, cols = shape
    matrix = rng.standard_normal((max(rows, cols), min(rows, cols)))
    q, _ = np.linalg.qr(matrix)
    q = q[:rows, :cols] if rows >= cols else q[:cols, :rows].T
    return gain * q


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_out, fan_in = shape[0], int(np.prod(shape[1:]))
    return fan_in, fan_out

"""Numpy-based neural network substrate (PyTorch substitute).

Provides the tape autograd engine, layers, recurrent cells, optimizers,
losses and checkpointing that the perception and decision models are
built from.  See ``DESIGN.md`` for the substitution rationale.
"""

from .tensor import (Tensor, concat, stack, no_grad, is_grad_enabled,
                     einsum, linear, defvjp, registered_ops)
from .module import Module, Parameter
from .layers import Linear, Sequential, ReLU, LeakyReLU, Tanh, Sigmoid, MLP
from .recurrent import LSTMCell, LSTM, lstm_step, lstm_sequence
from .optim import Optimizer, SGD, Adam, clip_grad_norm
from .losses import mse_loss, masked_mse_loss, huber_loss
from .serialization import save_module, load_module

__all__ = [
    "Tensor", "concat", "stack", "no_grad", "is_grad_enabled",
    "einsum", "linear", "defvjp", "registered_ops",
    "Module", "Parameter",
    "Linear", "Sequential", "ReLU", "LeakyReLU", "Tanh", "Sigmoid", "MLP",
    "LSTMCell", "LSTM", "lstm_step", "lstm_sequence",
    "Optimizer", "SGD", "Adam", "clip_grad_norm",
    "mse_loss", "masked_mse_loss", "huber_loss",
    "save_module", "load_module",
]

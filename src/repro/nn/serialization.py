"""Checkpointing: save/load module parameters as ``.npz`` archives."""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from .module import Module

__all__ = ["save_module", "load_module"]


def save_module(module: Module, path: str | os.PathLike) -> Path:
    """Write ``module``'s state dict to ``path`` (``.npz`` appended if absent)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **module.state_dict())
    return path


def load_module(module: Module, path: str | os.PathLike) -> Module:
    """Load parameters saved by :func:`save_module` into ``module`` in place."""
    with np.load(Path(path)) as archive:
        module.load_state_dict({name: archive[name] for name in archive.files})
    return module

"""Checkpointing: save/load module parameters as ``.npz`` archives.

Writes are atomic (temp file in the target directory + ``os.replace``)
so a crash mid-write can never leave a truncated archive where a
checkpoint used to be -- the previous checkpoint survives intact.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import numpy as np

from .module import Module

__all__ = ["save_module", "load_module", "atomic_savez",
           "flat_parameter_size", "write_flat_parameters",
           "read_flat_parameters"]


def flat_parameter_size(modules: "list[Module] | tuple[Module, ...]") -> int:
    """Total scalar count of all parameters across ``modules``."""
    return sum(module.num_parameters() for module in modules)


def write_flat_parameters(modules, out: np.ndarray) -> None:
    """Serialize all parameters of ``modules`` into ``out`` in place.

    The layout is positional -- module order as given, parameters in
    ``named_parameters`` (depth-first) order within each module -- so a
    reader holding structurally identical modules in the same order can
    reconstruct without any name metadata.  Writing in place lets the
    caller target shared memory (the zero-copy policy broadcast of
    ``repro.train``) without allocating per publish.
    """
    offset = 0
    for module in modules:
        for _, parameter in module.named_parameters():
            size = parameter.data.size
            out[offset:offset + size] = parameter.data.reshape(-1)
            offset += size
    if offset != out.size:
        raise ValueError(
            f"flat vector has {out.size} slots, modules hold {offset} "
            f"parameters")


def read_flat_parameters(modules, flat: np.ndarray) -> None:
    """Load a :func:`write_flat_parameters` vector back into ``modules``.

    Parameter arrays are overwritten in place (``data[...] = ...``), so
    optimizer references and views stay valid.
    """
    offset = 0
    for module in modules:
        for _, parameter in module.named_parameters():
            size = parameter.data.size
            chunk = flat[offset:offset + size]
            parameter.data[...] = chunk.reshape(parameter.data.shape)
            offset += size
    if offset != flat.size:
        raise ValueError(
            f"flat vector has {flat.size} slots, modules hold {offset} "
            f"parameters")


def atomic_savez(path: str | os.PathLike, arrays: dict[str, np.ndarray]) -> Path:
    """Write ``arrays`` to ``path`` as one ``.npz``, atomically.

    The archive is first written to a temporary file in the same
    directory (so the final ``os.replace`` stays on one filesystem) and
    only moved into place once fully flushed.  Readers therefore see
    either the complete old file or the complete new file, never a
    partial write.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".",
                                    suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def save_module(module: Module, path: str | os.PathLike) -> Path:
    """Write ``module``'s state dict to ``path`` (``.npz`` appended if absent)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    return atomic_savez(path, module.state_dict())


def load_module(module: Module, path: str | os.PathLike) -> Module:
    """Load parameters saved by :func:`save_module` into ``module`` in place.

    Raises ``ValueError`` with the offending file and parameter names
    when the archive does not match the module (missing/unexpected keys
    or shape mismatches) -- a wrong-architecture checkpoint must fail
    loudly, never broadcast into the wrong weights.
    """
    path = Path(path)
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    try:
        module.load_state_dict(state)
    except (KeyError, ValueError) as error:
        raise ValueError(
            f"checkpoint {path} does not match {type(module).__name__}: {error}"
        ) from error
    return module

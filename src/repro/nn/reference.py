"""Frozen pre-refactor autograd engine and unfused model references.

The VJP-registry refactor of :mod:`repro.nn.tensor` replaced per-call
backward closures with registered vectorized VJP functions, fused the
LSTM cell, and batched the GAT attention into einsums.  This module
preserves the engine it replaced -- the closure-recording tape plus the
unfused LSTM cell and the per-head attention loop -- as an executable
reference, mirroring how the sim vectorization (PR 1) kept the scalar
step behind ``reference=True``:

* ``tests/nn/test_equivalence_fused.py`` asserts the fused/batched
  implementations reproduce these references to tight tolerance;
* ``benchmarks/test_perf_nn.py`` times :func:`legacy_lstgat_step`
  against the live engine to report the refactor's speedup in
  ``BENCH_nn.json``.

Nothing here is used on any production path; the live engine must never
import this module.  The :class:`LegacyTensor` body is the verbatim
pre-refactor ``Tensor`` (trimmed of ops the references do not need).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "LegacyTensor", "legacy_concat",
    "unfused_lstm_cell", "unfused_lstm_sequence",
    "per_head_graph_attention", "legacy_graph_attention",
    "legacy_masked_mse", "legacy_lstgat_step",
]


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class LegacyTensor:
    """The pre-refactor tape tensor: one backward *closure* per op call.

    Every differentiable op captures its operands in a Python closure
    stored on ``_backward``; :meth:`backward` topologically sorts the
    tape and replays the closures in reverse.  This per-call closure
    construction is exactly the overhead the VJP registry removed.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple["LegacyTensor", ...] = ()

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0])

    def _make_child(self, data: np.ndarray,
                    parents: Iterable["LegacyTensor"]) -> "LegacyTensor":
        parents = tuple(parents)
        requires = any(p.requires_grad for p in parents)
        out = LegacyTensor(data, requires_grad=False)
        out.requires_grad = requires
        if requires:
            out._parents = parents
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient needs a scalar output")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        topo: list[LegacyTensor] = []
        visited: set[int] = set()
        stack: list[tuple[LegacyTensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # ops (verbatim pre-refactor closures)
    # ------------------------------------------------------------------
    def __add__(self, other) -> "LegacyTensor":
        other = other if isinstance(other, LegacyTensor) else LegacyTensor(other)
        out = self._make_child(self.data + other.data, (self, other))
        if out.requires_grad:
            def backward(grad: np.ndarray) -> None:
                if self.requires_grad:
                    self._accumulate(_unbroadcast(grad, self.data.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(grad, other.data.shape))
            out._backward = backward
        return out

    __radd__ = __add__

    def __neg__(self) -> "LegacyTensor":
        out = self._make_child(-self.data, (self,))
        if out.requires_grad:
            out._backward = lambda grad: self._accumulate(-grad)
        return out

    def __sub__(self, other) -> "LegacyTensor":
        other = other if isinstance(other, LegacyTensor) else LegacyTensor(other)
        return self + (-other)

    def __mul__(self, other) -> "LegacyTensor":
        other = other if isinstance(other, LegacyTensor) else LegacyTensor(other)
        out = self._make_child(self.data * other.data, (self, other))
        if out.requires_grad:
            def backward(grad: np.ndarray) -> None:
                if self.requires_grad:
                    self._accumulate(_unbroadcast(grad * other.data, self.data.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(grad * self.data, other.data.shape))
            out._backward = backward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other) -> "LegacyTensor":
        other = other if isinstance(other, LegacyTensor) else LegacyTensor(other)
        out = self._make_child(self.data / other.data, (self, other))
        if out.requires_grad:
            def backward(grad: np.ndarray) -> None:
                if self.requires_grad:
                    self._accumulate(_unbroadcast(grad / other.data, self.data.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(-grad * self.data / (other.data ** 2), other.data.shape))
            out._backward = backward
        return out

    def __matmul__(self, other) -> "LegacyTensor":
        other = other if isinstance(other, LegacyTensor) else LegacyTensor(other)
        out = self._make_child(self.data @ other.data, (self, other))
        if out.requires_grad:
            def backward(grad: np.ndarray) -> None:
                a, b = self.data, other.data
                if self.requires_grad:
                    if b.ndim == 1:
                        grad_a = np.multiply.outer(grad, b) if a.ndim > 1 else grad * b
                    elif a.ndim == 1:
                        grad_a = grad @ b.T if grad.ndim else b @ grad
                        grad_a = _unbroadcast(grad_a, a.shape)
                    else:
                        grad_a = _unbroadcast(grad @ np.swapaxes(b, -1, -2), a.shape)
                    self._accumulate(grad_a)
                if other.requires_grad:
                    if a.ndim == 1 and b.ndim > 1:
                        grad_b = _unbroadcast(np.multiply.outer(a, grad), b.shape)
                    elif b.ndim == 1:
                        grad_b = _unbroadcast((a * grad[..., None]).reshape(-1, a.shape[-1]).sum(axis=0)
                                              if a.ndim > 1 else a * grad, b.shape)
                    else:
                        grad_b = _unbroadcast(np.swapaxes(a, -1, -2) @ grad, b.shape)
                    other._accumulate(grad_b)
            out._backward = backward
        return out

    def exp(self) -> "LegacyTensor":
        value = np.exp(self.data)
        out = self._make_child(value, (self,))
        if out.requires_grad:
            out._backward = lambda grad: self._accumulate(grad * value)
        return out

    def tanh(self) -> "LegacyTensor":
        value = np.tanh(self.data)
        out = self._make_child(value, (self,))
        if out.requires_grad:
            out._backward = lambda grad: self._accumulate(grad * (1.0 - value ** 2))
        return out

    def sigmoid(self) -> "LegacyTensor":
        value = 1.0 / (1.0 + np.exp(-self.data))
        out = self._make_child(value, (self,))
        if out.requires_grad:
            out._backward = lambda grad: self._accumulate(grad * value * (1.0 - value))
        return out

    def leaky_relu(self, negative_slope: float = 0.01) -> "LegacyTensor":
        slope = np.where(self.data > 0, 1.0, negative_slope)
        out = self._make_child(self.data * slope, (self,))
        if out.requires_grad:
            out._backward = lambda grad: self._accumulate(grad * slope)
        return out

    def sum(self, axis: int | tuple[int, ...] | None = None,
            keepdims: bool = False) -> "LegacyTensor":
        out = self._make_child(self.data.sum(axis=axis, keepdims=keepdims), (self,))
        if out.requires_grad:
            def backward(grad: np.ndarray) -> None:
                expanded = grad
                if axis is not None and not keepdims:
                    axes = (axis,) if isinstance(axis, int) else axis
                    for ax in sorted(a % self.data.ndim for a in axes):
                        expanded = np.expand_dims(expanded, ax)
                self._accumulate(np.broadcast_to(expanded, self.data.shape).copy())
            out._backward = backward
        return out

    def mean(self, axis: int | tuple[int, ...] | None = None,
             keepdims: bool = False) -> "LegacyTensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * LegacyTensor(1.0 / count)

    def reshape(self, *shape: int) -> "LegacyTensor":
        out = self._make_child(self.data.reshape(*shape), (self,))
        if out.requires_grad:
            out._backward = lambda grad: self._accumulate(grad.reshape(self.data.shape))
        return out

    def transpose(self, *axes: int) -> "LegacyTensor":
        order = axes or tuple(reversed(range(self.data.ndim)))
        inverse = np.argsort(order)
        out = self._make_child(self.data.transpose(order), (self,))
        if out.requires_grad:
            out._backward = lambda grad: self._accumulate(grad.transpose(inverse))
        return out

    @property
    def T(self) -> "LegacyTensor":
        return self.transpose()

    def __getitem__(self, index) -> "LegacyTensor":
        out = self._make_child(self.data[index], (self,))
        if out.requires_grad:
            def backward(grad: np.ndarray) -> None:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)
            out._backward = backward
        return out

    def softmax(self, axis: int = -1) -> "LegacyTensor":
        shifted = self + LegacyTensor(-self.data.max(axis=axis, keepdims=True))
        exps = shifted.exp()
        return exps / exps.sum(axis=axis, keepdims=True)


def legacy_concat(tensors: Sequence[LegacyTensor], axis: int = 0) -> LegacyTensor:
    """Concatenate legacy tensors along ``axis`` with gradient routing."""
    tensors = list(tensors)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    out = tensors[0]._make_child(data, tensors)
    if out.requires_grad:
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    index = [slice(None)] * grad.ndim
                    index[axis] = slice(start, stop)
                    tensor._accumulate(grad[tuple(index)])
        out._backward = backward
    return out


# ----------------------------------------------------------------------
# unfused model references
# ----------------------------------------------------------------------
def unfused_lstm_cell(inputs: LegacyTensor, hidden: LegacyTensor,
                      cell: LegacyTensor, weight_ih: LegacyTensor,
                      weight_hh: LegacyTensor,
                      bias: LegacyTensor) -> tuple[LegacyTensor, LegacyTensor]:
    """Pre-refactor LSTM step: two matmuls, four slices, seven small ops."""
    gates = inputs @ weight_ih.T + hidden @ weight_hh.T + bias
    h = weight_hh.data.shape[1]
    i_gate = gates[:, 0 * h:1 * h].sigmoid()
    f_gate = gates[:, 1 * h:2 * h].sigmoid()
    g_gate = gates[:, 2 * h:3 * h].tanh()
    o_gate = gates[:, 3 * h:4 * h].sigmoid()
    new_cell = f_gate * cell + i_gate * g_gate
    new_hidden = o_gate * new_cell.tanh()
    return new_hidden, new_cell


def unfused_lstm_sequence(sequence: LegacyTensor, weight_ih: LegacyTensor,
                          weight_hh: LegacyTensor, bias: LegacyTensor
                          ) -> tuple[LegacyTensor, LegacyTensor, LegacyTensor]:
    """Run the unfused cell over ``(batch, time, features)``.

    Returns ``(outputs, hidden, cell)`` with outputs ``(batch, time, H)``.
    """
    batch, steps, _ = sequence.data.shape
    size = weight_hh.data.shape[1]
    hidden = LegacyTensor(np.zeros((batch, size)))
    cell = LegacyTensor(np.zeros((batch, size)))
    outputs: list[LegacyTensor] = []
    for step in range(steps):
        hidden, cell = unfused_lstm_cell(sequence[:, step, :], hidden, cell,
                                         weight_ih, weight_hh, bias)
        outputs.append(hidden.reshape(batch, 1, size))
    return legacy_concat(outputs, axis=1), hidden, cell


def _attention_scores_one_head(targets: LegacyTensor, contributors: LegacyTensor,
                               phi1_k: LegacyTensor, src_k: LegacyTensor,
                               dst_k: LegacyTensor, negative_slope: float,
                               padding: np.ndarray) -> LegacyTensor:
    """Eq. 10 logits for one head: ``(z, n, 7)``."""
    z, n = targets.data.shape[0], targets.data.shape[1]
    contributors_flat = contributors.reshape(z, n * contributors.data.shape[2],
                                             contributors.data.shape[3])
    th = (targets @ phi1_k.T)                                    # (z, n, Dh)
    tc = (contributors_flat @ phi1_k.T).reshape(
        z, n, contributors.data.shape[2], -1)                    # (z, n, 7, Dh)
    score_t = (th * src_k).sum(axis=-1)                          # (z, n)
    score_c = (tc * dst_k).sum(axis=-1)                          # (z, n, 7)
    scores = score_t.reshape(z, n, 1) + score_c
    scores = scores.leaky_relu(negative_slope)
    if padding.any():
        scores = scores + LegacyTensor(np.where(padding, -1e9, 0.0))
    return scores


def per_head_graph_attention(params: dict[str, np.ndarray],
                             targets_data: np.ndarray,
                             contributors_data: np.ndarray,
                             num_heads: int,
                             negative_slope: float = 0.2
                             ) -> tuple[LegacyTensor, dict[str, LegacyTensor]]:
    """Explicit per-head GAT loop: the conceptual reference for the einsum.

    Processes each attention head through its own slice of ``phi1`` /
    ``phi3`` and its own score vectors, then concatenates the per-head
    aggregations -- mathematically the definition the batched einsum
    implementation must reproduce.

    Returns ``(output, leaves)`` where ``leaves`` maps parameter names
    to the :class:`LegacyTensor` leaves so callers can read gradients.
    """
    leaves = {name: LegacyTensor(value, requires_grad=True)
              for name, value in params.items()}
    phi1, phi3 = leaves["phi1"], leaves["phi3"]
    attn_src, attn_dst = leaves["attn_src"], leaves["attn_dst"]
    targets = LegacyTensor(targets_data)
    contributors = LegacyTensor(contributors_data)
    z, n, slots, feat = contributors_data.shape
    head_dim = phi1.data.shape[0] // num_heads
    padding = (np.abs(contributors_data).sum(axis=-1) == 0.0)

    target_rows = targets.reshape(z, n, 1, feat)
    edges = contributors - target_rows
    pair = legacy_concat([contributors, edges], axis=3)          # (z, n, 7, 2F)
    pair_flat = pair.reshape(z, n * slots, 2 * feat)

    per_head: list[LegacyTensor] = []
    for head in range(num_heads):
        rows = slice(head * head_dim, (head + 1) * head_dim)
        scores = _attention_scores_one_head(
            targets, contributors, phi1[rows], attn_src[head], attn_dst[head],
            negative_slope, padding)
        alpha = scores.softmax(axis=2)                           # (z, n, 7)
        values = (pair_flat @ phi3[rows].T).reshape(z, n, slots, head_dim)
        weighted = values * alpha.reshape(z, n, slots, 1)
        per_head.append(weighted.sum(axis=2))                    # (z, n, Dh)
    return legacy_concat(per_head, axis=2), leaves


def legacy_graph_attention(leaves: dict[str, LegacyTensor],
                           targets: LegacyTensor, contributors: LegacyTensor,
                           num_heads: int,
                           negative_slope: float = 0.2) -> LegacyTensor:
    """Verbatim pre-refactor head-batched attention forward (Eqs. 10-11)."""
    phi1, phi3 = leaves["phi1"], leaves["phi3"]
    attn_src, attn_dst = leaves["attn_src"], leaves["attn_dst"]
    z, n = targets.data.shape[0], targets.data.shape[1]
    slots = contributors.data.shape[2]
    hidden_dim = phi1.data.shape[0]
    head_dim = hidden_dim // num_heads
    transformed_targets = (targets @ phi1.T).reshape(z, n, num_heads, head_dim)
    transformed_contrib = (contributors @ phi1.T).reshape(
        z, n, slots, num_heads, head_dim)
    score_target = (transformed_targets * attn_src).sum(axis=-1)
    score_contrib = (transformed_contrib * attn_dst).sum(axis=-1)
    scores = score_target.reshape(z, n, 1, num_heads) + score_contrib
    scores = scores.leaky_relu(negative_slope)
    padding = (np.abs(contributors.data).sum(axis=-1) == 0.0)
    if padding.any():
        scores = scores + LegacyTensor(np.where(padding, -1e9, 0.0)[:, :, :, None])
    alpha = scores.softmax(axis=2)
    target_rows = targets.reshape(z, n, 1, targets.data.shape[-1])
    edges = contributors - target_rows
    values = (legacy_concat([contributors, edges], axis=3) @ phi3.T).reshape(
        z, n, slots, num_heads, head_dim)
    weighted = values * alpha.reshape(z, n, slots, num_heads, 1)
    return weighted.sum(axis=2).reshape(z, n, hidden_dim)


def legacy_masked_mse(prediction: LegacyTensor, truth: np.ndarray,
                      mask: np.ndarray) -> LegacyTensor:
    """Pre-refactor Eq. 14 masked MSE on legacy tensors."""
    mask = np.asarray(mask, dtype=np.float64)
    kept = float(mask.sum())
    diff = prediction - LegacyTensor(truth)
    weighted = diff * diff * LegacyTensor(mask[:, None])
    return weighted.sum() * LegacyTensor(1.0 / (kept * prediction.data.shape[1]))


def legacy_lstgat_step(state: dict[str, np.ndarray], targets: np.ndarray,
                       contributors: np.ndarray, ego: np.ndarray,
                       baseline: np.ndarray, truth: np.ndarray,
                       mask: np.ndarray, num_heads: int = 4
                       ) -> tuple[np.ndarray, float, dict[str, np.ndarray]]:
    """One full pre-refactor LST-GAT training step (forward + backward).

    ``state`` is a live :class:`~repro.perception.lstgat.LSTGAT`
    ``state_dict()``; the computation mirrors the pre-refactor
    ``forward_graph`` + masked-MSE loss exactly, so timing this function
    against the live model measures only the engine refactor.

    Returns ``(prediction, loss, grads)`` with grads keyed like the
    state dict.
    """
    leaves = {name: LegacyTensor(value, requires_grad=True)
              for name, value in state.items()}
    attention_leaves = {
        "phi1": leaves["attention.phi1"], "phi3": leaves["attention.phi3"],
        "attn_src": leaves["attention.attn_src"],
        "attn_dst": leaves["attention.attn_dst"],
    }
    targets_t = LegacyTensor(targets)
    updated = legacy_graph_attention(attention_leaves, targets_t,
                                     LegacyTensor(contributors), num_heads)
    combined = legacy_concat([updated, targets_t, LegacyTensor(ego)], axis=2)
    sequence = combined.transpose(1, 0, 2)
    _, hidden, _ = unfused_lstm_sequence(
        sequence, leaves["lstm.cell.weight_ih"], leaves["lstm.cell.weight_hh"],
        leaves["lstm.cell.bias"])
    residual = hidden @ leaves["head.weight"].T + leaves["head.bias"]
    prediction = residual + LegacyTensor(baseline)
    loss = legacy_masked_mse(prediction, truth, mask)
    loss.backward()
    grads = {name: leaf.grad for name, leaf in leaves.items()}
    return prediction.data, loss.item(), grads

"""LSTM layers (Hochreiter & Schmidhuber 1997) used across the paper.

LST-GAT (Eq. 12) and the prediction baselines (LSTM-MLP, ED-LSTM,
GAS-LED) all use batched single-layer LSTMs.  The implementation here
processes ``(batch, time, features)`` sequences; "batch" carries the
parallel target vehicles, which is exactly the parallel-prediction trick
the paper exploits (Sec. III-B, "batched sequences").
"""

from __future__ import annotations

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor, concat
from ..seeding import resolve_rng

__all__ = ["LSTMCell", "LSTM"]


class LSTMCell(Module):
    """A single LSTM step with the standard four-gate formulation.

    Gate layout inside the packed weight matrices is ``[i, f, g, o]``
    (input, forget, cell candidate, output) to match PyTorch.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = resolve_rng(rng)
        self.input_size = input_size
        self.hidden_size = hidden_size
        limit = 1.0 / np.sqrt(hidden_size)
        self.weight_ih = Parameter(init.uniform((4 * hidden_size, input_size), rng, limit))
        self.weight_hh = Parameter(init.uniform((4 * hidden_size, hidden_size), rng, limit))
        self.bias = Parameter(np.zeros(4 * hidden_size))

    def forward(self, inputs: Tensor, hidden: Tensor, cell: Tensor) -> tuple[Tensor, Tensor]:
        """Advance one time step.

        Parameters
        ----------
        inputs:
            ``(batch, input_size)`` features for this step.
        hidden / cell:
            ``(batch, hidden_size)`` previous state.

        Returns
        -------
        ``(new_hidden, new_cell)``.
        """
        gates = inputs @ self.weight_ih.T + hidden @ self.weight_hh.T + self.bias
        h = self.hidden_size
        i_gate = gates[:, 0 * h:1 * h].sigmoid()
        f_gate = gates[:, 1 * h:2 * h].sigmoid()
        g_gate = gates[:, 2 * h:3 * h].tanh()
        o_gate = gates[:, 3 * h:4 * h].sigmoid()
        new_cell = f_gate * cell + i_gate * g_gate
        new_hidden = o_gate * new_cell.tanh()
        return new_hidden, new_cell

    def initial_state(self, batch_size: int) -> tuple[Tensor, Tensor]:
        """Return zero hidden/cell state for a batch (Eq. 12 default)."""
        zeros = np.zeros((batch_size, self.hidden_size))
        return Tensor(zeros), Tensor(zeros.copy())


class LSTM(Module):
    """Run an :class:`LSTMCell` over a full sequence.

    Returns either the final hidden state or all per-step hidden states,
    which is what the encoder-decoder baselines need.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(self, sequence: Tensor,
                state: tuple[Tensor, Tensor] | None = None) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        """Process a ``(batch, time, features)`` sequence.

        Returns
        -------
        outputs:
            ``(batch, time, hidden)`` hidden states for every step.
        (hidden, cell):
            Final state, each ``(batch, hidden)``.
        """
        batch, steps, _ = sequence.shape
        hidden, cell = state if state is not None else self.cell.initial_state(batch)
        outputs: list[Tensor] = []
        for step in range(steps):
            hidden, cell = self.cell(sequence[:, step, :], hidden, cell)
            outputs.append(hidden.reshape(batch, 1, self.hidden_size))
        return concat(outputs, axis=1), (hidden, cell)

"""LSTM layers (Hochreiter & Schmidhuber 1997) used across the paper.

LST-GAT (Eq. 12) and the prediction baselines (LSTM-MLP, ED-LSTM,
GAS-LED) all use batched single-layer LSTMs.  The implementation here
processes ``(batch, time, features)`` sequences; "batch" carries the
parallel target vehicles, which is exactly the parallel-prediction trick
the paper exploits (Sec. III-B, "batched sequences").

The cell is *fused*: the input projection for the whole sequence is one
``linear`` over all four gates at once, and the gate nonlinearities plus
state update collapse into the single ``lstm_step`` tape node registered
below -- about 6 nodes per time step where the textbook formulation
records ~18.  ``tests/nn/test_equivalence_fused.py`` pins this fused
path against the unfused reference in :mod:`repro.nn.reference`, and
``tests/nn/test_gradcheck_registry.py`` finite-difference-checks the
``lstm_step`` VJPs directly.
"""

from __future__ import annotations

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor, defvjp, linear
from ..seeding import resolve_rng

__all__ = ["LSTMCell", "LSTM", "lstm_step", "lstm_sequence"]


def lstm_step(gates: Tensor, cell: Tensor) -> Tensor:
    """Fused LSTM gate activation + state update as one tape node.

    Parameters
    ----------
    gates:
        ``(batch, 4 * hidden)`` pre-activation gates packed ``[i, f, g, o]``
        (the PyTorch layout) -- i.e. ``x @ W_ih.T + h @ W_hh.T + b``.
    cell:
        ``(batch, hidden)`` previous cell state.

    Returns
    -------
    ``(2, batch, hidden)`` stacked ``[new_hidden, new_cell]``; index with
    ``out[0]`` / ``out[1]``.
    """
    hidden_size = cell.data.shape[-1]
    raw = gates.data.reshape(*gates.data.shape[:-1], 4, hidden_size)
    i_gate = 1.0 / (1.0 + np.exp(-raw[..., 0, :]))
    f_gate = 1.0 / (1.0 + np.exp(-raw[..., 1, :]))
    g_gate = np.tanh(raw[..., 2, :])
    o_gate = 1.0 / (1.0 + np.exp(-raw[..., 3, :]))
    new_cell = f_gate * cell.data + i_gate * g_gate
    tanh_cell = np.tanh(new_cell)
    out = gates._make_child(np.stack([o_gate * tanh_cell, new_cell]),
                            (gates, cell))
    if out.requires_grad:
        out._op = "lstm_step"
        out._ctx = (i_gate, f_gate, g_gate, o_gate, tanh_cell)
    return out


def _vjp_lstm_step_gates(grad, out, ctx, gates, cell):
    i_gate, f_gate, g_gate, o_gate, tanh_cell = ctx
    grad_hidden, grad_cell = grad[0], grad[1]
    # Total gradient reaching the new cell state: the direct path plus
    # the one through new_hidden = o * tanh(new_cell).
    grad_c = grad_cell + grad_hidden * o_gate * (1.0 - tanh_cell * tanh_cell)
    parts = np.empty((*i_gate.shape[:-1], 4, i_gate.shape[-1]))
    parts[..., 0, :] = grad_c * g_gate * i_gate * (1.0 - i_gate)
    parts[..., 1, :] = grad_c * cell * f_gate * (1.0 - f_gate)
    parts[..., 2, :] = grad_c * i_gate * (1.0 - g_gate * g_gate)
    parts[..., 3, :] = grad_hidden * tanh_cell * o_gate * (1.0 - o_gate)
    return parts.reshape(gates.shape)


def _vjp_lstm_step_cell(grad, out, ctx, gates, cell):
    i_gate, f_gate, g_gate, o_gate, tanh_cell = ctx
    return (grad[1] + grad[0] * o_gate * (1.0 - tanh_cell * tanh_cell)) * f_gate


defvjp("lstm_step", _vjp_lstm_step_gates, _vjp_lstm_step_cell)


def lstm_sequence(input_proj: Tensor, weight_hh: Tensor,
                  hidden: Tensor, cell: Tensor) -> Tensor:
    """Whole LSTM recurrence over a sequence as a *single* tape node.

    The input projection ``x @ W_ih.T + b`` is position-independent and
    arrives precomputed for all steps (one big ``linear``); only the
    ``h @ W_hh.T`` recurrence is inherently sequential, and that loop
    runs here in raw numpy with no tape traffic.  Backward is one fused
    reverse sweep (registered as a variadic VJP so the gradients of all
    four inputs come out of a single pass).

    Parameters
    ----------
    input_proj:
        ``(batch, steps, 4 * hidden)`` precomputed input projections,
        gates packed ``[i, f, g, o]``.
    weight_hh:
        ``(4 * hidden, hidden)`` recurrent weight.
    hidden / cell:
        ``(batch, hidden)`` initial state.

    Returns
    -------
    ``(batch, steps + 1, hidden)``: positions ``[:, t]`` for
    ``t < steps`` are the per-step hidden states; position
    ``[:, steps]`` is the final cell state.  Slicing views (outputs,
    final hidden, final cell) all route their gradients back into this
    one node.
    """
    proj = input_proj.data
    batch, steps, packed_dim = proj.shape
    hidden_size = packed_dim // 4
    h = hidden.data
    recurrent_t = weight_hh.data.T
    out_data = np.empty((batch, steps + 1, hidden_size))
    # Activated gates double as the matmul output buffer: the raw
    # pre-activations land in gates[t] and are squashed in place.
    gates = np.empty((steps, batch, 4, hidden_size))
    flat_gates = gates.reshape(steps, batch, packed_dim)
    tanh_cells = np.empty((steps, batch, hidden_size))
    # cells[t] is the cell state *entering* step t; cells[steps] the final.
    cells = np.empty((steps + 1, batch, hidden_size))
    cells[0] = cell.data
    scratch = np.empty((batch, hidden_size))
    for t in range(steps):
        raw_flat = flat_gates[t]
        np.matmul(h, recurrent_t, out=raw_flat)
        raw_flat += proj[:, t]
        raw = gates[t]
        # All four gates in one ufunc chain: sigmoid for i/f/o directly,
        # and tanh(x) = 2*sigmoid(2x) - 1 for the g candidate.
        g_gate = raw[:, 2]
        g_gate *= 2.0
        np.negative(raw, out=raw)
        np.exp(raw, out=raw)
        raw += 1.0
        np.reciprocal(raw, out=raw)
        g_gate *= 2.0
        g_gate -= 1.0
        c_new = np.multiply(raw[:, 1], cells[t], out=cells[t + 1])
        np.multiply(raw[:, 0], g_gate, out=scratch)
        c_new += scratch
        tanh_c = np.tanh(c_new, out=tanh_cells[t])
        h = np.multiply(raw[:, 3], tanh_c, out=out_data[:, t])
    out_data[:, steps] = cells[steps]
    out = input_proj._make_child(out_data, (input_proj, weight_hh, hidden, cell))
    if out.requires_grad:
        out._op = "lstm_sequence"
        out._ctx = (gates, tanh_cells, cells)
    return out


def _vjp_lstm_sequence(grad, out, ctx, parent_data):
    proj, weight_hh, hidden0, cell0 = parent_data
    gates, tanh_cells, cells = ctx
    steps, batch, _, hidden_size = gates.shape
    grad_proj = np.empty_like(proj)
    grad_cell = grad[:, steps].copy()
    grad_hidden = np.zeros((batch, hidden_size))
    scratch = np.empty((batch, hidden_size))
    # Everything that does not depend on the sequential carry is
    # precomputed in bulk over all steps; the loop itself is ~8 numpy
    # calls per step.
    i_gate = gates[:, :, 0]
    f_gate = gates[:, :, 1]
    g_gate = gates[:, :, 2]
    o_gate = gates[:, :, 3]
    # d new_cell / d pre-activation, per gate, stacked (steps, B, 3, H).
    cell_paths = np.empty((steps, batch, 3, hidden_size))
    np.multiply(g_gate, i_gate * (1.0 - i_gate), out=cell_paths[:, :, 0])
    np.multiply(cells[:steps], f_gate * (1.0 - f_gate), out=cell_paths[:, :, 1])
    np.multiply(i_gate, 1.0 - g_gate * g_gate, out=cell_paths[:, :, 2])
    o_path = tanh_cells * (o_gate * (1.0 - o_gate))   # d h / d o-pre-activation
    tanh_slope = (1.0 - tanh_cells * tanh_cells) * o_gate  # d h / d new_cell
    for t in range(steps - 1, -1, -1):
        grad_hidden += grad[:, t]
        # grad_c = grad_cell + grad_hidden * d h / d new_cell
        np.multiply(grad_hidden, tanh_slope[t], out=scratch)
        grad_c = grad_cell
        grad_c += scratch
        # Gate deltas go straight into the grad_proj slot for this step.
        delta = grad_proj[:, t].reshape(batch, 4, hidden_size)
        np.multiply(grad_c[:, None, :], cell_paths[t], out=delta[:, :3])
        np.multiply(grad_hidden, o_path[t], out=delta[:, 3])
        np.matmul(grad_proj[:, t], weight_hh, out=grad_hidden)
        np.multiply(grad_c, f_gate[t], out=grad_cell)
    # One big matmul accumulates the recurrent-weight gradient:
    # sum_t delta_t^T h_{t-1}, with h_{t-1} taken from the forward's own
    # output slab (plus the initial hidden state).
    prev_hidden = np.empty((steps, batch, hidden_size))
    prev_hidden[0] = hidden0
    if steps > 1:
        prev_hidden[1:] = out[:, :steps - 1].transpose(1, 0, 2)
    grad_weight = grad_proj.transpose(1, 0, 2).reshape(-1, 4 * hidden_size).T @ \
        prev_hidden.reshape(-1, hidden_size)
    return [grad_proj, grad_weight, grad_hidden, grad_cell]


defvjp("lstm_sequence", _vjp_lstm_sequence, variadic=True)


class LSTMCell(Module):
    """A single LSTM step with the standard four-gate formulation.

    Gate layout inside the packed weight matrices is ``[i, f, g, o]``
    (input, forget, cell candidate, output) to match PyTorch.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = resolve_rng(rng)
        self.input_size = input_size
        self.hidden_size = hidden_size
        limit = 1.0 / np.sqrt(hidden_size)
        self.weight_ih = Parameter(init.uniform((4 * hidden_size, input_size), rng, limit))
        self.weight_hh = Parameter(init.uniform((4 * hidden_size, hidden_size), rng, limit))
        self.bias = Parameter(np.zeros(4 * hidden_size))

    def forward(self, inputs: Tensor, hidden: Tensor, cell: Tensor) -> tuple[Tensor, Tensor]:
        """Advance one time step.

        Parameters
        ----------
        inputs:
            ``(batch, input_size)`` features for this step.
        hidden / cell:
            ``(batch, hidden_size)`` previous state.

        Returns
        -------
        ``(new_hidden, new_cell)``.
        """
        gates = linear(inputs, self.weight_ih, self.bias) + linear(hidden, self.weight_hh)
        state = lstm_step(gates, cell)
        return state[0], state[1]

    def initial_state(self, batch_size: int) -> tuple[Tensor, Tensor]:
        """Return zero hidden/cell state for a batch (Eq. 12 default)."""
        zeros = np.zeros((batch_size, self.hidden_size))
        return Tensor(zeros), Tensor(zeros.copy())


class LSTM(Module):
    """Run an :class:`LSTMCell` over a full sequence.

    Returns either the final hidden state or all per-step hidden states,
    which is what the encoder-decoder baselines need.  The input
    projection ``x @ W_ih.T + b`` for *all* time steps is hoisted out of
    the recurrence into one big ``linear``; only the ``h @ W_hh.T``
    half must stay sequential.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(self, sequence: Tensor,
                state: tuple[Tensor, Tensor] | None = None) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        """Process a ``(batch, time, features)`` sequence.

        Returns
        -------
        outputs:
            ``(batch, time, hidden)`` hidden states for every step.
        (hidden, cell):
            Final state, each ``(batch, hidden)``.
        """
        batch, steps, _ = sequence.shape
        hidden, cell = state if state is not None else self.cell.initial_state(batch)
        input_proj = linear(sequence, self.cell.weight_ih, self.cell.bias)
        packed = lstm_sequence(input_proj, self.cell.weight_hh, hidden, cell)
        return (packed[:, :steps], (packed[:, steps - 1], packed[:, steps]))

"""Gradient-based optimizers.

Adam is the paper's optimizer for both LST-GAT (lr 1e-3, batch 64) and
BP-DQN; SGD is provided for tests and ablations.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


class Optimizer:
    """Base optimizer over a list of parameters."""

    def __init__(self, parameters: Sequence[Parameter], lr: float) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear gradient buffers of all managed parameters."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 0.01,
                 momentum: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one update; parameters without gradients are skipped."""
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += parameter.grad
                parameter.data -= self.lr * velocity
            else:
                parameter.data -= self.lr * parameter.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba 2014) with bias correction."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one Adam update; parameters without gradients are skipped."""
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.  Keeps RL training stable when TD
    errors spike early in training.
    """
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float((g * g).sum()) for g in grads)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for grad in grads:
            grad *= scale
    return total

"""Tape-based reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of :mod:`repro.nn`.  The paper's models
(LST-GAT, BP-DQN and all comparators) are defined in PyTorch; this
engine reproduces the subset of functionality they need -- dense ops,
broadcasting, matmul, element-wise nonlinearities, reductions, indexing
and concatenation -- with exact reverse-mode gradients, so the training
mathematics of the paper is preserved without a GPU dependency.

The design follows the classic "define-by-run" tape:

* every :class:`Tensor` wraps a ``numpy.ndarray`` plus an optional
  gradient buffer;
* each differentiable op records a closure that, given the output
  gradient, accumulates input gradients;
* :meth:`Tensor.backward` topologically sorts the tape and replays the
  closures in reverse.

Gradients are verified against central finite differences by the
property tests in ``tests/nn/test_gradcheck.py``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables tape recording.

    Used for target-network evaluation and inference, mirroring
    ``torch.no_grad()``.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous


def is_grad_enabled() -> bool:
    """Return whether ops currently record backward closures."""
    return _GRAD_ENABLED


def _as_array(value: "Tensor | np.ndarray | float | int | Sequence") -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting.

    Summation runs over the leading dimensions numpy added and over any
    axis that was broadcast from size one.
    """
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode gradient support.

    Parameters
    ----------
    data:
        Array-like payload; always stored as ``float64`` for numerical
        robustness in gradient checks.
    requires_grad:
        Whether gradients should flow into this tensor.  Leaf tensors
        with ``requires_grad=True`` act as trainable parameters.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        """Return a zero-filled tensor of the given shape."""
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        """Return a one-filled tensor of the given shape."""
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        """Return the single scalar value held by this tensor."""
        if self.data.size != 1:
            raise ValueError("item() is only defined for single-element tensors")
        return float(self.data.reshape(-1)[0])

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient buffer."""
        self.grad = None

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{flag})"

    # ------------------------------------------------------------------
    # autograd core
    # ------------------------------------------------------------------
    def _make_child(self, data: np.ndarray, parents: Iterable["Tensor"]) -> "Tensor":
        parents = tuple(parents)
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=False)
        out.requires_grad = requires
        if requires:
            out._parents = parents
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded tape.

        Parameters
        ----------
        grad:
            Gradient of the final objective w.r.t. this tensor.  Defaults
            to ``1`` which requires this tensor to be a scalar.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient needs a scalar output")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            raise ValueError(f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}")

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # arithmetic ops
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make_child(self.data + other.data, (self, other))
        if out.requires_grad:
            def backward(grad: np.ndarray) -> None:
                if self.requires_grad:
                    self._accumulate(_unbroadcast(grad, self.data.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(grad, other.data.shape))
            out._backward = backward
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = self._make_child(-self.data, (self,))
        if out.requires_grad:
            out._backward = lambda grad: self._accumulate(-grad)
        return out

    def __sub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other)

    def __rsub__(self, other) -> "Tensor":
        return (-self) + other

    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make_child(self.data * other.data, (self, other))
        if out.requires_grad:
            def backward(grad: np.ndarray) -> None:
                if self.requires_grad:
                    self._accumulate(_unbroadcast(grad * other.data, self.data.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(grad * self.data, other.data.shape))
            out._backward = backward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make_child(self.data / other.data, (self, other))
        if out.requires_grad:
            def backward(grad: np.ndarray) -> None:
                if self.requires_grad:
                    self._accumulate(_unbroadcast(grad / other.data, self.data.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(-grad * self.data / (other.data ** 2), other.data.shape))
            out._backward = backward
        return out

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out = self._make_child(self.data ** exponent, (self,))
        if out.requires_grad:
            def backward(grad: np.ndarray) -> None:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))
            out._backward = backward
        return out

    def __matmul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make_child(self.data @ other.data, (self, other))
        if out.requires_grad:
            def backward(grad: np.ndarray) -> None:
                a, b = self.data, other.data
                if self.requires_grad:
                    if b.ndim == 1:
                        grad_a = np.multiply.outer(grad, b) if a.ndim > 1 else grad * b
                    elif a.ndim == 1:
                        grad_a = grad @ b.T if grad.ndim else b @ grad
                        grad_a = _unbroadcast(grad_a, a.shape)
                    else:
                        grad_a = _unbroadcast(grad @ np.swapaxes(b, -1, -2), a.shape)
                    self._accumulate(grad_a)
                if other.requires_grad:
                    if a.ndim == 1 and b.ndim > 1:
                        grad_b = _unbroadcast(np.multiply.outer(a, grad), b.shape)
                    elif b.ndim == 1:
                        grad_b = _unbroadcast((a * grad[..., None]).reshape(-1, a.shape[-1]).sum(axis=0)
                                              if a.ndim > 1 else a * grad, b.shape)
                    else:
                        grad_b = _unbroadcast(np.swapaxes(a, -1, -2) @ grad, b.shape)
                    other._accumulate(grad_b)
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # element-wise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        value = np.exp(self.data)
        out = self._make_child(value, (self,))
        if out.requires_grad:
            out._backward = lambda grad: self._accumulate(grad * value)
        return out

    def log(self) -> "Tensor":
        out = self._make_child(np.log(self.data), (self,))
        if out.requires_grad:
            out._backward = lambda grad: self._accumulate(grad / self.data)
        return out

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)
        out = self._make_child(value, (self,))
        if out.requires_grad:
            out._backward = lambda grad: self._accumulate(grad * (1.0 - value ** 2))
        return out

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-self.data))
        out = self._make_child(value, (self,))
        if out.requires_grad:
            out._backward = lambda grad: self._accumulate(grad * value * (1.0 - value))
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out = self._make_child(self.data * mask, (self,))
        if out.requires_grad:
            out._backward = lambda grad: self._accumulate(grad * mask)
        return out

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        slope = np.where(self.data > 0, 1.0, negative_slope)
        out = self._make_child(self.data * slope, (self,))
        if out.requires_grad:
            out._backward = lambda grad: self._accumulate(grad * slope)
        return out

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out = self._make_child(np.abs(self.data), (self,))
        if out.requires_grad:
            out._backward = lambda grad: self._accumulate(grad * sign)
        return out

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    # ------------------------------------------------------------------
    # reductions and shaping
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out = self._make_child(self.data.sum(axis=axis, keepdims=keepdims), (self,))
        if out.requires_grad:
            def backward(grad: np.ndarray) -> None:
                expanded = grad
                if axis is not None and not keepdims:
                    axes = (axis,) if isinstance(axis, int) else axis
                    for ax in sorted(a % self.data.ndim for a in axes):
                        expanded = np.expand_dims(expanded, ax)
                self._accumulate(np.broadcast_to(expanded, self.data.shape).copy())
            out._backward = backward
        return out

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        value = self.data.max(axis=axis, keepdims=keepdims)
        out = self._make_child(value, (self,))
        if out.requires_grad:
            def backward(grad: np.ndarray) -> None:
                expanded_value = self.data.max(axis=axis, keepdims=True) if axis is not None else value
                mask = (self.data == expanded_value).astype(np.float64)
                mask /= mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
                expanded_grad = grad
                if axis is not None and not keepdims:
                    expanded_grad = np.expand_dims(grad, axis)
                self._accumulate(mask * expanded_grad)
            out._backward = backward
        return out

    def reshape(self, *shape: int) -> "Tensor":
        out = self._make_child(self.data.reshape(*shape), (self,))
        if out.requires_grad:
            out._backward = lambda grad: self._accumulate(grad.reshape(self.data.shape))
        return out

    def transpose(self, *axes: int) -> "Tensor":
        order = axes or tuple(reversed(range(self.data.ndim)))
        inverse = np.argsort(order)
        out = self._make_child(self.data.transpose(order), (self,))
        if out.requires_grad:
            out._backward = lambda grad: self._accumulate(grad.transpose(inverse))
        return out

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out = self._make_child(self.data[index], (self,))
        if out.requires_grad:
            def backward(grad: np.ndarray) -> None:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # composite helpers
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        """Numerically stable softmax along ``axis`` (fully differentiable)."""
        shifted = self - Tensor(self.data.max(axis=axis, keepdims=True))
        exps = shifted.exp()
        return exps / exps.sum(axis=axis, keepdims=True)

    def clip_value(self, low: float, high: float) -> "Tensor":
        """Clamp values to ``[low, high]``; gradient is zero outside the range."""
        mask = (self.data >= low) & (self.data <= high)
        out = self._make_child(np.clip(self.data, low, high), (self,))
        if out.requires_grad:
            out._backward = lambda grad: self._accumulate(grad * mask)
        return out


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = list(tensors)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    out = tensors[0]._make_child(data, tensors)
    if out.requires_grad:
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    index = [slice(None)] * grad.ndim
                    index[axis] = slice(start, stop)
                    tensor._accumulate(grad[tuple(index)])
        out._backward = backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient routing."""
    tensors = list(tensors)
    data = np.stack([t.data for t in tensors], axis=axis)
    out = tensors[0]._make_child(data, tensors)
    if out.requires_grad:
        def backward(grad: np.ndarray) -> None:
            parts = np.split(grad, len(tensors), axis=axis)
            for tensor, part in zip(tensors, parts):
                if tensor.requires_grad:
                    tensor._accumulate(np.squeeze(part, axis=axis))
        out._backward = backward
    return out

"""Tape-based reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of :mod:`repro.nn`.  The paper's models
(LST-GAT, BP-DQN and all comparators) are defined in PyTorch; this
engine reproduces the subset of functionality they need -- dense ops,
broadcasting, matmul, einsum, element-wise nonlinearities, reductions,
indexing and concatenation -- with exact reverse-mode gradients, so the
training mathematics of the paper is preserved without a GPU
dependency.

The design is a "define-by-run" tape over a **VJP registry** (the
closure-free idiom of HIPS autograd):

* every primitive op registers, once at import time, one vectorized
  vector-Jacobian-product function per input via :func:`defvjp`;
* each op call records only ``(op name, parents, ctx)`` on its output
  node -- no per-call Python closure is constructed;
* :meth:`Tensor.backward` topologically sorts the tape and dispatches
  the registered VJPs in reverse, accumulating into gradient buffers
  drawn from a shape-keyed pool that is reused across training steps.

Compared with the closure tape it replaced (preserved verbatim in
:mod:`repro.nn.reference`), recording a node costs an attribute write
instead of a closure allocation, backward dispatch is a dict lookup
instead of a call into captured cell variables, and gradient buffers
are recycled instead of reallocated every step.  ``BENCH_nn.json``
(``benchmarks/test_perf_nn.py``) tracks the resulting throughput.

Gradients of **every** registered op are verified against central
finite differences by ``tests/nn/test_gradcheck_registry.py``; an op
cannot be registered without a gradcheck case.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "concat", "stack",
           "einsum", "linear", "defvjp", "registered_ops"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables tape recording.

    Used for target-network evaluation and inference, mirroring
    ``torch.no_grad()``.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous


def is_grad_enabled() -> bool:
    """Return whether ops currently record tape nodes."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting.

    Summation runs over the leading dimensions numpy added and over any
    axis that was broadcast from size one.
    """
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


# ----------------------------------------------------------------------
# VJP registry
# ----------------------------------------------------------------------
#: A per-input VJP: ``vjp(grad, out_data, ctx, *parent_data)`` returns
#: the gradient for that input, already reduced to the input's shape.
VjpFn = Callable[..., np.ndarray]


class OpSpec:
    """Registered backward rule for one primitive op.

    ``vjps`` holds one function per positional input (``None`` marks a
    non-differentiable slot).  Variadic ops (``concat``/``stack``)
    register a single function returning one gradient per parent.
    """

    __slots__ = ("name", "vjps", "variadic")

    def __init__(self, name: str, vjps: tuple[VjpFn | None, ...],
                 variadic: bool) -> None:
        self.name = name
        self.vjps = vjps
        self.variadic = variadic


_VJP_REGISTRY: dict[str, OpSpec] = {}


def defvjp(name: str, *vjps: VjpFn | None, variadic: bool = False) -> None:
    """Register the VJP functions of primitive op ``name``.

    Called once per op at import time; re-registration is an error so
    two modules cannot silently fight over an op name.  Every
    registered op must have a finite-difference case in
    ``tests/nn/test_gradcheck_registry.py`` -- the suite fails on any
    op registered without one.
    """
    if name in _VJP_REGISTRY:
        raise ValueError(f"op {name!r} is already registered")
    if variadic and len(vjps) != 1:
        raise ValueError("variadic ops register exactly one VJP function")
    _VJP_REGISTRY[name] = OpSpec(name, vjps, variadic)


def registered_ops() -> list[str]:
    """Sorted names of every op in the VJP registry."""
    return sorted(_VJP_REGISTRY)


# ----------------------------------------------------------------------
# gradient buffer pool
# ----------------------------------------------------------------------
class _GradientBufferPool:
    """Shape-keyed free list of float64 gradient buffers.

    ``backward`` releases every intermediate gradient here once its
    parents have consumed it, and :meth:`Tensor.zero_grad` releases
    leaf buffers, so steady-state training reuses the same allocations
    step after step instead of churning the allocator.  Buffers are
    only pooled when whole (never views) and the per-shape depth is
    capped so pathological shape diversity cannot hoard memory.
    """

    __slots__ = ("_free", "max_per_shape")

    def __init__(self, max_per_shape: int = 64) -> None:
        self._free: dict[tuple[int, ...], list[np.ndarray]] = {}
        self.max_per_shape = max_per_shape

    def take(self, value: np.ndarray) -> np.ndarray:
        """Return a private float64 copy of ``value``, pooled if possible."""
        bucket = self._free.get(value.shape)
        if bucket:
            buffer = bucket.pop()
            np.copyto(buffer, value)
            return buffer
        return np.array(value, dtype=np.float64, copy=True)

    def release(self, buffer: np.ndarray) -> None:
        """Hand a no-longer-referenced buffer back for reuse."""
        if type(buffer) is not np.ndarray or buffer.base is not None \
                or buffer.dtype != np.float64:
            return
        bucket = self._free.setdefault(buffer.shape, [])
        if len(bucket) < self.max_per_shape:
            bucket.append(buffer)

    def clear(self) -> None:
        self._free.clear()


_POOL = _GradientBufferPool()
_FLOAT64 = np.dtype(np.float64)


class Tensor:
    """A numpy array with reverse-mode gradient support.

    Parameters
    ----------
    data:
        Array-like payload; always stored as ``float64`` for numerical
        robustness in gradient checks.
    requires_grad:
        Whether gradients should flow into this tensor.  Leaf tensors
        with ``requires_grad=True`` act as trainable parameters.

    Tape nodes are closure-free: a recorded op carries its registry
    name in ``_op`` and op-specific saved values in ``_ctx``; the
    matching VJPs are looked up at replay time.  After ``backward()``
    the consumed graph is marked ``_done`` -- replaying it again raises
    instead of silently double-counting shared subexpressions (the
    PR 3 ``tape-leak`` sanitizer check, now enforced unconditionally).
    """

    __slots__ = ("data", "grad", "requires_grad", "_op", "_ctx", "_parents",
                 "_done")

    def __init__(self, data, requires_grad: bool = False) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._op: str | None = None
        self._ctx: tuple = ()
        self._parents: tuple[Tensor, ...] = ()
        self._done = False

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        """Return a zero-filled tensor of the given shape."""
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        """Return a one-filled tensor of the given shape."""
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        """Return the single scalar value held by this tensor."""
        if self.data.size != 1:
            raise ValueError("item() is only defined for single-element tensors")
        return float(self.data.reshape(-1)[0])

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Clear the gradient, recycling its buffer into the pool."""
        buffer = self.grad
        if buffer is not None:
            self.grad = None
            _POOL.release(buffer)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{flag})"

    # ------------------------------------------------------------------
    # autograd core
    # ------------------------------------------------------------------
    def _make_child(self, data: np.ndarray, parents: Iterable["Tensor"]) -> "Tensor":
        parents = tuple(parents)
        requires = False
        if _GRAD_ENABLED:
            for parent in parents:
                if parent.requires_grad:
                    requires = True
                    break
        out = Tensor.__new__(Tensor)
        out.data = data if isinstance(data, np.ndarray) else np.asarray(data, dtype=np.float64)
        out.requires_grad = requires
        out.grad = None
        out._op = None
        out._ctx = ()
        out._parents = parents if requires else ()
        out._done = False
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        buffer = self.grad
        if buffer is None:
            self.grad = _POOL.take(grad)
        else:
            np.add(buffer, grad, out=buffer)

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded tape.

        Replays each reached node's registered VJPs exactly once; the
        consumed nodes are marked and a second ``backward()`` through
        any of them raises ``RuntimeError`` (rebuild the graph instead
        of re-running it -- re-replay double-counts every shared
        subexpression).  Intermediate gradient buffers are released to
        the pool as soon as their parents have consumed them; only leaf
        tensors keep ``grad`` populated.

        Parameters
        ----------
        grad:
            Gradient of the final objective w.r.t. this tensor.  Defaults
            to ``1`` which requires this tensor to be a scalar.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if self._done:
            raise RuntimeError(
                "backward() already ran through this tape; rebuild the graph "
                "instead of replaying it")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient needs a scalar output")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            raise ValueError(f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}")

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and parent._op is not None:
                    stack.append((parent, False))

        self._accumulate(grad)
        registry = _VJP_REGISTRY

        def receive(parent: Tensor, parent_grad: np.ndarray,
                    out_grad: np.ndarray) -> None:
            # Accumulation fast path: a VJP result that owns its memory
            # (not a view, not the node's own grad buffer being recycled)
            # is adopted as the gradient buffer outright -- no pool copy.
            buffer = parent.grad
            if buffer is None:
                if type(parent_grad) is np.ndarray and parent_grad.base is None \
                        and parent_grad is not out_grad \
                        and parent_grad.dtype == _FLOAT64:
                    parent.grad = parent_grad
                else:
                    parent.grad = _POOL.take(parent_grad)
            else:
                np.add(buffer, parent_grad, out=buffer)

        for node in reversed(topo):
            op = node._op
            if op is None:
                continue
            out_grad = node.grad
            if out_grad is None:
                continue
            if node._done:
                raise RuntimeError(
                    "backward() reached a tape node that was already "
                    "replayed; rebuild the graph instead of re-running it")
            spec = registry[op]
            parents = node._parents
            if spec.variadic:
                grads = spec.vjps[0](out_grad, node.data, node._ctx,
                                     tuple(p.data for p in parents))
                for parent, parent_grad in zip(parents, grads):
                    if parent.requires_grad and parent_grad is not None:
                        receive(parent, parent_grad, out_grad)
            else:
                vjps = spec.vjps
                # Unrolled one/two-parent dispatch: nearly every op on
                # the hot path lands here, and skipping the generic
                # tuple build + enumerate measurably speeds up backward.
                if len(parents) == 1:
                    parent = parents[0]
                    if parent.requires_grad and vjps[0] is not None:
                        receive(parent,
                                vjps[0](out_grad, node.data, node._ctx, parent.data),
                                out_grad)
                elif len(parents) == 2:
                    first, second = parents
                    if first.requires_grad and vjps[0] is not None:
                        receive(first,
                                vjps[0](out_grad, node.data, node._ctx,
                                        first.data, second.data),
                                out_grad)
                    if second.requires_grad and vjps[1] is not None:
                        receive(second,
                                vjps[1](out_grad, node.data, node._ctx,
                                        first.data, second.data),
                                out_grad)
                else:
                    parent_data = tuple(p.data for p in parents)
                    for index, parent in enumerate(parents):
                        if parent.requires_grad:
                            vjp = vjps[index]
                            if vjp is not None:
                                receive(parent,
                                        vjp(out_grad, node.data, node._ctx,
                                            *parent_data),
                                        out_grad)
            node._done = True
            node.grad = None
            _POOL.release(out_grad)

    # ------------------------------------------------------------------
    # arithmetic ops
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make_child(self.data + other.data, (self, other))
        if out.requires_grad:
            out._op = "add"
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = self._make_child(-self.data, (self,))
        if out.requires_grad:
            out._op = "neg"
        return out

    def __sub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make_child(self.data - other.data, (self, other))
        if out.requires_grad:
            out._op = "sub"
        return out

    def __rsub__(self, other) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make_child(self.data * other.data, (self, other))
        if out.requires_grad:
            out._op = "mul"
        return out

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make_child(self.data / other.data, (self, other))
        if out.requires_grad:
            out._op = "div"
        return out

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out = self._make_child(self.data ** exponent, (self,))
        if out.requires_grad:
            out._op = "pow"
            out._ctx = (float(exponent),)
        return out

    def __matmul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make_child(self.data @ other.data, (self, other))
        if out.requires_grad:
            out._op = "matmul"
        return out

    # ------------------------------------------------------------------
    # element-wise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out = self._make_child(np.exp(self.data), (self,))
        if out.requires_grad:
            out._op = "exp"
        return out

    def log(self) -> "Tensor":
        out = self._make_child(np.log(self.data), (self,))
        if out.requires_grad:
            out._op = "log"
        return out

    def tanh(self) -> "Tensor":
        out = self._make_child(np.tanh(self.data), (self,))
        if out.requires_grad:
            out._op = "tanh"
        return out

    def sigmoid(self) -> "Tensor":
        out = self._make_child(1.0 / (1.0 + np.exp(-self.data)), (self,))
        if out.requires_grad:
            out._op = "sigmoid"
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out = self._make_child(self.data * mask, (self,))
        if out.requires_grad:
            out._op = "relu"
            out._ctx = (mask,)
        return out

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        slope = np.where(self.data > 0, 1.0, negative_slope)
        out = self._make_child(self.data * slope, (self,))
        if out.requires_grad:
            out._op = "leaky_relu"
            out._ctx = (slope,)
        return out

    def abs(self) -> "Tensor":
        out = self._make_child(np.abs(self.data), (self,))
        if out.requires_grad:
            out._op = "abs"
        return out

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    # ------------------------------------------------------------------
    # reductions and shaping
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out = self._make_child(self.data.sum(axis=axis, keepdims=keepdims), (self,))
        if out.requires_grad:
            out._op = "sum"
            out._ctx = (axis, keepdims)
        return out

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.data.shape[a] for a in axes]))
        out = self._make_child(self.data.mean(axis=axis, keepdims=keepdims), (self,))
        if out.requires_grad:
            out._op = "mean"
            out._ctx = (axis, keepdims, count)
        return out

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out = self._make_child(self.data.max(axis=axis, keepdims=keepdims), (self,))
        if out.requires_grad:
            out._op = "max"
            out._ctx = (axis, keepdims)
        return out

    def reshape(self, *shape: int) -> "Tensor":
        out = self._make_child(self.data.reshape(*shape), (self,))
        if out.requires_grad:
            out._op = "reshape"
        return out

    def transpose(self, *axes: int) -> "Tensor":
        order = axes or tuple(reversed(range(self.data.ndim)))
        out = self._make_child(self.data.transpose(order), (self,))
        if out.requires_grad:
            out._op = "transpose"
            out._ctx = (np.argsort(order),)
        return out

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out = self._make_child(self.data[index], (self,))
        if out.requires_grad:
            out._op = "getitem"
            out._ctx = (index, _is_basic_index(index))
        return out

    # ------------------------------------------------------------------
    # composite helpers
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        """Numerically stable softmax along ``axis`` (one fused node)."""
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exps = np.exp(shifted)
        out = self._make_child(exps / exps.sum(axis=axis, keepdims=True), (self,))
        if out.requires_grad:
            out._op = "softmax"
            out._ctx = (axis,)
        return out

    def clip_value(self, low: float, high: float) -> "Tensor":
        """Clamp values to ``[low, high]``; gradient is zero outside the range."""
        mask = (self.data >= low) & (self.data <= high)
        out = self._make_child(np.clip(self.data, low, high), (self,))
        if out.requires_grad:
            out._op = "clip"
            out._ctx = (mask,)
        return out


def _is_basic_index(index) -> bool:
    """True when ``index`` is basic (never selects one element twice).

    Basic indexing gradients scatter with a plain in-place add; fancy
    (array/bool) indexing may visit elements repeatedly and needs the
    much slower ``np.add.at``.
    """
    parts = index if isinstance(index, tuple) else (index,)
    return all(isinstance(part, (int, np.integer, slice))
               or part is Ellipsis or part is None
               for part in parts)


# ----------------------------------------------------------------------
# registered VJPs (element-wise / arithmetic)
# ----------------------------------------------------------------------
def _vjp_add_a(g, out, ctx, a, b):
    return _unbroadcast(g, a.shape)


def _vjp_add_b(g, out, ctx, a, b):
    return _unbroadcast(g, b.shape)


def _vjp_sub_b(g, out, ctx, a, b):
    return _unbroadcast(-g, b.shape)


def _vjp_mul_a(g, out, ctx, a, b):
    return _unbroadcast(g * b, a.shape)


def _vjp_mul_b(g, out, ctx, a, b):
    return _unbroadcast(g * a, b.shape)


def _vjp_div_a(g, out, ctx, a, b):
    return _unbroadcast(g / b, a.shape)


def _vjp_div_b(g, out, ctx, a, b):
    return _unbroadcast(-g * a / (b * b), b.shape)


defvjp("add", _vjp_add_a, _vjp_add_b)
defvjp("sub", _vjp_add_a, _vjp_sub_b)
defvjp("neg", lambda g, out, ctx, a: -g)
defvjp("mul", _vjp_mul_a, _vjp_mul_b)
defvjp("div", _vjp_div_a, _vjp_div_b)
defvjp("pow", lambda g, out, ctx, a: g * ctx[0] * a ** (ctx[0] - 1.0))
defvjp("exp", lambda g, out, ctx, a: g * out)
defvjp("log", lambda g, out, ctx, a: g / a)
defvjp("tanh", lambda g, out, ctx, a: g * (1.0 - out * out))
defvjp("sigmoid", lambda g, out, ctx, a: g * out * (1.0 - out))
defvjp("relu", lambda g, out, ctx, a: g * ctx[0])
defvjp("leaky_relu", lambda g, out, ctx, a: g * ctx[0])
defvjp("abs", lambda g, out, ctx, a: g * np.sign(a))
defvjp("clip", lambda g, out, ctx, a: g * ctx[0])


# ----------------------------------------------------------------------
# registered VJPs (matmul)
# ----------------------------------------------------------------------
def _vjp_matmul_a(g, out, ctx, a, b):
    if b.ndim == 1:
        return np.multiply.outer(g, b) if a.ndim > 1 else g * b
    return _unbroadcast(g @ np.swapaxes(b, -1, -2), a.shape)


def _vjp_matmul_b(g, out, ctx, a, b):
    if a.ndim == 1 and b.ndim > 1:
        return _unbroadcast(np.multiply.outer(a, g), b.shape)
    if b.ndim == 1:
        if a.ndim > 1:
            return _unbroadcast(
                (a * g[..., None]).reshape(-1, a.shape[-1]).sum(axis=0), b.shape)
        return a * g
    return _unbroadcast(np.swapaxes(a, -1, -2) @ g, b.shape)


defvjp("matmul", _vjp_matmul_a, _vjp_matmul_b)


# ----------------------------------------------------------------------
# registered VJPs (reductions and shaping)
# ----------------------------------------------------------------------
def _expand_reduced(grad: np.ndarray, axis, keepdims: bool,
                    ndim: int) -> np.ndarray:
    """Re-insert the axes a reduction removed so ``grad`` broadcasts back."""
    if axis is None or keepdims:
        return grad
    axes = (axis,) if isinstance(axis, int) else axis
    for ax in sorted(a % ndim for a in axes):
        grad = np.expand_dims(grad, ax)
    return grad


def _vjp_sum(g, out, ctx, a):
    axis, keepdims = ctx
    return np.broadcast_to(_expand_reduced(g, axis, keepdims, a.ndim), a.shape)


def _vjp_mean(g, out, ctx, a):
    axis, keepdims, count = ctx
    return np.broadcast_to(_expand_reduced(g, axis, keepdims, a.ndim) / count,
                           a.shape)


def _vjp_max(g, out, ctx, a):
    axis, keepdims = ctx
    peak = out if (keepdims or axis is None) else \
        a.max(axis=axis, keepdims=True)
    mask = (a == peak).astype(np.float64)
    mask /= mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
    return mask * _expand_reduced(g, axis, keepdims, a.ndim)


def _vjp_getitem(g, out, ctx, a):
    index, basic = ctx
    full = np.zeros_like(a)
    if basic:
        full[index] += g
    else:
        np.add.at(full, index, g)
    return full


def _vjp_softmax(g, out, ctx, a):
    return out * (g - (g * out).sum(axis=ctx[0], keepdims=True))


defvjp("sum", _vjp_sum)
defvjp("mean", _vjp_mean)
defvjp("max", _vjp_max)
defvjp("reshape", lambda g, out, ctx, a: g.reshape(a.shape))
defvjp("transpose", lambda g, out, ctx, a: g.transpose(ctx[0]))
defvjp("getitem", _vjp_getitem)
defvjp("softmax", _vjp_softmax)


# ----------------------------------------------------------------------
# fused affine map
# ----------------------------------------------------------------------
def linear(inputs: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Fused affine map ``inputs @ weight.T (+ bias)`` as one tape node.

    ``inputs`` may carry arbitrary leading batch dimensions (or none);
    ``weight`` is ``(out_features, in_features)`` and ``bias``
    ``(out_features,)``.  Fusing the matmul and the bias add halves the
    tape traffic of every dense layer, which is why :class:`Linear` and
    the LSTM projections route through here.
    """
    inputs = inputs if isinstance(inputs, Tensor) else Tensor(inputs)
    data = inputs.data @ weight.data.T
    if bias is not None:
        data += bias.data
        parents: tuple[Tensor, ...] = (inputs, weight, bias)
    else:
        parents = (inputs, weight)
    out = inputs._make_child(data, parents)
    if out.requires_grad:
        out._op = "linear"
    return out


def _vjp_linear_inputs(g, out, ctx, x, w, b=None):
    return g @ w


def _vjp_linear_weight(g, out, ctx, x, w, b=None):
    out_features, in_features = w.shape
    return g.reshape(-1, out_features).T @ x.reshape(-1, in_features)


def _vjp_linear_bias(g, out, ctx, x, w, b):
    return g.reshape(-1, b.shape[0]).sum(axis=0)


defvjp("linear", _vjp_linear_inputs, _vjp_linear_weight, _vjp_linear_bias)


# ----------------------------------------------------------------------
# einsum
# ----------------------------------------------------------------------
def _parse_einsum_spec(spec: str) -> tuple[str, str, str]:
    if "->" not in spec or "..." in spec:
        raise ValueError("einsum spec must be explicit ('ab,bc->ac'; no ellipsis)")
    lhs, sub_out = spec.split("->")
    terms = lhs.split(",")
    if len(terms) != 2:
        raise ValueError("the einsum primitive takes exactly two operands")
    for term in (*terms, sub_out):
        if len(set(term)) != len(term):
            raise ValueError(f"repeated subscript in {term!r} is not supported")
    if not set(sub_out) <= set(terms[0]) | set(terms[1]):
        raise ValueError("every output subscript must appear in an operand")
    return terms[0], terms[1], sub_out


class _EinsumPlan:
    """BLAS lowering of one two-operand einsum spec, cached per spec.

    ``np.einsum`` routes small contractions through ``c_einsum``, which
    is 2-10x slower than BLAS on the GAT attention shapes.  Any
    two-operand spec without repeated labels factors as a batched
    matmul: labels shared by both operands and the output are batch
    dims, labels shared by the operands only are contracted, the rest
    are the matmul's free dims (labels private to one operand are
    summed away up front).  The label bookkeeping is done once here;
    execution is transpose + reshape + ``@``.
    """

    __slots__ = ("a_sum_axes", "b_sum_axes", "a_perm", "b_perm", "out_perm",
                 "n_batch", "n_afree", "n_bfree")

    def __init__(self, sub_a: str, sub_b: str, sub_out: str) -> None:
        set_a, set_b, set_out = set(sub_a), set(sub_b), set(sub_out)
        batch = [c for c in sub_a if c in set_b and c in set_out]
        contract = [c for c in sub_a if c in set_b and c not in set_out]
        afree = [c for c in sub_a if c not in set_b and c in set_out]
        bfree = [c for c in sub_b if c not in set_a and c in set_out]
        self.a_sum_axes = tuple(i for i, c in enumerate(sub_a)
                                if c not in set_b and c not in set_out)
        self.b_sum_axes = tuple(i for i, c in enumerate(sub_b)
                                if c not in set_a and c not in set_out)
        a_kept = [c for c in sub_a if c in set_b or c in set_out]
        b_kept = [c for c in sub_b if c in set_a or c in set_out]
        a_perm = tuple(a_kept.index(c) for c in batch + afree + contract)
        b_perm = tuple(b_kept.index(c) for c in batch + contract + bfree)
        produced = batch + afree + bfree
        out_perm = tuple(produced.index(c) for c in sub_out)
        # Identity permutations become None so execute() skips them.
        self.a_perm = a_perm if a_perm != tuple(range(len(a_perm))) else None
        self.b_perm = b_perm if b_perm != tuple(range(len(b_perm))) else None
        self.out_perm = out_perm if out_perm != tuple(range(len(out_perm))) else None
        self.n_batch = len(batch)
        self.n_afree = len(afree)
        self.n_bfree = len(bfree)

    def execute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self.a_sum_axes:
            a = a.sum(axis=self.a_sum_axes)
        if self.b_sum_axes:
            b = b.sum(axis=self.b_sum_axes)
        if self.a_perm is not None:
            a = a.transpose(self.a_perm)
        if self.b_perm is not None:
            b = b.transpose(self.b_perm)
        nb, na, nbf = self.n_batch, self.n_afree, self.n_bfree
        a_shape, b_shape = a.shape, b.shape
        batch_shape = a_shape[:nb]
        afree_shape = a_shape[nb:nb + na]
        bfree_shape = b_shape[len(b_shape) - nbf:]
        m = k = n = 1
        for extent in afree_shape:
            m *= extent
        for extent in a_shape[nb + na:]:
            k *= extent
        for extent in bfree_shape:
            n *= extent
        result = a.reshape(batch_shape + (m, k)) @ b.reshape(batch_shape + (k, n))
        result = result.reshape(batch_shape + afree_shape + bfree_shape)
        if self.out_perm is not None:
            result = result.transpose(self.out_perm)
        return result


_EINSUM_PLANS: dict[tuple[str, str, str], _EinsumPlan] = {}
_SPEC_CACHE: dict[str, tuple[str, str, str]] = {}


def _contract(sub_a: str, sub_b: str, sub_out: str,
              a: np.ndarray, b: np.ndarray) -> np.ndarray:
    key = (sub_a, sub_b, sub_out)
    plan = _EINSUM_PLANS.get(key)
    if plan is None:
        plan = _EINSUM_PLANS[key] = _EinsumPlan(sub_a, sub_b, sub_out)
    return plan.execute(a, b)


def einsum(spec: str, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable two-operand einsum (no ellipsis/diagonals).

    The workhorse of the batched GAT attention: one einsum contracts
    all heads, vehicles and history steps at once where the reference
    implementation loops per head.  Execution lowers to a cached
    batched-matmul plan (:class:`_EinsumPlan`) rather than
    ``np.einsum``; equivalence against ``np.einsum`` is pinned by the
    gradcheck registry suite and ``tests/nn/test_equivalence_fused.py``.
    Operand dimensions sharing a label must match exactly (no implicit
    size-1 broadcasting).
    """
    subs = _SPEC_CACHE.get(spec)
    if subs is None:
        subs = _SPEC_CACHE[spec] = _parse_einsum_spec(spec)
    sub_a, sub_b, sub_out = subs
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    out = a._make_child(_contract(sub_a, sub_b, sub_out, a.data, b.data), (a, b))
    if out.requires_grad:
        out._op = "einsum"
        out._ctx = (sub_a, sub_b, sub_out)
    return out


def _einsum_operand_vjp(grad: np.ndarray, own_sub: str, other_sub: str,
                        sub_out: str, own_data: np.ndarray,
                        other_data: np.ndarray) -> np.ndarray:
    """Gradient of one einsum operand by transposing the spec.

    Indices of the operand that appear in neither the output nor the
    other operand were summed over in the forward pass; their gradient
    broadcasts back along the dropped axes.
    """
    available = set(sub_out) | set(other_sub)
    kept = "".join(c for c in own_sub if c in available)
    result = _contract(sub_out, other_sub, kept, grad, other_data)
    if kept != own_sub:
        kept_set = set(kept)
        for position, label in enumerate(own_sub):
            if label not in kept_set:
                result = np.expand_dims(result, position)
        result = np.broadcast_to(result, own_data.shape)
    return result


defvjp(
    "einsum",
    lambda g, out, ctx, a, b: _einsum_operand_vjp(g, ctx[0], ctx[1], ctx[2], a, b),
    lambda g, out, ctx, a, b: _einsum_operand_vjp(g, ctx[1], ctx[0], ctx[2], b, a),
)


# ----------------------------------------------------------------------
# variadic ops
# ----------------------------------------------------------------------
def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = list(tensors)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    out = tensors[0]._make_child(data, tensors)
    if out.requires_grad:
        out._op = "concat"
        sizes = [t.data.shape[axis] for t in tensors]
        out._ctx = (axis, np.cumsum([0] + sizes))
    return out


def _vjp_concat(g, out, ctx, parent_data):
    axis, offsets = ctx
    base: list = [slice(None)] * g.ndim
    grads = []
    for start, stop in zip(offsets[:-1], offsets[1:]):
        index = list(base)
        index[axis] = slice(start, stop)
        grads.append(g[tuple(index)])
    return grads


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient routing."""
    tensors = list(tensors)
    data = np.stack([t.data for t in tensors], axis=axis)
    out = tensors[0]._make_child(data, tensors)
    if out.requires_grad:
        out._op = "stack"
        out._ctx = (axis, len(tensors))
    return out


def _vjp_stack(g, out, ctx, parent_data):
    axis, count = ctx
    return [np.squeeze(part, axis=axis)
            for part in np.split(g, count, axis=axis)]


defvjp("concat", _vjp_concat, variadic=True)
defvjp("stack", _vjp_stack, variadic=True)

"""Module system: parameter containers with state-dict serialization.

Mirrors the small subset of ``torch.nn.Module`` the paper's models rely
on: recursive parameter discovery, train/eval flags, state dicts, and
parameter copying (used for target networks and soft updates).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Module", "Parameter"]


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as trainable by modules."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for neural network components.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; those are discovered recursively for optimization and
    serialization.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    # discovery
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{full}.{index}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{index}.")

    def parameters(self) -> list[Parameter]:
        """Return all trainable parameters of this module tree.

        Same depth-first order as :meth:`named_parameters`, but without
        building dotted names -- this runs once per training step (via
        :meth:`zero_grad` and the optimizers), so it stays string-free.
        """
        found: list[Parameter] = []
        self._collect_parameters(found)
        return found

    def _collect_parameters(self, found: list["Parameter"]) -> None:
        for value in vars(self).values():
            if isinstance(value, Parameter):
                found.append(value)
            elif isinstance(value, Module):
                value._collect_parameters(found)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Parameter):
                        found.append(item)
                    elif isinstance(item, Module):
                        item._collect_parameters(found)

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant module."""
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # ------------------------------------------------------------------
    # train / eval
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        """Put this module tree in training mode."""
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        """Put this module tree in inference mode."""
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    def num_parameters(self) -> int:
        """Return the total scalar parameter count."""
        return sum(parameter.size for parameter in self.parameters())

    # ------------------------------------------------------------------
    # serialization and target-network support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a name -> array snapshot of all parameters (copies)."""
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values from a snapshot produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, parameter in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != parameter.data.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {parameter.data.shape}")
            parameter.data = value.copy()

    def copy_from(self, other: "Module") -> None:
        """Hard-copy all parameters from ``other`` (target network init)."""
        self.load_state_dict(other.state_dict())

    def soft_update_from(self, other: "Module", tau: float) -> None:
        """Polyak-average parameters from ``other``: p <- tau*p_other + (1-tau)*p.

        Used by BP-DQN/P-DQN/P-DDPG target networks with the ratio 0.01
        from the paper's implementation details.
        """
        own = dict(self.named_parameters())
        for name, source in other.named_parameters():
            own[name].data = tau * source.data + (1.0 - tau) * own[name].data

    # ------------------------------------------------------------------
    # call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

"""TCP transport: round-trip fidelity, typed edge errors, health op."""

import asyncio
import json

import numpy as np

from repro.serve import (BatcherConfig, InferenceServer, ServerConfig,
                         TcpClient, TcpTransport, decode_graph, encode_graph)


def test_graph_wire_round_trip_is_exact(pool):
    graph = pool[0]
    again = decode_graph(json.loads(json.dumps(encode_graph(graph))))
    # repr round-trip through JSON decimals is exact for float64.
    assert np.array_equal(graph.target_features, again.target_features)
    assert np.array_equal(graph.contributor_features,
                          again.contributor_features)
    assert np.array_equal(graph.target_mask, again.target_mask)
    assert np.array_equal(graph.ego_features, again.ego_features)
    assert again.target_features.dtype == np.float64


def boot(engine):
    server = InferenceServer(engine, ServerConfig(
        batcher=BatcherConfig(batch_window=0.002)))
    return server, TcpTransport(server, port=0)


def test_infer_and_health_over_tcp(engine, pool):
    async def scenario():
        server, transport = boot(engine)
        await server.start()
        await transport.start()
        client = TcpClient(port=transport.port)
        await client.connect()
        answer = await client.infer(pool[0], deadline_ms=5000)
        health = await client.health()
        await client.close()
        await transport.stop()
        await server.stop()
        return answer, health

    answer, health = asyncio.run(scenario())
    assert answer["verdict"] == "ok"
    assert answer["level"] == "full_head"
    assert answer["action"]["behavior"] in ("KEEP", "LEFT", "RIGHT")
    assert np.isfinite(answer["action"]["accel"])
    assert health["ready"] is True
    assert health["level"] == "full_head"
    assert health["responses_total"] >= 1


def test_malformed_lines_get_typed_errors_not_drops(engine):
    async def scenario():
        server, transport = boot(engine)
        await server.start()
        await transport.start()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", transport.port)
        replies = []
        for line in [b"this is not json\n",
                     b'{"op": "launch-missiles"}\n',
                     b'{"op": "infer", "graph": {"nope": 1}}\n']:
            writer.write(line)
            await asyncio.wait_for(writer.drain(), timeout=5.0)
            reply = await asyncio.wait_for(reader.readline(), timeout=5.0)
            replies.append(json.loads(reply))
        writer.close()
        await transport.stop()
        await server.stop()
        return replies

    bad_json, bad_op, bad_graph = asyncio.run(scenario())
    assert bad_json["verdict"] == "error"
    assert "JSONDecodeError" in bad_json["detail"]
    assert bad_op["verdict"] == "error"
    assert "launch-missiles" in bad_op["detail"]
    assert bad_graph["verdict"] == "error"
    # The connection survived all three malformed lines.


def test_port_zero_binds_an_ephemeral_port(engine):
    async def scenario():
        server, transport = boot(engine)
        await server.start()
        await transport.start()
        port = transport.port
        await transport.stop()
        await server.stop()
        return port

    assert asyncio.run(scenario()) > 0

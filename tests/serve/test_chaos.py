"""Chaos harness: seeded load + injected service faults, invariants audited.

The three invariants every scenario asserts (via LoadReport.check_invariants):
no silent drops (offered == resolved), every outcome is a typed Verdict,
and shutdown drains cleanly.
"""

import asyncio

import numpy as np
import pytest

from repro.faults.service import (FaultyEngine, InjectedHandlerError,
                                  ServiceFaultSchedule, poison_graph)
from repro.serve import (BatcherConfig, BreakerConfig, ClientConfig,
                         InferenceServer, LoadProfile, ServeClient,
                         ServerConfig, ServiceLevel, Verdict, run_load)


def test_schedule_validation():
    with pytest.raises(ValueError):
        ServiceFaultSchedule(stall_rate=1.5)
    with pytest.raises(ValueError):
        ServiceFaultSchedule(slow_rate=-0.1)
    with pytest.raises(ValueError):
        ServiceFaultSchedule(slow_seconds=-1.0)
    assert ServiceFaultSchedule().inert
    assert not ServiceFaultSchedule(error_rate=0.01).inert


def test_zero_rate_schedule_is_bit_identical_to_no_injection(engine, pool):
    faulty = FaultyEngine(engine, ServiceFaultSchedule())
    direct = engine.infer(pool[:4], ServiceLevel.FULL_HEAD)
    wrapped = faulty.infer(pool[:4], ServiceLevel.FULL_HEAD)
    assert all(count == 0 for count in faulty.injected.values())
    for a, b in zip(direct, wrapped):
        assert a.verdict is b.verdict
        assert (np.float64(a.action.accel).tobytes()
                == np.float64(b.action.accel).tobytes())


def test_injected_error_is_typed_not_silent(engine, pool):
    faulty = FaultyEngine(engine, ServiceFaultSchedule(error_rate=1.0))

    async def scenario():
        server = InferenceServer(faulty, ServerConfig(
            batcher=BatcherConfig(batch_window=0.0)))
        await server.start()
        response = await server.submit(pool[0])
        await server.stop()
        return response

    response = asyncio.run(scenario())
    assert response.verdict is Verdict.DEGRADED_FALLBACK
    assert "InjectedHandlerError" in response.detail
    assert faulty.injected["error"] == 1


def test_nan_storm_degrades_whole_batch(engine, pool):
    faulty = FaultyEngine(engine, ServiceFaultSchedule(nan_storm_rate=1.0))
    results = faulty.infer(pool[:3], ServiceLevel.FULL_HEAD)
    assert faulty.injected["nan_storm"] == 1
    for result in results:
        assert result.verdict is Verdict.DEGRADED_PERCEPTION
        assert result.degraded_rows >= 1


def test_clean_load_all_typed_with_poison_quarantined(engine, pool):
    async def scenario():
        server = InferenceServer(engine, ServerConfig(
            batcher=BatcherConfig(max_batch=16, batch_window=0.002)))
        await server.start()
        client = ServeClient(server, seed=3)
        report = await run_load(
            client, LoadProfile(duration=0.6, rate=120.0,
                                poison_fraction=0.15, seed=5), pool=pool)
        await server.stop()
        late = await server.submit(pool[0])
        return report, late

    report, late = asyncio.run(scenario())
    counts = report.verdict_counts()
    assert report.answered > 0
    assert counts.get("ok", 0) > 0
    # Poisoned graphs come back as typed safety answers, not silence.
    assert counts.get("degraded-fallback", 0) > 0
    assert late.verdict is Verdict.SHED_SHUTDOWN  # clean drain


def test_overload_sheds_typed_never_silently(engine, pool):
    slow = FaultyEngine(engine, ServiceFaultSchedule(
        slow_rate=1.0, slow_seconds=0.05, seed=2))

    async def scenario():
        server = InferenceServer(slow, ServerConfig(
            batcher=BatcherConfig(max_batch=4, capacity=8,
                                  batch_window=0.002),
            handler_timeout=5.0))
        await server.start()
        client = ServeClient(server, ClientConfig(max_attempts=2), seed=0)
        report = await run_load(
            client, LoadProfile(duration=0.7, rate=300.0, burst_rate=300.0,
                                deadline_budget=0.2, seed=9), pool=pool)
        await server.stop()
        return report

    report = asyncio.run(scenario())
    # Open-loop load at ~4x capacity: backpressure must engage, yet every
    # request resolves (check_invariants inside run_load) and some work
    # still completes -- overload degrades throughput, not correctness.
    assert report.shed > 0
    assert report.answered > 0
    assert report.answered + report.shed == report.offered


def test_composed_chaos_stalls_spikes_poison(engine, pool):
    async def scenario():
        for attempt in range(5):
            faulty = FaultyEngine(engine, ServiceFaultSchedule(
                stall_rate=0.4, stall_seconds=0.4,
                slow_rate=0.3, slow_seconds=0.02,
                nan_storm_rate=0.2, seed=11 + attempt))
            server = InferenceServer(faulty, ServerConfig(
                batcher=BatcherConfig(max_batch=8, batch_window=0.005),
                breaker=BreakerConfig(min_events=8, cooldown=0.2),
                handler_timeout=0.1))
            await server.start()
            client = ServeClient(server, ClientConfig(timeout=1.0), seed=1)
            report = await run_load(
                client, LoadProfile(duration=0.8, rate=100.0,
                                    deadline_budget=0.6, poison_fraction=0.1,
                                    seed=13), pool=pool)
            health = server.health_report()
            await server.stop()
            if faulty.injected["stall"] >= 1:
                return report, health, faulty
        raise AssertionError("no stall injected in 5 seeded rounds")

    report, health, faulty = asyncio.run(scenario())
    # A stall exceeded handler_timeout: the breaker saw it and tripped,
    # and the stalled batch was still answered (typed fallback).
    assert health.handler_failures_total >= 1
    assert health.breaker_trips >= 1
    assert report.answered > 0
    assert report.answered + report.shed == report.offered


def test_poison_graph_copies_and_marks(pool):
    poisoned = poison_graph(pool[0])
    assert poisoned is not pool[0]
    assert np.isnan(poisoned.target_features[-1, 0]).all()
    assert np.isfinite(pool[0].target_features).all()


def test_injected_error_marker_is_distinguishable():
    assert issubclass(InjectedHandlerError, RuntimeError)

"""MicroBatcher: bounded admission, coalescing, shedding, canonical order."""

import asyncio

import pytest

from repro.serve import BatcherConfig, InferenceRequest, MicroBatcher, OfferRejected


def request(rid, deadline=None):
    return InferenceRequest(graph=object(), request_id=rid, deadline=deadline)


def test_config_validation():
    with pytest.raises(ValueError):
        BatcherConfig(max_batch=0)
    with pytest.raises(ValueError):
        BatcherConfig(capacity=0)
    with pytest.raises(ValueError):
        BatcherConfig(batch_window=-0.001)


def test_admission_is_bounded_and_typed():
    async def scenario():
        batcher = MicroBatcher(BatcherConfig(capacity=3))
        for index in range(3):
            batcher.offer(request(f"r{index}"))
        with pytest.raises(OfferRejected) as excinfo:
            batcher.offer(request("r3"))
        assert excinfo.value.retry_after > 0.0
        assert excinfo.value.depth == 3
        assert batcher.rejected_total == 1
        assert batcher.depth() == 3

    asyncio.run(scenario())


def test_idle_poll_returns_empty_batch():
    async def scenario():
        batcher = MicroBatcher(BatcherConfig(idle_poll=0.01))
        live, expired = await batcher.next_batch()
        assert live == [] and expired == []

    asyncio.run(scenario())


def test_batch_collects_up_to_max_batch():
    async def scenario():
        batcher = MicroBatcher(BatcherConfig(max_batch=4, batch_window=0.02))
        for index in range(6):
            batcher.offer(request(f"r{index}"))
        live, expired = await batcher.next_batch()
        assert len(live) == 4 and not expired
        live2, _ = await batcher.next_batch()
        assert len(live2) == 2

    asyncio.run(scenario())


def test_expired_requests_are_shed_before_compute():
    async def scenario():
        batcher = MicroBatcher(BatcherConfig(batch_window=0.0))
        now = batcher.clock()
        batcher.offer(request("r0", deadline=now - 1.0))
        batcher.offer(request("r1", deadline=now + 60.0))
        live, expired = await batcher.next_batch()
        assert [r.request_id for r in live] == ["r1"]
        assert [r.request_id for r in expired] == ["r0"]
        assert batcher.shed_expired_total == 1

    asyncio.run(scenario())


def test_canonical_request_id_ordering():
    async def scenario():
        batcher = MicroBatcher(BatcherConfig(max_batch=8, batch_window=0.02))
        for rid in ["r5", "r1", "r9", "r0", "r3"]:
            batcher.offer(request(rid))
        live, _ = await batcher.next_batch()
        assert [r.request_id for r in live] == ["r0", "r1", "r3", "r5", "r9"]

    asyncio.run(scenario())


def test_drain_nowait_empties_queue():
    async def scenario():
        batcher = MicroBatcher(BatcherConfig())
        for index in range(5):
            batcher.offer(request(f"r{index}"))
        drained = batcher.drain_nowait()
        assert len(drained) == 5 and batcher.depth() == 0

    asyncio.run(scenario())


def test_retry_after_scales_with_backlog():
    async def scenario():
        batcher = MicroBatcher(BatcherConfig(max_batch=2, capacity=64))
        batcher.record_service_time(0.01)
        empty_hint = batcher.retry_after()
        for index in range(8):
            batcher.offer(request(f"r{index}"))
        assert batcher.retry_after() > empty_hint

    asyncio.run(scenario())

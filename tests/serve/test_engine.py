"""BatchInferenceEngine: ladder rungs, poisoned inputs, TTC gate."""

import numpy as np
import pytest

from repro.decision.pamdp import LaneBehavior
from repro.faults.service import poison_graph
from repro.serve import ServiceLevel, Verdict, front_ttc_from_graph
from repro.serve.engine import safety_action_from_graph
from repro.sim import constants


def test_full_head_answers_every_graph(engine, pool):
    results = engine.infer(pool[:4], ServiceLevel.FULL_HEAD)
    assert len(results) == 4
    for result in results:
        assert result.verdict is Verdict.OK
        assert result.level is ServiceLevel.FULL_HEAD
        assert np.isfinite(result.action.accel)


def test_cv_rung_skips_network_and_marks_degraded(engine, pool):
    results = engine.infer(pool[:3], ServiceLevel.CV_PERCEPTION)
    for result in results:
        assert result.verdict is Verdict.DEGRADED_PERCEPTION
        assert result.level is ServiceLevel.CV_PERCEPTION
        assert np.isfinite(result.action.accel)


def test_safety_rung_uses_no_networks(engine, pool):
    results = engine.infer(pool[:3], ServiceLevel.SAFETY_FALLBACK)
    for result in results:
        assert result.verdict is Verdict.DEGRADED_FALLBACK
        assert result.action.behavior is LaneBehavior.KEEP
        assert result.action.accel in (0.0, -constants.A_MAX)


def test_poisoned_graph_is_quarantined(engine, pool):
    graphs = [pool[0], poison_graph(pool[1]), pool[2]]
    results = engine.infer(graphs, ServiceLevel.FULL_HEAD)
    assert results[1].verdict is Verdict.DEGRADED_FALLBACK
    assert results[1].level is ServiceLevel.SAFETY_FALLBACK
    assert results[1].degraded_rows > 0
    # The poisoned neighbor must not contaminate the clean requests ...
    assert results[0].verdict is Verdict.OK
    assert results[2].verdict is Verdict.OK
    # ... whose results match the same clean pair batched alone, bitwise.
    clean = engine.infer([pool[0], pool[2]], ServiceLevel.FULL_HEAD)
    assert results[0].action == clean[0].action
    assert results[2].action == clean[1].action


def test_empty_batch_is_empty(engine):
    assert engine.infer([], ServiceLevel.FULL_HEAD) == []


def test_front_ttc_matches_hand_math(pool):
    graph = pool[0]
    row = graph.target_features[-1, 1]
    gap = float(row[1]) * 100.0 - constants.VEHICLE_LENGTH
    closing = -float(row[2]) * 10.0
    ttc = front_ttc_from_graph(graph)
    if closing <= 0.0:
        assert ttc is None or gap <= 0.5
    else:
        assert ttc == pytest.approx(gap / closing)


def test_front_ttc_none_for_zero_slot(pool):
    graph = poison_graph(pool[0])
    zeroed = pool[0].target_features.copy()
    zeroed[-1, 1, :] = 0.0
    from repro.perception.graph import SpatialTemporalGraph
    empty_front = SpatialTemporalGraph(zeroed, pool[0].contributor_features,
                                       pool[0].target_mask,
                                       pool[0].ego_features)
    assert front_ttc_from_graph(empty_front) is None
    assert safety_action_from_graph(empty_front).accel == 0.0
    # Non-finite target features brake unconditionally.
    assert safety_action_from_graph(graph).accel == -constants.A_MAX


def test_safety_brakes_when_ttc_below_threshold(pool):
    base = pool[0]
    features = base.target_features.copy()
    # Gap 25 m (0.25 * 100), closing 15 m/s -> TTC ~ 1.4 s < 3.0.
    features[-1, 1] = [0.0, 0.25, -1.5, 0.0]
    from repro.perception.graph import SpatialTemporalGraph
    graph = SpatialTemporalGraph(features, base.contributor_features,
                                 base.target_mask, base.ego_features)
    assert safety_action_from_graph(graph, ttc_brake=3.0).accel == -constants.A_MAX

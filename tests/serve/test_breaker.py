"""CircuitBreaker ladder: trips, cooldowns, half-open probes, recovery."""

from repro.serve import BatchStats, BreakerConfig, CircuitBreaker, ServiceLevel


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make(config=None):
    clock = FakeClock()
    breaker = CircuitBreaker(config or BreakerConfig(
        window=32, min_events=8, cooldown=1.0, probe_batches=2), clock=clock)
    return breaker, clock


def healthy(size=8):
    return BatchStats(size=size)


def degraded(size=8):
    return BatchStats(size=size, degraded_requests=size)


def test_starts_closed_at_full_head():
    breaker, _ = make()
    assert breaker.level is ServiceLevel.FULL_HEAD
    assert breaker.state == "closed"
    assert breaker.plan() == (ServiceLevel.FULL_HEAD, False)


def test_no_trip_below_min_events():
    breaker, _ = make()
    breaker.record(degraded(size=4))
    assert breaker.level is ServiceLevel.FULL_HEAD


def test_degraded_storm_trips_one_rung():
    breaker, _ = make()
    breaker.record(degraded())
    assert breaker.level is ServiceLevel.CV_PERCEPTION
    assert breaker.trips == 1
    assert "degraded" in breaker.last_trip_reason
    assert breaker.state == "open"


def test_deadline_miss_storm_trips():
    breaker, _ = make()
    breaker.record(BatchStats(size=8, deadline_misses=8))
    assert breaker.level is ServiceLevel.CV_PERCEPTION
    assert "deadline" in breaker.last_trip_reason


def test_handler_failure_trips_immediately():
    breaker, _ = make()
    breaker.record(BatchStats(size=1, handler_failure=True))
    assert breaker.level is ServiceLevel.CV_PERCEPTION
    assert breaker.trips == 1


def test_half_open_after_cooldown_probes_one_rung_up():
    breaker, clock = make()
    breaker.record(degraded())
    assert breaker.plan() == (ServiceLevel.CV_PERCEPTION, False)
    clock.advance(1.5)
    assert breaker.state == "half-open"
    assert breaker.plan() == (ServiceLevel.FULL_HEAD, True)


def test_probe_successes_recover_one_rung():
    breaker, clock = make()
    breaker.record(degraded())
    clock.advance(1.5)
    level, probe = breaker.plan()
    breaker.record(healthy(), probe=True)
    assert breaker.level is ServiceLevel.CV_PERCEPTION  # one success isn't enough
    breaker.record(healthy(), probe=True)
    assert breaker.level is ServiceLevel.FULL_HEAD
    assert breaker.recoveries == 1
    assert breaker.state == "closed"


def test_probe_failure_restarts_cooldown():
    breaker, clock = make()
    breaker.record(degraded())
    clock.advance(1.5)
    breaker.record(degraded(), probe=True)
    assert breaker.level is ServiceLevel.CV_PERCEPTION
    assert breaker.state == "open"  # cooldown restarted
    clock.advance(0.5)
    assert breaker.plan() == (ServiceLevel.CV_PERCEPTION, False)


def test_bottom_rung_trip_restarts_cooldown_without_stepping():
    breaker, clock = make()
    breaker.record(degraded())
    breaker.record(degraded())
    assert breaker.level is ServiceLevel.SAFETY_FALLBACK
    trips_before = breaker.trips
    breaker.record(BatchStats(size=1, handler_failure=True))
    assert breaker.level is ServiceLevel.SAFETY_FALLBACK
    assert breaker.trips == trips_before
    assert breaker.state == "open"


def test_recovery_below_full_head_keeps_cooldown():
    breaker, clock = make()
    breaker.record(degraded())
    breaker.record(degraded())
    assert breaker.level is ServiceLevel.SAFETY_FALLBACK
    clock.advance(1.5)
    breaker.record(healthy(), probe=True)
    breaker.record(healthy(), probe=True)
    assert breaker.level is ServiceLevel.CV_PERCEPTION
    # Next rung gets its own cooldown before probing resumes.
    assert breaker.state == "open"
    clock.advance(1.5)
    assert breaker.plan() == (ServiceLevel.FULL_HEAD, True)


def test_window_eviction_keeps_fractions_recent():
    breaker, _ = make(BreakerConfig(window=16, min_events=8, cooldown=1.0))
    # Old degradation scrolls out of the window before tripping.
    breaker.record(BatchStats(size=4, degraded_requests=4))
    for _ in range(8):
        breaker.record(healthy(size=8))
    assert breaker.level is ServiceLevel.FULL_HEAD

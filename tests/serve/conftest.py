"""Shared fixtures for the serving tests: one real HEAD engine."""

import numpy as np
import pytest

from repro.core.config import HEADConfig
from repro.core.head import HEAD
from repro.serve import BatchInferenceEngine, make_graph_pool


@pytest.fixture(scope="session")
def head():
    return HEAD(HEADConfig(), rng=np.random.default_rng(0))


@pytest.fixture(scope="session")
def engine(head):
    return BatchInferenceEngine.from_head(head)


@pytest.fixture(scope="session")
def pool(head):
    return make_graph_pool(12, seed=1,
                           history_steps=head.config.history_steps)

"""ServeClient: per-attempt timeouts, jittered backoff, retry budget."""

import asyncio

import numpy as np

from repro.decision.pamdp import LaneBehavior, ParameterizedAction
from repro.serve import (ClientConfig, InferenceResponse, RetryBudget,
                         ServeClient, Verdict)

HANG = object()


def ok_response(rid="r0"):
    return InferenceResponse(
        request_id=rid, verdict=Verdict.OK,
        action=ParameterizedAction(LaneBehavior.KEEP, 0.0))


def shed_response(rid="r0", retry_after=0.001):
    return InferenceResponse(request_id=rid, verdict=Verdict.SHED_QUEUE_FULL,
                             retry_after=retry_after)


class ScriptedServer:
    """Duck-types the two server attributes the client touches.

    Each submit pops the next scripted item: an InferenceResponse
    (returned as an already-resolved future) or HANG (a future that
    never resolves, to exercise the client-side timeout).
    """

    def __init__(self, script):
        self.script = list(script)
        self.now = 0.0
        self.deadlines = []

    def clock(self):
        return self.now

    def submit_nowait(self, graph, deadline=None, request_id=None):
        self.deadlines.append(deadline)
        future = asyncio.get_running_loop().create_future()
        item = self.script.pop(0)
        if item is not HANG:
            future.set_result(item)
        return future


def make_client(script, config=None, sleeps=None):
    server = ScriptedServer(script)
    recorded = [] if sleeps is None else sleeps

    async def fake_sleep(delay):
        recorded.append(delay)

    client = ServeClient(server, config or ClientConfig(),
                         seed=0, sleep=fake_sleep)
    return client, server, recorded


def test_first_attempt_success_never_retries():
    client, _, sleeps = make_client([ok_response()])

    response = asyncio.run(client.infer(object()))
    assert response.verdict is Verdict.OK
    assert response.attempts == 1
    assert client.retries_total == 0 and sleeps == []


def test_retries_shed_then_succeeds():
    client, _, sleeps = make_client(
        [shed_response(retry_after=0.05), ok_response()])

    response = asyncio.run(client.infer(object()))
    assert response.verdict is Verdict.OK
    assert response.attempts == 2
    assert client.retries_total == 1
    # Backoff honors the server's retry_after hint as a floor.
    assert len(sleeps) == 1 and sleeps[0] >= 0.05


def test_degraded_answer_is_not_retried():
    degraded = InferenceResponse(
        request_id="r0", verdict=Verdict.DEGRADED_FALLBACK,
        action=ParameterizedAction(LaneBehavior.KEEP, 0.0))
    client, _, sleeps = make_client([degraded])

    response = asyncio.run(client.infer(object()))
    assert response.verdict is Verdict.DEGRADED_FALLBACK
    assert response.attempts == 1 and sleeps == []


def test_client_timeout_is_typed_and_counted():
    config = ClientConfig(timeout=0.01, max_attempts=2)
    client, _, _ = make_client([HANG, HANG], config=config)

    response = asyncio.run(client.infer(object()))
    assert response.verdict is Verdict.CLIENT_TIMEOUT
    assert response.attempts == 2
    assert client.timeouts_total == 2


def test_retry_budget_caps_amplification():
    config = ClientConfig(max_attempts=5, retry_budget=0.0, retry_burst=1.0)
    client, server, _ = make_client([shed_response() for _ in range(5)],
                                    config=config)

    response = asyncio.run(client.infer(object()))
    # One banked token allows one retry; the second is denied.
    assert response.verdict is Verdict.SHED_QUEUE_FULL
    assert response.attempts == 2
    assert client.retries_total == 1
    assert client.budget.denied == 1
    assert len(server.script) == 3  # three scripted answers never requested


def test_budget_refills_with_organic_traffic():
    budget = RetryBudget(rate=0.5, burst=2.0)
    assert budget.try_spend() and budget.try_spend()
    assert not budget.try_spend()
    budget.note_request()
    budget.note_request()
    assert budget.try_spend()
    assert budget.denied == 1


def test_deadline_budget_fixes_absolute_deadline_and_stops_retries():
    client, server, sleeps = make_client(
        [shed_response(), ok_response()],
        config=ClientConfig(max_attempts=3))

    response = asyncio.run(client.infer(object(), deadline_budget=0.0))
    # Deadline now+0.0 is already past after the first answer: no retry,
    # and the deadline the server saw was absolute, not per-attempt.
    assert response.verdict is Verdict.SHED_QUEUE_FULL
    assert response.attempts == 1 and sleeps == []
    assert server.deadlines == [0.0]


def test_delay_is_jittered_bounded_and_floored():
    config = ClientConfig(backoff_base=0.02, backoff_factor=2.0,
                          backoff_max=0.5, jitter=0.5)
    client, _, _ = make_client([], config=config)

    for _ in range(50):
        first = client._delay(1, None)
        assert 0.01 <= first <= 0.02
        deep = client._delay(10, None)
        assert 0.25 <= deep <= 0.5  # capped at backoff_max
    assert client._delay(1, 1.5) == 1.5  # retry_after wins when later

    # Seeded clients replay identical jitter sequences.
    a, _, _ = make_client([], config=config)
    b, _, _ = make_client([], config=config)
    assert [a._delay(2, None) for _ in range(8)] \
        == [b._delay(2, None) for _ in range(8)]
    assert isinstance(a._delay(1, None), float)
    assert np.isfinite(a._delay(1, None))

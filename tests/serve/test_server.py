"""InferenceServer: typed outcomes for every path through the worker."""

import asyncio
import time

import pytest

from repro.decision.pamdp import LaneBehavior, ParameterizedAction
from repro.serve import (BatcherConfig, BreakerConfig, InferenceServer,
                         ServerConfig, ServiceLevel, Verdict)
from repro.serve.engine import ItemResult


class StubEngine:
    """Instant answers; optional per-call sleep or exception."""

    def __init__(self, sleep=0.0, raises=None):
        self.sleep = sleep
        self.raises = raises
        self.calls = 0

    def infer(self, graphs, level):
        self.calls += 1
        if level is not ServiceLevel.SAFETY_FALLBACK:
            if self.sleep:
                time.sleep(self.sleep)
            if self.raises is not None:
                raise self.raises
        return [ItemResult(
            action=ParameterizedAction(LaneBehavior.KEEP, 0.0),
            verdict=(Verdict.OK if level is ServiceLevel.FULL_HEAD
                     else Verdict.DEGRADED_FALLBACK),
            level=level) for _ in graphs]


def run(coro):
    return asyncio.run(coro)


def make_server(engine=None, **kwargs):
    return InferenceServer(engine or StubEngine(), ServerConfig(**kwargs))


def test_single_request_resolves_ok():
    async def scenario():
        server = make_server()
        await server.start()
        response = await server.submit(object(), request_id="r1")
        await server.stop()
        return response

    response = run(scenario())
    assert response.request_id == "r1"
    assert response.verdict is Verdict.OK
    assert response.action is not None
    assert response.latency >= 0.0


def test_queue_full_is_typed_backpressure():
    async def scenario():
        server = make_server(StubEngine(sleep=0.1),
                             batcher=BatcherConfig(max_batch=1, capacity=2,
                                                   batch_window=0.0))
        await server.start()
        futures = [server.submit_nowait(object()) for _ in range(8)]
        responses = await asyncio.gather(*futures)
        await server.stop()
        return responses

    responses = run(scenario())
    rejected = [r for r in responses if r.verdict is Verdict.SHED_QUEUE_FULL]
    assert rejected, "no backpressure at 4x capacity"
    for response in rejected:
        assert response.retry_after > 0.0
        assert response.action is None


def test_expired_deadline_is_shed_typed():
    async def scenario():
        server = make_server(StubEngine(sleep=0.05),
                             batcher=BatcherConfig(max_batch=1,
                                                   batch_window=0.0))
        await server.start()
        blocker = server.submit_nowait(object())
        doomed = server.submit_nowait(object(),
                                      deadline=server.clock() + 0.01)
        responses = await asyncio.gather(blocker, doomed)
        await server.stop()
        return responses

    _, doomed = run(scenario())
    assert doomed.verdict is Verdict.SHED_DEADLINE
    assert doomed.action is None


def test_handler_stall_yields_typed_fallback_and_trips_breaker():
    async def scenario():
        engine = StubEngine(sleep=0.5)
        server = make_server(engine, handler_timeout=0.05,
                             breaker=BreakerConfig(cooldown=60.0))
        await server.start()
        response = await server.submit(object())
        health = server.health_report()
        await server.stop()
        return response, health

    response, health = run(scenario())
    assert response.verdict is Verdict.DEGRADED_FALLBACK
    assert response.action is not None
    assert "exceeded" in response.detail
    assert health.handler_failures_total == 1
    assert health.breaker_trips == 1
    assert health.level is ServiceLevel.CV_PERCEPTION


def test_handler_exception_yields_typed_fallback():
    async def scenario():
        server = make_server(StubEngine(raises=RuntimeError("boom")))
        await server.start()
        response = await server.submit(object())
        await server.stop()
        return response

    response = run(scenario())
    assert response.verdict is Verdict.DEGRADED_FALLBACK
    assert "RuntimeError" in response.detail


def test_engine_failing_at_every_rung_still_resolves_typed():
    class BrokenEngine:
        def infer(self, graphs, level):
            raise RuntimeError("broken at every rung")

    async def scenario():
        server = make_server(BrokenEngine())
        await server.start()
        response = await server.submit(object())
        await server.stop()
        return response

    response = run(scenario())
    # Even when the safety fallback itself raises, the caller gets a
    # typed ERROR -- never a stranded future.
    assert response.verdict is Verdict.ERROR
    assert response.action is None
    assert "fallback raised" in response.detail


def test_stop_drains_without_hanging_submitters():
    async def scenario():
        server = make_server(batcher=BatcherConfig(batch_window=0.0))
        await server.start()
        futures = [server.submit_nowait(object()) for _ in range(10)]
        await server.stop()
        responses = await asyncio.gather(*futures)
        late = await server.submit(object())
        return responses, late

    responses, late = run(scenario())
    for response in responses:
        assert response.verdict in (Verdict.OK, Verdict.SHED_SHUTDOWN)
    assert late.verdict is Verdict.SHED_SHUTDOWN


def test_double_start_is_an_error():
    async def scenario():
        server = make_server()
        await server.start()
        with pytest.raises(RuntimeError):
            await server.start()
        await server.stop()

    run(scenario())


def test_health_report_shape():
    async def scenario():
        server = make_server()
        await server.start()
        await server.submit(object())
        report = server.health_report()
        await server.stop()
        return report, server.health_report()

    live, stopped = run(scenario())
    assert live.ready and not live.draining
    assert live.requests_total == 1 and live.responses_total == 1
    assert live.breaker_state == "closed"
    assert 0.0 <= live.batch_occupancy <= 1.0
    wire = live.to_wire()
    assert wire["level"] == "full_head"
    assert not stopped.ready and stopped.draining


def test_default_deadline_applies_when_client_sends_none():
    async def scenario():
        server = make_server(StubEngine(sleep=0.1),
                             batcher=BatcherConfig(max_batch=1,
                                                   batch_window=0.0),
                             default_deadline=0.01)
        await server.start()
        blocker = server.submit_nowait(object())
        doomed = server.submit_nowait(object())
        responses = await asyncio.gather(blocker, doomed)
        await server.stop()
        return responses

    responses = run(scenario())
    assert any(r.verdict is Verdict.SHED_DEADLINE for r in responses)

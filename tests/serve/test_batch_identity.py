"""Numerical identity through the serving path (the lock-down suite).

Two properties the batcher's canonical ordering guarantees:

1. A batch of one through the server is **bit-identical** to calling
   ``PDQNAgent.act`` directly on the same graph -- serving adds zero
   numerical perturbation to the single-request path.
2. For a fixed *membership* of a micro-batch, per-request results never
   depend on arrival order: the batcher sorts by request id before
   stacking, so any interleaving of the same requests produces
   bit-identical per-request actions.

(What is deliberately NOT claimed: invariance across different batch
*memberships*.  BLAS kernels pick different block schedules for
different stacked shapes, which can shift results by an ulp -- see
docs/serving.md.)
"""

import asyncio

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.decision.pamdp import augmented_state_from_graph
from repro.serve import (BatcherConfig, InferenceServer, ServerConfig,
                         Verdict, make_graph_pool)

SLOW_SETTINGS = settings(
    max_examples=8, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture])


def direct_action(head, graph):
    prediction = (head.guard or head.predictor).predict(graph)
    state = augmented_state_from_graph(graph, prediction)
    return head.agent.act(state, explore=False)


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@SLOW_SETTINGS
def test_batch_of_one_is_bit_identical_to_direct_act(head, engine, seed):
    graph = make_graph_pool(1, seed=seed,
                            history_steps=head.config.history_steps)[0]
    expected = direct_action(head, graph)

    async def scenario():
        server = InferenceServer(engine, ServerConfig(
            batcher=BatcherConfig(max_batch=4, batch_window=0.0)))
        await server.start()
        response = await server.submit(graph)
        await server.stop()
        return response

    response = asyncio.run(scenario())
    assert response.verdict is Verdict.OK
    assert response.action.behavior is expected.behavior
    # Bitwise, not approx: serving must not perturb the number at all.
    assert (np.float64(response.action.accel).tobytes()
            == np.float64(expected.accel).tobytes())


@given(order=st.permutations(list(range(6))),
       seed=st.integers(min_value=0, max_value=1000))
@SLOW_SETTINGS
def test_arrival_order_never_changes_results(head, engine, order, seed):
    graphs = make_graph_pool(6, seed=seed,
                             history_steps=head.config.history_steps)
    ids = [f"q{index}" for index in range(6)]

    async def scenario(submission_order):
        server = InferenceServer(engine, ServerConfig(
            batcher=BatcherConfig(max_batch=8, batch_window=0.05)))
        await server.start()
        # Submit synchronously (no await between offers) so the worker
        # collects every request into one micro-batch.
        futures = {ids[i]: server.submit_nowait(graphs[i], request_id=ids[i])
                   for i in submission_order}
        responses = await asyncio.gather(*futures.values())
        await server.stop()
        return {response.request_id: response.action
                for response in responses}

    baseline = asyncio.run(scenario(list(range(6))))
    permuted = asyncio.run(scenario(list(order)))
    assert set(baseline) == set(permuted) == set(ids)
    for rid in ids:
        assert baseline[rid].behavior is permuted[rid].behavior
        assert (np.float64(baseline[rid].accel).tobytes()
                == np.float64(permuted[rid].accel).tobytes())

"""Tests for trajectory recording and the REAL dataset substitute."""

import numpy as np
import pytest

from repro.data import (REAL_SEGMENT_LENGTH, TrajectorySet,
                        generate_real_dataset, record_trajectories)
from repro.sim import Road, SimulationEngine, Vehicle, VehicleState, populate_traffic


@pytest.fixture(scope="module")
def dataset():
    return generate_real_dataset(seed=9, steps=80, density_per_km=120)


def test_real_defaults_match_paper_segment(dataset):
    assert dataset.road.length == pytest.approx(REAL_SEGMENT_LENGTH)
    assert dataset.road.num_lanes == 6
    assert len(dataset) == 80


def test_density_maintained_by_inflow(dataset):
    sizes = [len(snapshot) for snapshot in dataset.snapshots]
    assert min(sizes) > 0.6 * max(sizes)


def test_generation_reproducible():
    a = generate_real_dataset(seed=4, steps=20, density_per_km=100)
    b = generate_real_dataset(seed=4, steps=20, density_per_km=100)
    assert a.snapshots[10] == b.snapshots[10]


def test_slowdown_events_create_braking(dataset):
    """Some vehicle must decelerate hard somewhere in the recording."""
    hard_brakes = 0
    for earlier, later in zip(dataset.snapshots[:-1], dataset.snapshots[1:]):
        for vid, state in later.items():
            if vid in earlier and earlier[vid].v - state.v > 0.75:
                hard_brakes += 1
    assert hard_brakes > 0


def test_presence_span(dataset):
    vid = dataset.vehicle_ids()[0]
    first, last = dataset.presence_span(vid)
    assert 0 <= first <= last < len(dataset)
    assert vid in dataset.snapshots[first]
    with pytest.raises(KeyError):
        dataset.presence_span("nope")


def test_split_chronological(dataset):
    train, test = dataset.split(0.75)
    assert len(train) == 60
    assert len(test) == 20
    assert train.snapshots[0] == dataset.snapshots[0]
    with pytest.raises(ValueError):
        dataset.split(1.5)


def test_records_roundtrip(tmp_path, dataset):
    path = dataset.save(tmp_path / "real")
    loaded = TrajectorySet.load(path)
    assert len(loaded) == len(dataset)
    for t in (0, 40, 79):
        assert len(loaded.snapshots[t]) == len(dataset.snapshots[t])
        original = sorted((s.lat, round(s.lon, 9), round(s.v, 9))
                          for s in dataset.snapshots[t].values())
        restored = sorted((s.lat, round(s.lon, 9), round(s.v, 9))
                          for s in loaded.snapshots[t].values())
        assert original == restored


def test_record_trajectories_live_engine():
    engine = SimulationEngine(road=Road(length=300.0), rng=np.random.default_rng(0))
    populate_traffic(engine, np.random.default_rng(0), density_per_km=60)
    recorded = record_trajectories(engine, steps=10)
    assert len(recorded) == 10
    assert all(isinstance(s, dict) for s in recorded.snapshots)


def test_to_records_schema(dataset):
    records = dataset.to_records()
    assert records.shape[1] == 5
    assert records[:, 0].min() == 0
    lanes = records[:, 2]
    assert lanes.min() >= 1 and lanes.max() <= 6

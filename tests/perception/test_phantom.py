"""Tests for phantom vehicle construction (paper Eqs. 4-6)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.perception import (AREA_COUNT, ObservationBuffer, TrackKind,
                              build_scene)
from repro.sim import Road, VehicleState

Z = 5
R = 100.0


@pytest.fixture
def road():
    return Road(length=100000.0)


def state(lane, lon, v=10.0):
    return VehicleState(lat=lane, lon=lon, v=v)


def make_buffer(observed: dict[str, VehicleState]) -> ObservationBuffer:
    """Buffer with z identical frames (stationary world for simplicity)."""
    buffer = ObservationBuffer(history_steps=Z)
    for _ in range(Z):
        buffer.update(observed)
    return buffer


def ego_history(lane=3, lon=5000.0, v=10.0):
    return [state(lane, lon, v)] * Z


def test_empty_world_builds_all_phantom_targets(road):
    scene = build_scene("ego", ego_history(), make_buffer({}), road, detection_range=R)
    assert len(scene.targets) == AREA_COUNT
    for area, target in scene.targets.items():
        assert target.kind is TrackKind.PHANTOM_RANGE
    assert scene.target_mask() == [0.0] * 6


def test_range_phantom_positions_follow_eq4(road):
    ego = ego_history(lane=3, lon=5000.0, v=10.0)
    scene = build_scene("ego", ego, make_buffer({}), road, detection_range=R)
    expect = {
        1: (2, 5000.0 + R), 2: (3, 5000.0 + R), 3: (4, 5000.0 + R),
        4: (2, 5000.0 - R), 5: (3, 5000.0 - R), 6: (4, 5000.0 - R),
    }
    for area, (lane, lon) in expect.items():
        current = scene.targets[area].current
        assert (current.lat, current.lon) == (lane, lon)
        assert current.v == pytest.approx(10.0)  # phantom inherits ego speed


def test_inherent_phantoms_on_leftmost_lane(road):
    ego = ego_history(lane=1, lon=5000.0)
    scene = build_scene("ego", ego, make_buffer({}), road, detection_range=R)
    for area in (1, 4):  # left areas become moving road boundaries (Eq. 5)
        target = scene.targets[area]
        assert target.kind is TrackKind.PHANTOM_INHERENT
        assert target.current.lat == 0
        assert target.current.lon == pytest.approx(5000.0)
    for area in (2, 3, 5, 6):
        assert scene.targets[area].kind is TrackKind.PHANTOM_RANGE


def test_inherent_phantoms_on_rightmost_lane(road):
    ego = ego_history(lane=road.num_lanes, lon=5000.0)
    scene = build_scene("ego", ego, make_buffer({}), road, detection_range=R)
    for area in (3, 6):
        target = scene.targets[area]
        assert target.kind is TrackKind.PHANTOM_INHERENT
        assert target.current.lat == road.num_lanes + 1


def test_observed_targets_fill_their_areas(road):
    observed = {"front": state(3, 5020.0), "rear_left": state(2, 4980.0)}
    scene = build_scene("ego", ego_history(), make_buffer(observed), road,
                        detection_range=R)
    assert scene.targets[2].vid == "front"
    assert scene.targets[2].kind is TrackKind.OBSERVED
    assert scene.targets[4].vid == "rear_left"
    assert scene.target_mask() == [0.0, 1.0, 0.0, 1.0, 0.0, 0.0]


def test_ego_occupies_mirror_slot(road):
    observed = {"front": state(3, 5020.0)}
    scene = build_scene("ego", ego_history(), make_buffer(observed), road,
                        detection_range=R)
    # C_2 is the front target; the ego must be its rear surrounding C_{2.5}.
    assert scene.surroundings[(2, 5)].kind is TrackKind.EGO
    for area in range(1, AREA_COUNT + 1):
        mirror = {1: 6, 2: 5, 3: 4, 4: 3, 5: 2, 6: 1}[area]
        assert scene.surroundings[(area, mirror)].kind is TrackKind.EGO


def test_phantom_target_surroundings_zero_padded(road):
    scene = build_scene("ego", ego_history(), make_buffer({}), road, detection_range=R)
    for area in range(1, AREA_COUNT + 1):
        mirror = {1: 6, 2: 5, 3: 4, 4: 3, 5: 2, 6: 1}[area]
        for sub_area in range(1, AREA_COUNT + 1):
            node = scene.surroundings[(area, sub_area)]
            if sub_area == mirror:
                assert node.kind is TrackKind.EGO
            else:
                assert node.kind is TrackKind.ZERO


def test_occlusion_phantom_eq6_geometry(road):
    """The aligned-diagonal hole gets an Eq. 6 mirror phantom."""
    observed = {"front": state(3, 5030.0, v=12.0)}
    scene = build_scene("ego", ego_history(lane=3, lon=5000.0), make_buffer(observed),
                        road, detection_range=R)
    # C_2 = front; C_{2.2} (directly ahead of C_2) is unobserved -> occlusion.
    node = scene.surroundings[(2, 2)]
    assert node.kind is TrackKind.PHANTOM_OCCLUSION
    assert node.current.lat == 3
    assert node.current.lon == pytest.approx(5030.0 + 30.0)  # mirrored offset
    assert node.current.v == pytest.approx(12.0)             # inherits C_i speed


def test_occlusion_phantom_diagonal_case(road):
    observed = {"fl": state(2, 5040.0, v=11.0)}
    scene = build_scene("ego", ego_history(lane=3, lon=5000.0), make_buffer(observed),
                        road, detection_range=R)
    node = scene.surroundings[(1, 1)]
    assert node.kind is TrackKind.PHANTOM_OCCLUSION
    assert node.current.lat == 1
    assert node.current.lon == pytest.approx(5040.0 + 40.0)


def test_occlusion_falls_back_to_inherent_off_road(road):
    """Eq. 6 cannot place a phantom off-road; Eq. 5 applies instead."""
    observed = {"fl": state(1, 5040.0)}  # target already leftmost
    scene = build_scene("ego", ego_history(lane=2, lon=5000.0), make_buffer(observed),
                        road, detection_range=R)
    node = scene.surroundings[(1, 1)]
    assert node.kind is TrackKind.PHANTOM_INHERENT
    assert node.current.lat == 0


def test_observed_surrounding_beats_phantom(road):
    observed = {
        "front": state(3, 5030.0),
        "front2": state(3, 5060.0),  # visible leader-of-leader
    }
    scene = build_scene("ego", ego_history(), make_buffer(observed), road,
                        detection_range=R)
    node = scene.surroundings[(2, 2)]
    assert node.kind is TrackKind.OBSERVED
    assert node.vid == "front2"


def test_surrounding_range_missing_relative_to_target(road):
    observed = {"front": state(3, 5030.0, v=12.0)}
    scene = build_scene("ego", ego_history(lane=3, lon=5000.0), make_buffer(observed),
                        road, detection_range=R)
    # C_{2.1}: front-left of the front target -> range missing around C_2.
    node = scene.surroundings[(2, 1)]
    assert node.kind is TrackKind.PHANTOM_RANGE
    assert node.current.lat == 2
    assert node.current.lon == pytest.approx(5030.0 + R)
    assert node.current.v == pytest.approx(12.0)


def test_phantom_count(road):
    scene = build_scene("ego", ego_history(), make_buffer({}), road, detection_range=R)
    assert scene.phantom_count() == 6  # six phantom targets, zero-padded rest


@given(lane=st.integers(1, 6), lon=st.floats(1000.0, 9000.0),
       v=st.floats(1.39, 25.0), seed=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_scene_always_complete_property(lane, lon, v, seed):
    """Whatever the sensor sees, the scene has 6 targets + 36 surroundings."""
    rng = np.random.default_rng(seed)
    road = Road(length=100000.0)
    observed = {
        f"v{i}": state(int(rng.integers(1, 7)), lon + float(rng.uniform(-90, 90)),
                       float(rng.uniform(1.39, 25.0)))
        for i in range(int(rng.integers(0, 8)))
    }
    scene = build_scene("ego", [state(lane, lon, v)] * Z, make_buffer(observed),
                        road, detection_range=R)
    assert set(scene.targets) == set(range(1, 7))
    assert set(scene.surroundings) == {(i, j) for i in range(1, 7) for j in range(1, 7)}
    for node in list(scene.targets.values()) + list(scene.surroundings.values()):
        assert len(node.history) == Z

"""Tests for the range + occlusion sensor model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.perception import Sensor, segment_intersects_rectangle
from repro.sim import Road, VehicleState


@pytest.fixture
def road():
    return Road(length=1000.0)


@pytest.fixture
def sensor():
    return Sensor(detection_range=100.0)


def state(lane, lon, v=10.0):
    return VehicleState(lat=lane, lon=lon, v=v)


def test_in_range_boundary(sensor, road):
    ego = state(3, 500.0)
    assert sensor.in_range(ego, state(3, 599.0), road)
    assert not sensor.in_range(ego, state(3, 601.0), road)
    assert sensor.in_range(ego, state(3, 401.0), road)


def test_in_range_uses_euclidean_distance(sensor, road):
    ego = state(1, 500.0)
    # 99 m ahead but 5 lanes over: sqrt(99^2 + 16^2) > 100.
    assert not sensor.in_range(ego, state(6, 599.0), road)


def test_segment_rectangle_hit_and_miss():
    assert segment_intersects_rectangle((0, 0), (10, 0), (5, 0), 1.0, 1.0)
    assert not segment_intersects_rectangle((0, 0), (10, 0), (5, 3.0), 1.0, 1.0)
    # Vertical segment through a box.
    assert segment_intersects_rectangle((5, -5), (5, 5), (5, 0), 1.0, 1.0)
    # Degenerate horizontal slab miss.
    assert not segment_intersects_rectangle((0, 5), (10, 5), (5, 0), 1.0, 1.0)


def test_same_lane_occlusion(sensor, road):
    """A leader hides the leader-of-leader in the same lane."""
    ego = state(3, 500.0)
    blocker = state(3, 520.0)
    hidden = state(3, 540.0)
    world = {"blocker": blocker, "hidden": hidden}
    assert sensor.is_occluded(ego, hidden, world, road, target_id="hidden")
    assert not sensor.is_occluded(ego, blocker, world, road, target_id="blocker")


def test_adjacent_lane_not_occluded_by_same_lane_leader(sensor, road):
    ego = state(3, 500.0)
    blocker = state(3, 520.0)
    side = state(2, 540.0)
    world = {"blocker": blocker, "side": side}
    assert not sensor.is_occluded(ego, side, world, road, target_id="side")


def test_diagonal_occlusion(sensor, road):
    """Fig. 4 geometry: a front-left vehicle shadows the cell beyond it."""
    ego = state(3, 500.0)
    blocker = state(2, 520.0)
    hidden = state(1, 540.5)  # roughly on the extended ego->blocker ray
    world = {"blocker": blocker, "hidden": hidden}
    assert sensor.is_occluded(ego, hidden, world, road, target_id="hidden")


def test_observe_filters_range_occlusion_and_self(sensor, road):
    ego = state(3, 500.0)
    world = {
        "ego": ego,
        "visible": state(3, 520.0),
        "hidden": state(3, 545.0),
        "far": state(3, 700.0),
        "side": state(2, 530.0),
    }
    observed = sensor.observe("ego", ego, world, road)
    assert set(observed) == {"visible", "side"}


def test_observe_empty_world(sensor, road):
    ego = state(1, 0.0)
    assert sensor.observe("ego", ego, {"ego": ego}, road) == {}


@given(lon=st.floats(-90.0, 90.0), lane=st.integers(1, 6))
@settings(max_examples=40, deadline=None)
def test_lone_vehicle_in_range_always_observed(lon, lane):
    """With no obstacles there is nothing to occlude."""
    road = Road(length=10000.0)
    sensor = Sensor(detection_range=100.0)
    ego = state(3, 5000.0)
    other = state(lane, 5000.0 + lon)
    if lon == 0.0 and lane == 3:
        return
    world = {"ego": ego, "other": other}
    observed = sensor.observe("ego", ego, world, road)
    expected = sensor.in_range(ego, other, road)
    assert ("other" in observed) == expected


@given(seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_occlusion_monotone_property(seed):
    """Adding an obstacle can only shrink the observed set."""
    rng = np.random.default_rng(seed)
    road = Road(length=10000.0)
    sensor = Sensor()
    ego = state(3, 5000.0)
    vehicles = {
        f"v{i}": state(int(rng.integers(1, 7)), 5000.0 + float(rng.uniform(-90, 90)))
        for i in range(6)
    }
    base = sensor.observe("ego", ego, dict(vehicles), road)
    extra = dict(vehicles)
    extra["extra"] = state(3, 5000.0 + float(rng.uniform(5, 90)))
    wider = sensor.observe("ego", ego, extra, road)
    assert set(base) - {"extra"} >= set(wider) - {"extra"} - (set(wider) - set(base))
    # every vehicle observed with the extra obstacle was observed without it
    assert all(vid in base or vid == "extra" for vid in wider)

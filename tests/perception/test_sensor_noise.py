"""Tests for sensor measurement noise (NGSIM-like detection error)."""

import numpy as np
import pytest

from repro.perception import Sensor
from repro.sim import Road, VehicleState


@pytest.fixture
def road():
    return Road(length=1000.0)


def world(road):
    return {
        "ego": VehicleState(3, 500.0, 15.0),
        "a": VehicleState(3, 530.0, 12.0),
        "b": VehicleState(2, 520.0, 18.0),
    }


def test_noise_free_sensor_returns_exact_states(road):
    sensor = Sensor()
    observed = sensor.observe("ego", world(road)["ego"], world(road), road)
    assert observed["a"] == VehicleState(3, 530.0, 12.0)


def test_noise_perturbs_positions_and_speeds(road):
    sensor = Sensor(position_noise=0.5, velocity_noise=0.5, seed=3)
    observed = sensor.observe("ego", world(road)["ego"], world(road), road)
    assert observed["a"].lon != 530.0
    assert observed["a"].v != 12.0
    assert observed["a"].lat == 3  # lane detection stays exact


def test_noise_is_seeded_and_reproducible(road):
    first = Sensor(position_noise=0.5, velocity_noise=0.5, seed=9)
    second = Sensor(position_noise=0.5, velocity_noise=0.5, seed=9)
    a = first.observe("ego", world(road)["ego"], world(road), road)
    b = second.observe("ego", world(road)["ego"], world(road), road)
    assert a["a"].lon == b["a"].lon
    assert a["b"].v == b["b"].v


def test_noise_magnitude_statistics(road):
    sensor = Sensor(position_noise=0.3, velocity_noise=0.0, seed=1)
    deviations = []
    for _ in range(300):
        observed = sensor.observe("ego", world(road)["ego"], world(road), road)
        deviations.append(observed["a"].lon - 530.0)
    deviations = np.array(deviations)
    assert abs(deviations.mean()) < 0.1
    assert 0.2 < deviations.std() < 0.4


def test_speed_never_negative(road):
    sensor = Sensor(velocity_noise=50.0, seed=2)
    slow_world = {"ego": VehicleState(3, 500.0, 15.0),
                  "slow": VehicleState(3, 520.0, 0.5)}
    for _ in range(50):
        observed = sensor.observe("ego", slow_world["ego"], slow_world, road)
        assert observed["slow"].v >= 0.0

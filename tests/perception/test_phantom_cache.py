"""PhantomCache: bit-identical equivalence, LRU bound, stats, disable."""

import numpy as np
import pytest

from repro.perception import ObservationBuffer, build_scene
from repro.perception.phantom import PHANTOM_CACHE, PhantomCache
from repro.sim import Road, VehicleState

Z = 5
R = 100.0


@pytest.fixture(autouse=True)
def fresh_cache():
    PHANTOM_CACHE.clear()
    PHANTOM_CACHE.enabled = True
    yield
    PHANTOM_CACHE.clear()
    PHANTOM_CACHE.enabled = True


def state(lane, lon, v=10.0):
    return VehicleState(lat=lane, lon=lon, v=v)


def make_buffer(observed):
    buffer = ObservationBuffer(history_steps=Z)
    for _ in range(Z):
        buffer.update(observed)
    return buffer


def build(road, lon=5000.0, observed=None):
    ego = [state(3, lon)] * Z
    return build_scene("ego", ego, make_buffer(observed or {}), road,
                       detection_range=R)


def scenes_equal(a, b):
    assert set(a.targets) == set(b.targets)
    for area in a.targets:
        ta, tb = a.targets[area], b.targets[area]
        assert ta.kind is tb.kind
        assert ta.history == tb.history  # VehicleState is frozen: exact
    assert set(a.surroundings) == set(b.surroundings)
    for key in a.surroundings:
        sa, sb = a.surroundings[key], b.surroundings[key]
        assert sa.kind is sb.kind
        assert sa.history == sb.history


def test_cached_scene_is_bit_identical_to_uncached():
    road = Road(length=100000.0)
    PHANTOM_CACHE.enabled = False
    uncached = build(road)
    PHANTOM_CACHE.enabled = True
    cold = build(road)   # populates the cache
    warm = build(road)   # served from it
    assert PHANTOM_CACHE.hits > 0
    scenes_equal(uncached, cold)
    scenes_equal(uncached, warm)


def test_repeat_scene_hits_not_misses():
    road = Road(length=100000.0)
    build(road)
    first = PHANTOM_CACHE.stats()
    assert first["misses"] > 0
    build(road)
    second = PHANTOM_CACHE.stats()
    assert second["misses"] == first["misses"]
    assert second["hits"] >= first["misses"]


def test_distinct_keys_do_not_collide():
    road = Road(length=100000.0)
    a = build(road, lon=5000.0)
    b = build(road, lon=6000.0)
    front_a = a.targets[2].current
    front_b = b.targets[2].current
    assert front_a.lon != front_b.lon  # phantoms track their reference


def test_lru_bound_is_enforced():
    cache = PhantomCache(maxsize=4)
    road = Road(length=100000.0)
    for index in range(10):
        cache.build_missing([state(3, 1000.0 * (index + 1))] * Z, 2, road, R)
    assert len(cache) == 4
    assert cache.stats()["entries"] == 4
    # Least-recent key was evicted: re-asking it is a miss, not a hit.
    misses = cache.misses
    cache.build_missing([state(3, 1000.0)] * Z, 2, road, R)
    assert cache.misses == misses + 1


def test_recency_refresh_protects_hot_keys():
    cache = PhantomCache(maxsize=2)
    road = Road(length=100000.0)
    hot = [state(3, 1000.0)] * Z
    cache.build_missing(hot, 2, road, R)
    cache.build_missing([state(3, 2000.0)] * Z, 2, road, R)
    cache.build_missing(hot, 2, road, R)          # refresh hot
    cache.build_missing([state(3, 3000.0)] * Z, 2, road, R)  # evicts 2000
    hits = cache.hits
    cache.build_missing(hot, 2, road, R)
    assert cache.hits == hits + 1


def test_disabled_cache_stores_nothing():
    cache = PhantomCache(enabled=False)
    road = Road(length=100000.0)
    node = cache.build_missing([state(3, 1000.0)] * Z, 2, road, R)
    assert len(cache) == 0
    assert cache.stats() == {"hits": 0, "misses": 0, "entries": 0}
    assert np.isfinite(node.current.lon)


def test_returned_histories_are_independent_lists():
    cache = PhantomCache()
    road = Road(length=100000.0)
    reference = [state(3, 1000.0)] * Z
    first = cache.build_missing(reference, 2, road, R)
    second = cache.build_missing(reference, 2, road, R)
    assert first.history == second.history
    first.history.append(state(3, 0.0))
    # Mutating one caller's list must not leak into the cache.
    third = cache.build_missing(reference, 2, road, R)
    assert len(third.history) == Z


def test_maxsize_validation():
    with pytest.raises(ValueError):
        PhantomCache(maxsize=0)

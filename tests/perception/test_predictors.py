"""Tests for LST-GAT and the compared predictors: shapes, training, parity."""

import numpy as np
import pytest

from repro.data import generate_real_dataset
from repro.perception import (EDLSTM, GASLED, LSTGAT, LSTMMLP, build_samples,
                              collate, evaluate_predictor, train_predictor)
from repro.perception.graph import SpatialTemporalGraph

MODELS = [LSTGAT, LSTMMLP, EDLSTM, GASLED]


@pytest.fixture(scope="module")
def samples():
    ds = generate_real_dataset(seed=5, steps=60, density_per_km=120)
    return build_samples(ds, max_egos=3, rng=np.random.default_rng(0))


def small(model_cls, seed=0):
    return model_cls(hidden_dim=16, rng=np.random.default_rng(seed)) \
        if model_cls is not LSTGAT \
        else LSTGAT(attention_dim=16, lstm_dim=16, rng=np.random.default_rng(seed))


@pytest.mark.parametrize("model_cls", MODELS, ids=lambda c: c.__name__)
def test_forward_shape(model_cls, samples):
    model = small(model_cls)
    out = model.forward_graph(samples[0].graph)
    assert out.shape == (6, 3)


@pytest.mark.parametrize("model_cls", MODELS, ids=lambda c: c.__name__)
def test_batched_vs_sequential_inference_agree(model_cls, samples):
    """predict (parallel) and predict_each (sequential) must agree.

    For LSTMMLP/EDLSTM this is exact; for attention models (LSTGAT,
    GASLED) sequential slicing changes the attention support, so parity
    is only required for the non-interactive models.
    """
    model = small(model_cls)
    graph = samples[0].graph
    batched = model.predict(graph)
    sequential = model.predict_each(graph)
    assert batched.shape == sequential.shape == (6, 3)
    if model_cls in (LSTMMLP, EDLSTM):
        np.testing.assert_allclose(batched, sequential, atol=1e-9)


@pytest.mark.parametrize("model_cls", MODELS, ids=lambda c: c.__name__)
def test_loss_decreases_with_training(model_cls, samples):
    model = small(model_cls)
    result = train_predictor(model, samples[:80], epochs=4, batch_size=32,
                             rng=np.random.default_rng(0))
    assert result.epoch_losses[-1] < result.epoch_losses[0]


def test_lstgat_parallel_prediction_is_single_pass(samples):
    """All six targets come out of one forward call."""
    model = small(LSTGAT)
    prediction = model.predict(samples[0].graph)
    assert prediction.shape == (6, 3)
    assert np.isfinite(prediction).all()


def test_collate_stacks_targets(samples):
    graph, truth = collate(samples[:3])
    assert graph.target_features.shape[1] == 18
    assert graph.contributor_features.shape[1] == 18
    assert graph.ego_features.shape[1] == 18
    assert truth.shape == (18, 3)
    assert graph.target_mask.shape == (18,)


def test_collated_forward_matches_individual(samples):
    """A batched pass must produce the same outputs as per-sample passes."""
    model = small(LSTGAT)
    graph, _ = collate(samples[:3])
    batched = model.predict(graph)
    individual = np.concatenate([model.predict(s.graph) for s in samples[:3]])
    np.testing.assert_allclose(batched, individual, atol=1e-9)


def test_masked_targets_receive_no_gradient(samples):
    """Phantom/unlabeled targets must not contribute to the loss (Eq. 14 mask)."""
    sample = next(s for s in samples if not s.graph.target_mask.all()
                  and s.graph.target_mask.any())
    model = small(LSTGAT)
    loss = model.loss(sample.graph, sample.truth)
    assert np.isfinite(loss.item())


def test_evaluate_predictor_reports_physical_units(samples):
    model = small(LSTGAT)
    report = evaluate_predictor(model, samples[:40])
    assert report.mae > 0
    assert report.rmse == pytest.approx(np.sqrt(report.mse))


def test_train_predictor_rejects_empty():
    with pytest.raises(ValueError):
        train_predictor(small(LSTGAT), [], epochs=1)


def test_convergence_tolerance_stops_early(samples):
    model = small(LSTMMLP)
    result = train_predictor(model, samples[:40], epochs=50, batch_size=32,
                             convergence_tol=0.5, rng=np.random.default_rng(0))
    assert len(result.epoch_losses) < 50


def test_state_dict_roundtrip_for_lstgat(samples):
    model = small(LSTGAT, seed=1)
    clone = small(LSTGAT, seed=2)
    clone.load_state_dict(model.state_dict())
    graph = samples[0].graph
    np.testing.assert_allclose(model.predict(graph), clone.predict(graph))

"""Tests for the LST-GAT attention introspection API."""

import numpy as np
import pytest

from repro.perception import LSTGAT
from repro.perception.graph import SpatialTemporalGraph


@pytest.fixture
def model():
    return LSTGAT(attention_dim=16, lstm_dim=16, rng=np.random.default_rng(0))


def random_graph(rng, z=5, n=6):
    contributors = rng.standard_normal((z, n, 7, 4))
    targets = contributors[:, :, 0, :].copy()
    ego = rng.standard_normal((z, n, 4))
    return SpatialTemporalGraph(targets, contributors, np.ones(n), ego)


def test_attention_map_shape_and_normalization(model):
    graph = random_graph(np.random.default_rng(1))
    alpha = model.attention_map(graph)
    assert alpha.shape == (5, 6, 7)
    np.testing.assert_allclose(alpha.sum(axis=-1), 1.0, atol=1e-9)
    assert np.all(alpha >= 0.0)


def test_attention_ignores_padding_slots(model):
    rng = np.random.default_rng(2)
    graph = random_graph(rng)
    graph.contributor_features[:, :, 4, :] = 0.0
    alpha = model.attention_map(graph)
    assert np.all(alpha[:, :, 4] < 1e-6)


def test_attention_matches_forward_weights(model):
    """The introspected alpha must reproduce the forward aggregation."""
    graph = random_graph(np.random.default_rng(3))
    prediction_a = model.predict(graph)
    _ = model.attention_map(graph)  # must not mutate state
    prediction_b = model.predict(graph)
    np.testing.assert_allclose(prediction_a, prediction_b)

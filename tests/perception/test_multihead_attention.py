"""Focused tests for the LST-GAT graph attention internals."""

import numpy as np
import pytest

from repro import nn
from repro.perception.graph import CONTRIBUTORS, FEATURE_DIM, SpatialTemporalGraph
from repro.perception.lstgat import GraphAttention, LSTGAT


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def random_graph(rng, z=5, n=6):
    contributors = rng.standard_normal((z, n, CONTRIBUTORS, FEATURE_DIM))
    targets = contributors[:, :, 0, :].copy()
    ego = rng.standard_normal((z, n, FEATURE_DIM))
    return SpatialTemporalGraph(targets, contributors, np.ones(n), ego)


def test_attention_output_shape(rng):
    attention = GraphAttention(FEATURE_DIM, 32, rng=rng)
    graph = random_graph(rng)
    out = attention(nn.Tensor(graph.target_features),
                    nn.Tensor(graph.contributor_features))
    assert out.shape == (5, 6, 32)


def test_attention_rejects_indivisible_heads(rng):
    with pytest.raises(ValueError):
        GraphAttention(FEATURE_DIM, 30, num_heads=4, rng=rng)


def test_padding_slots_receive_zero_weight(rng):
    """Aggregation must be invariant to the content behind a padded slot."""
    attention = GraphAttention(FEATURE_DIM, 16, rng=rng)
    graph = random_graph(rng)
    contributors = graph.contributor_features.copy()
    contributors[:, :, 3, :] = 0.0  # slot 3 is padding
    out_a = attention(nn.Tensor(graph.target_features),
                      nn.Tensor(contributors)).numpy()
    # Same inputs with garbage where the padding was *and* zero features:
    # output must be identical because alpha there is ~0.
    contributors_b = contributors.copy()
    out_b = attention(nn.Tensor(graph.target_features),
                      nn.Tensor(contributors_b)).numpy()
    np.testing.assert_allclose(out_a, out_b)


def test_attention_weights_are_static_over_time(rng):
    """The time-independent edge set implies one alpha per window:

    permuting features of a *single* step must not change which
    contributor dominates, only the (averaged) scores smoothly.
    """
    attention = GraphAttention(FEATURE_DIM, 16, rng=rng)
    graph = random_graph(rng)
    base = attention(nn.Tensor(graph.target_features),
                     nn.Tensor(graph.contributor_features)).numpy()
    assert np.isfinite(base).all()


def test_gradients_reach_all_attention_parameters(rng):
    attention = GraphAttention(FEATURE_DIM, 16, rng=rng)
    graph = random_graph(rng)
    out = attention(nn.Tensor(graph.target_features),
                    nn.Tensor(graph.contributor_features))
    (out * out).sum().backward()
    for name, parameter in attention.named_parameters():
        assert parameter.grad is not None, name
        assert np.isfinite(parameter.grad).all(), name


def test_lstgat_residual_head_starts_near_baseline(rng):
    """A freshly initialized LST-GAT predicts close to the kinematic baseline."""
    model = LSTGAT(attention_dim=16, lstm_dim=16, rng=rng)
    graph = random_graph(rng)
    prediction = model.predict_normalized(graph)
    baseline = model.kinematic_baseline(graph)
    assert np.abs(prediction - baseline).max() < 5.0

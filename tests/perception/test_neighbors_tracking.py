"""Tests for six-area neighbor selection and observation tracking."""

import pytest

from repro.perception import (AREA_COUNT, MIRROR_AREA, ObservationBuffer,
                              area_of, select_neighbors)
from repro.sim import VehicleState


def state(lane, lon, v=10.0):
    return VehicleState(lat=lane, lon=lon, v=v)


class TestAreaOf:
    def test_six_areas(self):
        center = state(3, 100.0)
        assert area_of(center, state(2, 120.0)) == 1  # front-left
        assert area_of(center, state(3, 120.0)) == 2  # front
        assert area_of(center, state(4, 120.0)) == 3  # front-right
        assert area_of(center, state(2, 80.0)) == 4   # rear-left
        assert area_of(center, state(3, 80.0)) == 5   # rear
        assert area_of(center, state(4, 80.0)) == 6   # rear-right

    def test_non_adjacent_lane_ignored(self):
        center = state(3, 100.0)
        assert area_of(center, state(1, 120.0)) is None
        assert area_of(center, state(5, 120.0)) is None

    def test_same_position_same_lane_is_none(self):
        center = state(3, 100.0)
        assert area_of(center, state(3, 100.0)) is None

    def test_alongside_adjacent_lane_counts_as_rear(self):
        center = state(3, 100.0)
        assert area_of(center, state(2, 100.0)) == 4


def test_mirror_area_is_an_involution():
    for area, mirror in MIRROR_AREA.items():
        assert MIRROR_AREA[mirror] == area


def test_select_neighbors_picks_nearest_per_area():
    center = state(3, 100.0)
    candidates = {
        "near_front": state(3, 110.0),
        "far_front": state(3, 130.0),
        "rear": state(3, 80.0),
        "front_left": state(2, 115.0),
    }
    chosen = select_neighbors(center, candidates)
    assert chosen[2] == "near_front"
    assert chosen[5] == "rear"
    assert chosen[1] == "front_left"
    assert 3 not in chosen and 4 not in chosen and 6 not in chosen


def test_select_neighbors_empty():
    assert select_neighbors(state(3, 100.0), {}) == {}


class TestObservationBuffer:
    def test_history_padding(self):
        buffer = ObservationBuffer(history_steps=4)
        buffer.update({"a": state(1, 10.0)})
        history = buffer.history("a")
        assert len(history) == 4
        assert history[0] == history[1] == history[2] == history[3]

    def test_history_rolls(self):
        buffer = ObservationBuffer(history_steps=3)
        for step in range(5):
            buffer.update({"a": state(1, float(step))})
        history = buffer.history("a")
        assert [s.lon for s in history] == [2.0, 3.0, 4.0]

    def test_stale_tracks_pruned(self):
        buffer = ObservationBuffer(history_steps=3, max_gap=1)
        buffer.update({"a": state(1, 0.0)})
        buffer.update({})
        assert "a" in buffer
        buffer.update({})
        assert "a" not in buffer

    def test_track_survives_short_gap(self):
        buffer = ObservationBuffer(history_steps=3, max_gap=2)
        buffer.update({"a": state(1, 0.0)})
        buffer.update({})
        buffer.update({"a": state(1, 5.0)})
        assert [s.lon for s in buffer.history("a")] == [0.0, 0.0, 5.0]

    def test_reset(self):
        buffer = ObservationBuffer(history_steps=3)
        buffer.update({"a": state(1, 0.0)})
        buffer.reset()
        assert buffer.tracked_ids() == []
        with pytest.raises(KeyError):
            buffer.history("a")

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            ObservationBuffer(history_steps=0)

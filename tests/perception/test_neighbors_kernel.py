"""Batched six-key-area kernel vs the scalar classifier (hypothesis).

``select_neighbors_batch`` answers M queries through one
``SpatialHash.six_area_neighbors`` call and promises bit-identical
results to the scalar ``select_neighbors`` loop, *including*
tie-breaking: equal-distance candidates resolve to the first one in
candidate iteration order.  Longitudes are drawn from a coarse grid so
exact ties (and exactly-alongside/exactly-coincident cases) are common
rather than measure-zero.

The kernel has two code paths -- a scalar loop for up to four query
rows and a masked vectorized pass above that -- so fleet sizes are
drawn across the threshold and both paths are additionally pinned
against each other row by row.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perception.neighbors import (select_neighbors,
                                        select_neighbors_batch)
from repro.sim.spatial import SpatialHash
from repro.sim.vehicle import VehicleState

NUM_LANES = 4

def states(min_lane, max_lane):
    return st.builds(
        VehicleState,
        lat=st.integers(min_lane, max_lane),
        lon=st.integers(0, 15).map(lambda tick: tick * 5.0),
        v=st.just(0.0),
    )


#: Candidates live in physical lanes, like the observed vehicles the
#: production call sites index.  Centers additionally cover the
#: boundary lanes 0 and NUM_LANES + 1 (phantom construction can query
#: from there); the kernel must return empty areas, not crash.
candidate_states = states(1, NUM_LANES)
center_states = states(0, NUM_LANES + 1)


def as_dict(states):
    return {f"v{index}": state for index, state in enumerate(states)}


@settings(max_examples=120, deadline=None)
@given(candidates=st.lists(candidate_states, min_size=0, max_size=25),
       centers=st.lists(center_states, min_size=1, max_size=8))
def test_batch_matches_scalar_classifier(candidates, centers):
    world = as_dict(candidates)
    got = select_neighbors_batch(centers, world, NUM_LANES)
    # area_of returns None for a candidate at the center's exact
    # position, so the scalar call needs no self-filtering either.
    want = [select_neighbors(center, world) for center in centers]
    assert got == want


@settings(max_examples=120, deadline=None)
@given(candidates=st.lists(candidate_states, min_size=1, max_size=25),
       centers=st.lists(center_states, min_size=5, max_size=10))
def test_vectorized_path_matches_scalar_path(candidates, centers):
    """>=5 rows take the masked pass; one row takes the scalar loop."""
    lane = np.fromiter((state.lat for state in candidates), dtype=np.int64)
    lon = np.fromiter((state.lon for state in candidates), dtype=np.float64)
    center_lane = np.fromiter((state.lat for state in centers),
                              dtype=np.int64)
    center_lon = np.fromiter((state.lon for state in centers),
                             dtype=np.float64)
    batched = SpatialHash(lane, lon, NUM_LANES).six_area_neighbors(
        center_lane, center_lon)
    for row in range(len(centers)):
        single = SpatialHash(lane, lon, NUM_LANES).six_area_neighbors(
            center_lane[row:row + 1], center_lon[row:row + 1])
        np.testing.assert_array_equal(batched[row], single[0])


def test_tie_break_first_candidate_wins():
    """Two rear candidates at the same spot: iteration order decides."""
    center = VehicleState(lat=2, lon=50.0, v=0.0)
    tied_a = VehicleState(lat=2, lon=30.0, v=0.0)
    tied_b = VehicleState(lat=2, lon=30.0, v=0.0)
    for world in ({"a": tied_a, "b": tied_b}, {"b": tied_b, "a": tied_a}):
        winner = next(iter(world))
        assert select_neighbors(center, world)[5] == winner
        assert select_neighbors_batch([center], world, NUM_LANES)[0][5] \
            == winner


def test_exactly_alongside_is_rear_in_adjacent_lane():
    """Equal lon one lane over -> areas 4/6; same lane -> excluded."""
    center = VehicleState(lat=2, lon=50.0, v=0.0)
    world = {
        "left": VehicleState(lat=1, lon=50.0, v=0.0),
        "same": VehicleState(lat=2, lon=50.0, v=0.0),
        "right": VehicleState(lat=3, lon=50.0, v=0.0),
    }
    result = select_neighbors_batch([center], world, NUM_LANES)[0]
    assert result == {4: "left", 6: "right"}
    assert result == select_neighbors(center, world)


def test_empty_candidates():
    center = VehicleState(lat=1, lon=0.0, v=0.0)
    assert select_neighbors_batch([center], {}, NUM_LANES) == [{}]

"""Perception behaviour on the scripted scenarios (integration-level)."""

import numpy as np
import pytest

from repro.decision import build_augmented_state
from repro.perception import EnhancedPerception, TrackKind
from repro.sim.scenarios import blocked_lane, cut_in, platoon, stop_and_go_wave


def perceive(engine, steps=5):
    perception = EnhancedPerception(predictor=None)
    frame = None
    for _ in range(steps):
        if "av" in engine.vehicles:
            engine.set_maneuver("av", 0, 0.0)
        frame = perception.perceive(engine, "av")
        engine.step()
    return frame


def test_platoon_front_target_is_leader():
    engine, av = platoon()
    frame = perceive(engine)
    front = frame.scene.targets[2]
    assert front.kind is TrackKind.OBSERVED
    assert front.vid == "p0"


def test_blocked_lane_scene_shows_slow_platoon():
    engine, av = blocked_lane(platoon_speed=6.0)
    frame = perceive(engine)
    front = frame.scene.targets[2]
    assert front.kind is TrackKind.OBSERVED
    assert front.current.v < 10.0
    # Left lane (area 1) has no observed vehicle: phantom or boundary.
    assert frame.scene.targets[1].kind.is_phantom


def test_cut_in_merger_becomes_same_lane_target():
    engine, av = cut_in()
    perception = EnhancedPerception(predictor=None)
    same_lane_ids = []
    for _ in range(10):
        if "av" in engine.vehicles:
            engine.set_maneuver("av", 0, 0.0)
        frame = perception.perceive(engine, "av")
        same_lane_ids.append(frame.scene.targets[2].vid)  # front
        same_lane_ids.append(frame.scene.targets[5].vid)  # rear
        engine.step()
    # After merging, the merger occupies the AV's lane as a target.
    assert "merger" in same_lane_ids


def test_wave_scene_augmented_state_reflects_slowdown():
    engine, av = stop_and_go_wave(platoon_size=4)
    perception = EnhancedPerception(predictor=None)
    # Let the wave develop so the AV's front target is braking.
    relative_speeds = []
    for _ in range(40):
        if "av" not in engine.vehicles:
            break
        engine.set_maneuver("av", 0, 0.0)
        frame = perception.perceive(engine, "av")
        state = build_augmented_state(frame)
        if frame.scene.targets[2].kind is TrackKind.OBSERVED:
            relative_speeds.append(state.current[2, 2])  # front target v_rel
        engine.step()
    assert relative_speeds
    # At some point the front target was clearly slower than the AV.
    assert min(relative_speeds) < 0.0


def test_occlusion_happens_inside_platoon():
    """In a tight single-lane platoon the leader-of-leader is hidden."""
    engine, av = platoon(size=5, headway=20.0)
    frame = perceive(engine, steps=2)
    node = frame.scene.surroundings[(2, 2)]
    assert node.kind in (TrackKind.PHANTOM_OCCLUSION, TrackKind.OBSERVED)
    if node.kind is TrackKind.PHANTOM_OCCLUSION:
        # Eq. 6 placement: beyond the front target.
        assert node.current.lon > frame.scene.targets[2].current.lon

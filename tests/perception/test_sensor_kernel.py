"""Vectorized sensor kernel vs the scalar per-pair reference.

``Sensor.observe`` runs range and occlusion as one pairwise slab pass;
this suite pins it bit-for-bit against the scalar loop it replaced
(``in_range`` + ``is_occluded`` per candidate, obstacles restricted to
the in-range set), and pins the shared-``WorldArrays`` fleet path
against the per-call gather.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perception.sensor import Sensor, WorldArrays
from repro.sim.road import Road
from repro.sim.vehicle import VehicleState

ROAD = Road(length=600.0)


def scalar_observe(sensor, ego_id, ego, world, road):
    """The pre-vectorization observe: per-candidate scalar tests."""
    candidates = {vid: state for vid, state in world.items()
                  if vid != ego_id and sensor.in_range(ego, state, road)}
    observed = {}
    for vid, state in candidates.items():
        if not sensor.is_occluded(ego, state, candidates, road,
                                  target_id=vid):
            observed[vid] = state
    return observed


def random_world(rng, count):
    """Dense random traffic; quantized lon makes exact overlaps likely."""
    world = {}
    for index in range(count):
        world[f"v{index}"] = VehicleState(
            lat=int(rng.integers(1, ROAD.num_lanes + 1)),
            lon=float(rng.integers(0, 80)) * 2.5,
            v=float(rng.uniform(0.0, 25.0)),
        )
    return world


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 10_000), count=st.integers(0, 40))
def test_observe_matches_scalar_reference(seed, count):
    rng = np.random.default_rng(seed)
    world = random_world(rng, count)
    sensor = Sensor()
    ego_id = "v0" if count else "ego"
    ego = world.get(ego_id, VehicleState(lat=2, lon=100.0, v=20.0))
    got = sensor.observe(ego_id, ego, world, ROAD)
    want = scalar_observe(sensor, ego_id, ego, world, ROAD)
    assert got == want


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 10_000), count=st.integers(1, 40))
def test_world_arrays_path_is_identical(seed, count):
    """The fleet's shared pre-gathered arrays change nothing."""
    rng = np.random.default_rng(seed)
    world = random_world(rng, count)
    sensor = Sensor()
    arrays = WorldArrays(world, ROAD)
    ego_id = f"v{int(rng.integers(0, count))}"
    ego = world[ego_id]
    assert (sensor.observe(ego_id, ego, world, ROAD, arrays=arrays)
            == sensor.observe(ego_id, ego, world, ROAD))


def test_world_arrays_layout():
    world = {"a": VehicleState(lat=1, lon=10.0, v=5.0),
             "b": VehicleState(lat=3, lon=40.0, v=8.0)}
    arrays = WorldArrays(world, ROAD)
    assert arrays.ids == ["a", "b"]
    assert arrays.position == {"a": 0, "b": 1}
    np.testing.assert_array_equal(arrays.lon, [10.0, 40.0])
    np.testing.assert_array_equal(arrays.lat_m,
                                  [1 * ROAD.lane_width, 3 * ROAD.lane_width])


def test_occluder_hides_target_behind_it():
    """Directly-behind blocker: classic shadow, both paths agree."""
    ego = VehicleState(lat=2, lon=0.0, v=20.0)
    world = {
        "ego": ego,
        "blocker": VehicleState(lat=2, lon=20.0, v=20.0),
        "hidden": VehicleState(lat=2, lon=40.0, v=20.0),
        "visible": VehicleState(lat=3, lon=30.0, v=20.0),
    }
    sensor = Sensor()
    seen = sensor.observe("ego", ego, world, ROAD)
    assert set(seen) == {"blocker", "visible"}
    assert seen == scalar_observe(sensor, "ego", ego, world, ROAD)


def test_out_of_range_is_dropped():
    ego = VehicleState(lat=2, lon=0.0, v=20.0)
    sensor = Sensor(detection_range=100.0)
    world = {
        "ego": ego,
        "near": VehicleState(lat=2, lon=99.0, v=20.0),
        "far": VehicleState(lat=2, lon=250.0, v=20.0),
    }
    assert set(sensor.observe("ego", ego, world, ROAD)) == {"near"}


def test_ego_footprint_never_occludes():
    """An obstacle exactly at the ego center is treated as the ego."""
    ego = VehicleState(lat=2, lon=50.0, v=20.0)
    world = {
        "twin": VehicleState(lat=2, lon=50.0, v=20.0),  # ego's own row
        "ahead": VehicleState(lat=2, lon=70.0, v=20.0),
    }
    sensor = Sensor()
    seen = sensor.observe("ego", ego, world, ROAD)
    assert "ahead" in seen
    assert seen == scalar_observe(sensor, "ego", ego, world, ROAD)


def test_empty_world_and_lone_ego():
    ego = VehicleState(lat=1, lon=10.0, v=5.0)
    sensor = Sensor()
    assert sensor.observe("ego", ego, {}, ROAD) == {}
    assert sensor.observe("ego", ego, {"ego": ego}, ROAD) == {}
    arrays = WorldArrays({"ego": ego}, ROAD)
    assert sensor.observe("ego", ego, {"ego": ego}, ROAD,
                          arrays=arrays) == {}


@pytest.mark.parametrize("noise", [0.5, 2.0])
def test_noisy_measurements_identical_across_paths(noise):
    """Measurement noise draws depend only on the visible set/order."""
    rng = np.random.default_rng(7)
    world = random_world(rng, 20)
    ego_id, ego = "v3", world["v3"]
    plain = Sensor(position_noise=noise, seed=42)
    shared = Sensor(position_noise=noise, seed=42)
    arrays = WorldArrays(world, ROAD)
    assert (plain.observe(ego_id, ego, world, ROAD)
            == shared.observe(ego_id, ego, world, ROAD, arrays=arrays))

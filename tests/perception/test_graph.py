"""Tests for spatial-temporal graph construction (Eqs. 7-9)."""

import numpy as np
import pytest

from repro.perception import (CONTRIBUTORS, FEATURE_DIM, ObservationBuffer,
                              build_graph, build_scene, to_networkx)
from repro.perception.graph import EGO_SCALE, OUTPUT_SCALE, RELATIVE_SCALE
from repro.sim import Road, VehicleState

Z = 5


@pytest.fixture
def road():
    return Road(length=100000.0)


def state(lane, lon, v=10.0):
    return VehicleState(lat=lane, lon=lon, v=v)


def make_scene(road, observed):
    buffer = ObservationBuffer(history_steps=Z)
    for _ in range(Z):
        buffer.update(observed)
    return build_scene("ego", [state(3, 5000.0, 10.0)] * Z, buffer, road,
                       detection_range=100.0)


def test_graph_shapes(road):
    graph = build_graph(make_scene(road, {"front": state(3, 5020.0)}), road)
    assert graph.target_features.shape == (Z, 6, FEATURE_DIM)
    assert graph.contributor_features.shape == (Z, 6, CONTRIBUTORS, FEATURE_DIM)
    assert graph.ego_features.shape == (Z, 6, FEATURE_DIM)
    assert graph.target_mask.shape == (6,)
    assert graph.history_steps == Z


def test_relative_features_eq7(road):
    graph = build_graph(make_scene(road, {"front": state(4, 5030.0, 14.0)}), road)
    # "front" is in area 3 (front-right): index 2.
    vector = graph.target_features[-1, 2] * RELATIVE_SCALE
    assert vector[0] == pytest.approx(1 * road.lane_width)  # d_lat
    assert vector[1] == pytest.approx(30.0)                 # d_lon
    assert vector[2] == pytest.approx(4.0)                  # v_rel
    assert vector[3] == pytest.approx(0.0)                  # observed -> IF=0


def test_phantom_indicator_set(road):
    graph = build_graph(make_scene(road, {}), road)
    assert np.all(graph.target_features[:, :, 3] == 1.0)
    assert np.all(graph.target_mask == 0.0)


def test_ego_raw_features_eq8_first_row(road):
    graph = build_graph(make_scene(road, {"front": state(3, 5020.0)}), road)
    ego_vector = graph.ego_features[-1, 0] * EGO_SCALE
    assert ego_vector[0] == pytest.approx(3)
    assert ego_vector[1] == pytest.approx(5000.0)
    assert ego_vector[2] == pytest.approx(10.0)
    assert ego_vector[3] == pytest.approx(0.0)
    # Ego replicated across targets.
    assert np.allclose(graph.ego_features[:, 0], graph.ego_features[:, 3])


def test_mirror_slot_carries_ego_raw_state(road):
    graph = build_graph(make_scene(road, {"front": state(3, 5020.0)}), road)
    # front target is area 2 (index 1); its mirror slot is 5.
    mirror_vector = graph.contributor_features[-1, 1, 5]
    assert np.allclose(mirror_vector, graph.ego_features[-1, 0])


def test_self_loop_slot_equals_target(road):
    graph = build_graph(make_scene(road, {"front": state(3, 5020.0)}), road)
    assert np.allclose(graph.contributor_features[:, :, 0, :], graph.target_features)


def test_zero_nodes_all_zero(road):
    graph = build_graph(make_scene(road, {}), road)
    # All phantom targets -> non-mirror surroundings zero-padded.
    for area_index in range(6):
        mirror = {0: 5, 1: 4, 2: 3, 3: 2, 4: 1, 5: 0}[area_index]
        for slot in range(1, CONTRIBUTORS):
            if slot - 1 == mirror:
                continue
            assert np.allclose(graph.contributor_features[:, area_index, slot], 0.0)


def test_networkx_export_42_nodes_48_edges(road):
    scene = make_scene(road, {"front": state(3, 5020.0)})
    nxg = to_networkx(scene, road)
    assert nxg.number_of_nodes() == 42
    # 36 surrounding->target edges + 6 self-loops.
    assert nxg.number_of_edges() == 42
    assert nxg.has_edge("C2.5", "C2")
    assert nxg.has_edge("C2", "C2")
    assert nxg.nodes["C2"]["kind"] == "observed"
    assert set(nxg.successors("C1.1")) == {"C1"}


def test_output_scale_consistent_with_relative_scale():
    assert np.allclose(OUTPUT_SCALE, RELATIVE_SCALE[:3])


def test_build_graphs_batched_equals_per_scene(road):
    """Stacked fleet featurization is independent of batch composition."""
    from repro.perception.graph import build_graphs

    scenes = [
        make_scene(road, {"front": state(3, 5020.0)}),
        make_scene(road, {"left": state(2, 4990.0, 8.0),
                          "right": state(4, 5015.0, 12.0)}),
        make_scene(road, {}),
    ]
    batched = build_graphs(scenes, road)
    assert len(batched) == len(scenes)
    for scene, graph in zip(scenes, batched):
        alone = build_graph(scene, road)
        np.testing.assert_array_equal(graph.target_features,
                                      alone.target_features)
        np.testing.assert_array_equal(graph.contributor_features,
                                      alone.contributor_features)
        np.testing.assert_array_equal(graph.target_mask, alone.target_mask)
        np.testing.assert_array_equal(graph.ego_features, alone.ego_features)


def test_build_graphs_empty_and_mismatched(road):
    from repro.perception.graph import build_graphs

    assert build_graphs([], road) == []
    short_buffer = ObservationBuffer(history_steps=Z - 1)
    short_buffer.update({})
    short = build_scene("ego", [state(3, 5000.0, 10.0)] * (Z - 1),
                        short_buffer, road, detection_range=100.0)
    full = make_scene(road, {"front": state(3, 5020.0)})
    with pytest.raises(ValueError, match="history length"):
        build_graphs([full, short], road)

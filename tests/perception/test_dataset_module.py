"""Tests for sample generation and the online EnhancedPerception facade."""

import numpy as np
import pytest

from repro.data import generate_real_dataset, record_trajectories
from repro.perception import (EnhancedPerception, LSTGAT, Sensor, TrackKind,
                              build_samples, train_test_samples)
from repro.perception.graph import OUTPUT_SCALE
from repro.sim import Road, SimulationEngine, Vehicle, VehicleState, populate_traffic


@pytest.fixture(scope="module")
def dataset():
    return generate_real_dataset(seed=4, steps=60, density_per_km=120)


def test_build_samples_structure(dataset):
    samples = build_samples(dataset, max_egos=2, rng=np.random.default_rng(0))
    assert samples
    for sample in samples[:10]:
        assert sample.graph.target_features.shape == (5, 6, 4)
        assert sample.truth.shape == (6, 3)
        # masked rows carry zero truth
        for index, flag in enumerate(sample.graph.target_mask):
            if flag == 0.0:
                assert np.allclose(sample.truth[index], 0.0)


def test_ground_truth_matches_recording(dataset):
    """Unmasked labels must equal the recorded future relative state."""
    samples = build_samples(dataset, ego_ids=[dataset.vehicle_ids()[0]])
    road = dataset.road
    checked = 0
    for sample in samples:
        mask = sample.graph.target_mask
        for index in range(6):
            if mask[index] == 1.0:
                # d_lon truth must be within the sensor+motion envelope
                d_lon = sample.truth[index, 1] * OUTPUT_SCALE[1]
                assert abs(d_lon) < 150.0
                checked += 1
    assert checked > 0


def test_build_samples_explicit_egos(dataset):
    vid = dataset.vehicle_ids()[5]
    samples = build_samples(dataset, ego_ids=[vid])
    first, last = dataset.presence_span(vid)
    assert 0 < len(samples) <= last - first + 1


def test_train_test_samples_split(dataset):
    train, test = train_test_samples(dataset, ratio=0.8, max_egos=2,
                                     rng=np.random.default_rng(1))
    assert train and test


def test_build_samples_rejects_short_scene():
    road = Road(length=400.0)
    engine = SimulationEngine(road=road, rng=np.random.default_rng(0))
    engine.add_vehicle(Vehicle("v0", VehicleState(1, 0.0, 10.0)))
    trajectories = record_trajectories(engine, steps=3)
    with pytest.raises(ValueError):
        build_samples(trajectories, max_egos=1)


class TestEnhancedPerception:
    def make_engine(self):
        road = Road(length=2000.0)
        engine = SimulationEngine(road=road, rng=np.random.default_rng(3))
        populate_traffic(engine, np.random.default_rng(3), density_per_km=100)
        av = Vehicle("av", VehicleState(3, 500.0, 15.0), is_autonomous=True)
        engine.add_vehicle(av)
        return engine

    def test_perceive_produces_frame(self):
        engine = self.make_engine()
        perception = EnhancedPerception(predictor=None)
        frame = perception.perceive(engine, "av")
        assert frame.prediction.shape == (6, 3)
        assert np.allclose(frame.prediction, 0.0)  # predictor disabled
        assert len(frame.scene.targets) == 6

    def test_perceive_with_predictor(self):
        engine = self.make_engine()
        model = LSTGAT(attention_dim=16, lstm_dim=16, rng=np.random.default_rng(0))
        perception = EnhancedPerception(predictor=model)
        frame = perception.perceive(engine, "av")
        assert np.isfinite(frame.prediction).all()
        # physical units: one-step relative lon within plausible bounds
        assert np.all(np.abs(frame.prediction[:, 1]) < 1000.0)

    def test_phantomless_mode_zeroes_unobserved(self):
        engine = self.make_engine()
        perception = EnhancedPerception(predictor=None, use_phantoms=False)
        frame = perception.perceive(engine, "av")
        kinds = {node.kind for node in frame.scene.targets.values()}
        assert TrackKind.PHANTOM_RANGE not in kinds
        assert TrackKind.PHANTOM_OCCLUSION not in kinds
        assert TrackKind.PHANTOM_INHERENT not in kinds

    def test_history_accumulates_across_steps(self):
        engine = self.make_engine()
        perception = EnhancedPerception(predictor=None)
        for _ in range(4):
            engine.set_maneuver("av", 0, 0.5)
            perception.perceive(engine, "av")
            engine.step()
        history = perception.ego_history()
        assert len(history) == 5
        assert history[-1].lon > history[0].lon or history[0] == history[1]

    def test_reset_clears_state(self):
        engine = self.make_engine()
        perception = EnhancedPerception(predictor=None)
        perception.perceive(engine, "av")
        perception.reset()
        assert perception.buffer.tracked_ids() == []
        assert perception._ego_track == []

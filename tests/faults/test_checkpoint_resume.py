"""Tests for atomic training checkpoints, resume, and NaN rollback."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core import HEAD, HEADConfig
from repro.decision import PDQNAgent, PDDPGAgent, NaNLossError, train_agent
from repro.decision.trainer import CHECKPOINT_NAME
from repro.faults import (CheckpointError, latest_checkpoint, load_checkpoint,
                          save_checkpoint)


def make_head(max_steps=20, seed=3, hidden_dim=32):
    cfg = replace(HEADConfig().scaled(max_episode_steps=max_steps,
                                      hidden_dim=hidden_dim),
                  use_prediction=False)
    head = HEAD(cfg, rng=np.random.default_rng(seed))
    # lower the learning gate so optimizer state is exercised within
    # the handful of short episodes these tests can afford
    head.agent.warmup = 10
    head.agent.batch_size = 8
    return head


class PoisonedAgent(PDQNAgent):
    """Returns a NaN loss once at a chosen total step count.

    The pending-poison bookkeeping is a set, which the introspective
    checkpoint deliberately ignores -- so a rollback does not re-arm
    the poison and the restored run can get past the divergence.
    """

    def __init__(self, *args, poison_at=(), **kwargs):
        super().__init__(*args, **kwargs)
        self.poison_steps = set(poison_at)

    def learn(self):
        losses = super().learn()
        if self.total_steps in self.poison_steps:
            self.poison_steps.discard(self.total_steps)
            return {"loss": float("nan")}
        return losses


def make_poisoned(poison_at, seed=3):
    head = make_head(seed=seed)
    cfg = head.config
    agent = PoisonedAgent(branched=cfg.branched_networks,
                          hidden_dim=cfg.hidden_dim, gamma=cfg.gamma,
                          batch_size=8, warmup=10,
                          buffer_capacity=cfg.replay_capacity, tau=cfg.tau,
                          rng=np.random.default_rng(99),
                          poison_at=poison_at)
    return agent, head.make_env()


# ----------------------------------------------------------------------
# save / load round trip
# ----------------------------------------------------------------------
def test_round_trip_restores_parameters_and_rng(tmp_path):
    source = make_head(seed=1)
    train_agent(source.agent, source.make_env(), episodes=2, seed_offset=0)
    path = tmp_path / "agent.ckpt.npz"
    save_checkpoint(path, source.agent, extra={"tag": 7})

    target = make_head(seed=2)  # different init, different RNG position
    extra = load_checkpoint(path, target.agent)
    assert extra == {"tag": 7}
    for (name, p_src), (_, p_dst) in zip(source.agent.x_net.named_parameters(),
                                         target.agent.x_net.named_parameters()):
        assert np.array_equal(p_src.data, p_dst.data), name
    assert (target.agent.rng.bit_generator.state
            == source.agent.rng.bit_generator.state)
    assert target.agent.total_steps == source.agent.total_steps


def test_rng_restore_preserves_buffer_sharing(tmp_path):
    source = make_head(seed=1)
    train_agent(source.agent, source.make_env(), episodes=1, seed_offset=0)
    path = tmp_path / "agent.ckpt.npz"
    save_checkpoint(path, source.agent)
    target = make_head(seed=2)
    load_checkpoint(path, target.agent)
    # the buffer samples from the agent's stream; restoring in place
    # must keep them the same Generator object
    assert target.agent.buffer.rng is target.agent.rng


def test_save_is_atomic_and_leaves_no_temp_files(tmp_path):
    head = make_head()
    path = tmp_path / CHECKPOINT_NAME
    save_checkpoint(path, head.agent)
    save_checkpoint(path, head.agent)  # overwrite in place
    assert sorted(p.name for p in tmp_path.iterdir()) == [CHECKPOINT_NAME]
    assert latest_checkpoint(tmp_path) == path


def test_load_rejects_non_checkpoint_files(tmp_path):
    path = tmp_path / "junk.ckpt.npz"
    np.savez(path, stuff=np.zeros(3))
    with pytest.raises(CheckpointError):
        load_checkpoint(path, make_head().agent)


def test_load_rejects_a_different_agent_class(tmp_path):
    head = make_head()
    path = tmp_path / "agent.ckpt.npz"
    save_checkpoint(path, head.agent)
    other = PDDPGAgent(hidden_dim=32, rng=np.random.default_rng(0))
    with pytest.raises(CheckpointError):
        load_checkpoint(path, other)


def test_load_rejects_a_different_architecture(tmp_path):
    path = tmp_path / "agent.ckpt.npz"
    save_checkpoint(path, make_head(hidden_dim=32).agent)
    with pytest.raises(CheckpointError):
        load_checkpoint(path, make_head(hidden_dim=16).agent)


# ----------------------------------------------------------------------
# resume reproducibility
# ----------------------------------------------------------------------
def test_resume_reproduces_the_uninterrupted_run(tmp_path):
    reference = make_head()
    ref_log = train_agent(reference.agent, reference.make_env(),
                          episodes=6, seed_offset=0)

    first = make_head()
    train_agent(first.agent, first.make_env(), episodes=3, seed_offset=0,
                checkpoint_dir=tmp_path, checkpoint_every=1)

    resumed = make_head()  # a *fresh* process, state only from disk
    log = train_agent(resumed.agent, resumed.make_env(), episodes=6,
                      seed_offset=0, checkpoint_dir=tmp_path,
                      checkpoint_every=1)
    assert log.resumed_episodes == 3
    assert log.episode_rewards == ref_log.episode_rewards
    assert log.episode_steps == ref_log.episode_steps
    assert log.collisions == ref_log.collisions


def test_resume_false_ignores_the_checkpoint(tmp_path):
    first = make_head()
    train_agent(first.agent, first.make_env(), episodes=2, seed_offset=0,
                checkpoint_dir=tmp_path, checkpoint_every=1)
    fresh = make_head()
    log = train_agent(fresh.agent, fresh.make_env(), episodes=2,
                      seed_offset=0, checkpoint_dir=tmp_path,
                      checkpoint_every=1, resume=False)
    assert log.resumed_episodes == 0
    assert log.episodes == 2


def test_completed_run_resumes_to_a_no_op(tmp_path):
    head = make_head()
    train_agent(head.agent, head.make_env(), episodes=3, seed_offset=0,
                checkpoint_dir=tmp_path, checkpoint_every=1)
    again = make_head()
    log = train_agent(again.agent, again.make_env(), episodes=3,
                      seed_offset=0, checkpoint_dir=tmp_path,
                      checkpoint_every=1)
    assert log.resumed_episodes == 3
    assert log.episodes == 3  # nothing new trained


# ----------------------------------------------------------------------
# NaN rollback
# ----------------------------------------------------------------------
def test_nan_loss_without_checkpoint_raises():
    agent, env = make_poisoned(poison_at=[5])
    with pytest.raises(NaNLossError):
        train_agent(agent, env, episodes=2, seed_offset=0)


def test_nan_loss_rolls_back_to_the_last_checkpoint(tmp_path):
    agent, env = make_poisoned(poison_at=[30])
    log = train_agent(agent, env, episodes=4, seed_offset=0,
                      checkpoint_dir=tmp_path, checkpoint_every=1)
    assert log.nan_rollbacks == 1
    assert log.episodes == 4
    assert all(np.isfinite(r) for r in log.episode_rewards)


def test_rollback_budget_is_finite(tmp_path):
    # poison every learn step from 25 on: rollback can never get past it
    agent, env = make_poisoned(poison_at=range(25, 400))
    with pytest.raises(NaNLossError):
        train_agent(agent, env, episodes=6, seed_offset=0,
                    checkpoint_dir=tmp_path, checkpoint_every=1,
                    max_nan_rollbacks=2)

"""Tests for deterministic fault injection at the sensor/actuator boundary."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import FaultInjector, FaultSchedule, FaultySensor
from repro.perception import Sensor
from repro.sim import Road, VehicleState, constants


@pytest.fixture
def road():
    return Road(length=1000.0)


def world():
    return {
        "ego": VehicleState(3, 500.0, 15.0),
        "a": VehicleState(3, 530.0, 12.0),
        "b": VehicleState(2, 520.0, 18.0),
        "c": VehicleState(4, 480.0, 20.0),
    }


def advance(states, dt=constants.DT):
    return {vid: VehicleState(s.lat, s.lon + s.v * dt, s.v)
            for vid, s in states.items()}


# ----------------------------------------------------------------------
# zero-schedule bit-identity
# ----------------------------------------------------------------------
@given(seed=st.integers(0, 10_000),
       lons=st.lists(st.floats(0.0, 900.0), min_size=1, max_size=6))
@settings(max_examples=40, deadline=None)
def test_zero_schedule_is_the_identity(seed, lons):
    injector = FaultInjector(FaultSchedule.none(seed=seed))
    injector.reset(seed)
    road = Road(length=1000.0)
    observed = {f"v{i}": VehicleState(3, lon, 10.0)
                for i, lon in enumerate(lons)}
    filtered = injector.filter_observation(observed, road)
    assert filtered is observed  # the very same object, no copy, no draw
    assert injector.log.total() == 0


@given(accel=st.floats(-constants.A_MAX, constants.A_MAX),
       seed=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_zero_schedule_passes_accel_through(accel, seed):
    injector = FaultInjector(FaultSchedule.none(seed=seed))
    injector.reset(seed)
    assert injector.filter_accel(accel) == accel


def test_zero_schedule_does_not_consume_randomness(road):
    injector = FaultInjector(FaultSchedule.none())
    injector.reset(3)
    before = injector._rng.bit_generator.state
    injector.filter_observation(world(), road)
    injector.filter_accel(1.0)
    assert injector._rng.bit_generator.state == before


# ----------------------------------------------------------------------
# sensor-side fault processes
# ----------------------------------------------------------------------
def test_dropout_removes_vehicles_for_a_burst(road):
    injector = FaultInjector(FaultSchedule(dropout_rate=1.0, dropout_burst=3))
    injector.reset(0)
    states = world()
    for _ in range(3):
        assert injector.filter_observation(states, road) == {}
        states = advance(states)
    assert injector.log.dropped == 3 * len(states)


def test_freeze_repeats_the_latched_state(road):
    injector = FaultInjector(FaultSchedule(freeze_rate=1.0, freeze_duration=3))
    injector.reset(0)
    states = world()
    first = injector.filter_observation(states, road)
    assert first == states  # freeze latches the *delivered* (true) state
    for _ in range(2):
        states = advance(states)
        frame = injector.filter_observation(states, road)
        assert frame == first  # stale, even though the world moved
    assert injector.log.frozen > 0


def test_latency_delivers_the_previous_measurement(road):
    injector = FaultInjector(FaultSchedule(latency_rate=1.0, latency_steps=1))
    injector.reset(0)
    states = world()
    first = injector.filter_observation(states, road)
    assert first == states  # no history yet on the first frame
    moved = advance(states)
    second = injector.filter_observation(moved, road)
    assert second == states  # one step stale
    assert injector.log.delayed == len(states)


def test_noise_spike_stays_inside_the_physical_envelope(road):
    schedule = FaultSchedule(noise_rate=1.0, noise_position=1e4,
                             noise_velocity=1e4)
    injector = FaultInjector(schedule)
    injector.reset(1)
    frame = injector.filter_observation(world(), road)
    for state in frame.values():
        assert -constants.VEHICLE_LENGTH <= state.lon
        assert state.lon <= road.length + constants.VEHICLE_LENGTH
        assert 0.0 <= state.v <= constants.V_MAX
    assert injector.log.spiked == len(world())


def test_track_state_cleared_when_vehicle_leaves_range(road):
    injector = FaultInjector(FaultSchedule(freeze_rate=1.0, freeze_duration=5))
    injector.reset(0)
    injector.filter_observation(world(), road)
    assert "a" in injector._tracks
    injector.filter_observation({"b": VehicleState(2, 520.0, 18.0)}, road)
    assert "a" not in injector._tracks


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
@given(episode_seed=st.integers(0, 5000))
@settings(max_examples=20, deadline=None)
def test_fault_stream_is_a_function_of_both_seeds(episode_seed):
    road = Road(length=1000.0)
    schedule = FaultSchedule.scaled(1.0, seed=11)

    def run(injector):
        injector.reset(episode_seed)
        states, frames = world(), []
        for _ in range(6):
            frames.append(injector.filter_observation(states, road))
            states = advance(states)
        return frames

    assert run(FaultInjector(schedule)) == run(FaultInjector(schedule))


def test_different_episode_seeds_give_different_faults(road):
    schedule = FaultSchedule.scaled(1.0, seed=11)
    injector = FaultInjector(schedule)

    def run(episode_seed):
        injector.reset(episode_seed)
        states, frames = world(), []
        for _ in range(10):
            frames.append(injector.filter_observation(states, road))
            states = advance(states)
        return frames

    assert run(0) != run(1)


def test_episode_reset_clears_log_and_latches(road):
    injector = FaultInjector(FaultSchedule(dropout_rate=1.0, dropout_burst=50))
    injector.reset(0)
    injector.filter_observation(world(), road)
    assert injector.log.dropped > 0
    injector.reset(1)
    assert injector.log.total() == 0
    assert injector._tracks == {}


# ----------------------------------------------------------------------
# actuator-side fault processes
# ----------------------------------------------------------------------
def test_actuator_delay_replays_the_previous_command():
    injector = FaultInjector(FaultSchedule(actuator_delay_rate=1.0))
    injector.reset(0)
    assert injector.filter_accel(2.0) == 2.0  # nothing to replay yet
    assert injector.filter_accel(-3.0) == 2.0
    assert injector.filter_accel(1.0) == -3.0
    assert injector.log.actions_delayed == 2


def test_actuator_clamp_limits_magnitude():
    injector = FaultInjector(FaultSchedule(actuator_clamp_rate=1.0,
                                           actuator_clamp_limit=1.0))
    injector.reset(0)
    assert injector.filter_accel(3.0) == 1.0
    assert injector.filter_accel(-2.5) == -1.0
    assert injector.filter_accel(0.5) == 0.5  # already inside the limit
    assert injector.log.actions_clamped == 2


def test_filter_action_preserves_behavior_and_identity():
    from repro.decision import LaneBehavior, ParameterizedAction

    injector = FaultInjector(FaultSchedule(actuator_clamp_rate=1.0,
                                           actuator_clamp_limit=1.0))
    injector.reset(0)
    inside = ParameterizedAction(LaneBehavior.LEFT, 0.5)
    assert injector.filter_action(inside) is inside
    outside = ParameterizedAction(LaneBehavior.RIGHT, 3.0)
    filtered = injector.filter_action(outside)
    assert filtered.behavior is LaneBehavior.RIGHT
    assert filtered.accel == 1.0


# ----------------------------------------------------------------------
# FaultySensor composition
# ----------------------------------------------------------------------
def test_faulty_sensor_delegates_attributes(road):
    injector = FaultInjector(FaultSchedule.none())
    sensor = FaultySensor(Sensor(detection_range=80.0), injector)
    assert sensor.detection_range == 80.0


def test_faulty_sensor_with_zero_schedule_matches_base(road):
    injector = FaultInjector(FaultSchedule.none())
    injector.reset(0)
    base = Sensor()
    sensor = FaultySensor(base, injector)
    states = world()
    assert (sensor.observe("ego", states["ego"], states, road)
            == base.observe("ego", states["ego"], states, road))


def test_faulty_sensor_applies_the_injector(road):
    injector = FaultInjector(FaultSchedule(dropout_rate=1.0, dropout_burst=1))
    injector.reset(0)
    sensor = FaultySensor(Sensor(), injector)
    states = world()
    assert sensor.observe("ego", states["ego"], states, road) == {}

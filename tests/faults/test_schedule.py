"""Tests for the declarative fault schedule value object."""

import pytest

from repro.faults import FaultSchedule
from repro.faults.schedule import _BASE_RATES


def test_default_schedule_is_zero():
    assert FaultSchedule().is_zero()
    assert FaultSchedule.none(seed=7).is_zero()


def test_nonzero_rate_is_not_zero():
    assert not FaultSchedule(dropout_rate=0.1).is_zero()
    assert not FaultSchedule(actuator_clamp_rate=0.01).is_zero()


@pytest.mark.parametrize("field", sorted(_BASE_RATES))
def test_rates_must_be_probabilities(field):
    with pytest.raises(ValueError):
        FaultSchedule(**{field: 1.5})
    with pytest.raises(ValueError):
        FaultSchedule(**{field: -0.1})


@pytest.mark.parametrize("field", ["dropout_burst", "freeze_duration",
                                   "latency_steps"])
def test_durations_must_be_positive(field):
    with pytest.raises(ValueError):
        FaultSchedule(**{field: 0})


def test_scaled_multiplies_base_rates():
    schedule = FaultSchedule.scaled(0.5)
    for name, base in _BASE_RATES.items():
        assert getattr(schedule, name) == pytest.approx(base * 0.5)


def test_scaled_zero_intensity_is_none():
    assert FaultSchedule.scaled(0.0).is_zero()


def test_scaled_caps_rates_at_one():
    schedule = FaultSchedule.scaled(100.0)
    for name in _BASE_RATES:
        assert getattr(schedule, name) <= 1.0


def test_scaled_rejects_negative_intensity():
    with pytest.raises(ValueError):
        FaultSchedule.scaled(-0.1)


def test_scaled_accepts_overrides():
    schedule = FaultSchedule.scaled(1.0, dropout_rate=0.9)
    assert schedule.dropout_rate == 0.9  # reprolint: disable=naked-float-eq
    assert schedule.noise_rate == pytest.approx(_BASE_RATES["noise_rate"])


def test_with_seed_changes_only_the_seed():
    base = FaultSchedule.scaled(1.0, seed=0)
    reseeded = base.with_seed(42)
    assert reseeded.seed == 42
    assert reseeded.dropout_rate == base.dropout_rate


def test_describe_round_trips_through_constructor():
    schedule = FaultSchedule.scaled(0.3, seed=5)
    assert FaultSchedule(**schedule.describe()) == schedule

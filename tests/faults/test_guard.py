"""Tests for the PerceptionGuard fallback wrapper."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import PerceptionGuard
from repro.perception.graph import OUTPUT_SCALE, SpatialTemporalGraph
from repro.perception.predictor import StatePredictor

N_TARGETS = 6


def make_graph(z=3, n=N_TARGETS, seed=0):
    rng = np.random.default_rng(seed)
    target = rng.normal(0.0, 0.1, (z, n, 4))
    contributors = rng.normal(0.0, 0.1, (z, n, 7, 4))
    mask = np.ones(n)
    ego = np.tile(np.array([0.5, 0.5, 0.6, 0.0]), (z, n, 1))
    return SpatialTemporalGraph(target, contributors, mask, ego)


class FakePredictor:
    """Returns a preset array (or raises) from ``predict``."""

    def __init__(self, output):
        self.output = output

    def predict(self, graph):
        if isinstance(self.output, Exception):
            raise self.output
        return self.output


def baseline(graph):
    return StatePredictor.kinematic_baseline(graph) * OUTPUT_SCALE


def test_guard_requires_a_predictor():
    with pytest.raises(ValueError):
        PerceptionGuard(None)


def test_healthy_prediction_passes_through_bit_identically():
    graph = make_graph()
    healthy = np.full((N_TARGETS, 3), 1.5)
    guard = PerceptionGuard(FakePredictor(healthy))
    out = guard.predict(graph)
    assert np.array_equal(out, healthy)
    assert guard.stats.degraded_frames == 0
    assert guard.last_confidence == 1.0


def test_nan_rows_fall_back_to_the_kinematic_baseline():
    graph = make_graph()
    bad = np.full((N_TARGETS, 3), 1.0)
    bad[2, 1] = np.nan
    bad[4, 0] = np.inf
    guard = PerceptionGuard(FakePredictor(bad))
    out = guard.predict(graph)
    expected = baseline(graph)
    assert np.isfinite(out).all()
    assert np.allclose(out[2], expected[2])
    assert np.allclose(out[4], expected[4])
    assert np.array_equal(out[0], bad[0])  # healthy rows untouched
    assert guard.stats.degraded_targets == 2
    assert guard.last_degraded == 2
    assert guard.last_confidence == pytest.approx(1.0 - 2 / N_TARGETS)


def test_out_of_envelope_rows_are_replaced():
    graph = make_graph()
    bad = np.zeros((N_TARGETS, 3))
    bad[1] = [0.0, 1e6, 0.0]  # a kilometer-scale jump is not physical
    guard = PerceptionGuard(FakePredictor(bad))
    out = guard.predict(graph)
    assert np.allclose(out[1], baseline(graph)[1])
    assert (np.abs(out) <= guard.envelope + 1e-12).all()


def test_floating_point_error_degrades_every_target():
    graph = make_graph()
    guard = PerceptionGuard(FakePredictor(FloatingPointError("overflow")))
    out = guard.predict(graph)
    assert out.shape == (N_TARGETS, 3)
    assert np.isfinite(out).all()
    assert guard.stats.degraded_targets == N_TARGETS
    assert guard.last_confidence == 0.0


def test_guard_rejects_malformed_prediction_shape():
    guard = PerceptionGuard(FakePredictor(np.zeros((N_TARGETS, 5))))
    with pytest.raises(ValueError):
        guard.predict(make_graph())


def test_stats_accumulate_and_reset():
    graph = make_graph()
    bad = np.full((N_TARGETS, 3), np.nan)
    guard = PerceptionGuard(FakePredictor(bad))
    guard.predict(graph)
    guard.predict(graph)
    assert guard.stats.frames == 2
    assert guard.stats.degraded_frames == 2
    assert guard.stats.degraded_fraction() == 1.0
    guard.reset_stats()
    assert guard.stats.frames == 0
    assert guard.last_confidence == 1.0


@given(values=st.lists(
    st.floats(allow_nan=True, allow_infinity=True, width=32),
    min_size=N_TARGETS * 3, max_size=N_TARGETS * 3))
@settings(max_examples=60, deadline=None)
def test_guard_output_is_always_finite(values):
    graph = make_graph()
    raw = np.array(values, dtype=np.float64).reshape(N_TARGETS, 3)
    guard = PerceptionGuard(FakePredictor(raw))
    out = guard.predict(graph)
    assert out.shape == (N_TARGETS, 3)
    assert np.isfinite(out).all()
    # replaced rows land inside the envelope; valid rows were inside it
    assert (np.abs(out) <= guard.envelope + 1e-12).all()

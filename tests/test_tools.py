"""Tests for the auxiliary tooling: renderer, multistep rollout,
bootstrap significance, and the CLI."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data import generate_real_dataset
from repro.eval import bootstrap_difference, bootstrap_mean
from repro.perception import (LSTGAT, build_samples, horizon_errors, rollout,
                              train_predictor)
from repro.sim import (Road, SimulationEngine, Vehicle, VehicleState,
                       render_window)


class TestRenderer:
    def make_engine(self):
        engine = SimulationEngine(road=Road(length=500.0, num_lanes=3),
                                  rng=np.random.default_rng(0))
        engine.add_vehicle(Vehicle("av", VehicleState(2, 100.0, 15.0),
                                   is_autonomous=True))
        engine.add_vehicle(Vehicle("cv", VehicleState(2, 120.0, 12.0)))
        engine.add_vehicle(Vehicle("far", VehicleState(1, 400.0, 12.0)))
        return engine

    def test_render_marks_vehicles(self):
        text = render_window(self.make_engine(), "av")
        assert "A" in text
        assert text.count("v") >= 1
        assert "lane 1" in text and "lane 3" in text

    def test_out_of_window_vehicle_hidden(self):
        text = render_window(self.make_engine(), "av", half_width=50.0)
        # 'far' is 300 m ahead -> not rendered; only 'cv' shows as v.
        grid_rows = [line for line in text.splitlines() if line.startswith("lane")]
        assert sum(row.count("v") for row in grid_rows) == 1

    def test_header_reports_focus_state(self):
        text = render_window(self.make_engine(), "av")
        assert "lane 2" in text.splitlines()[0]
        assert "15.0 m/s" in text.splitlines()[0]


class TestMultistep:
    @pytest.fixture(scope="class")
    def setup(self):
        dataset = generate_real_dataset(seed=5, steps=100, density_per_km=110)
        train_set, test_set = dataset.split()
        train = build_samples(train_set, max_egos=3)
        test = build_samples(test_set, max_egos=2)
        model = LSTGAT(attention_dim=16, lstm_dim=16, rng=np.random.default_rng(0))
        train_predictor(model, train, epochs=3, batch_size=32)
        return model, test_set, test

    def test_rollout_shape(self, setup):
        model, _, test = setup
        predictions = rollout(model, test[0].graph, horizon=4)
        assert predictions.shape == (4, 6, 3)
        assert np.isfinite(predictions).all()

    def test_rollout_rejects_bad_horizon(self, setup):
        model, _, test = setup
        with pytest.raises(ValueError):
            rollout(model, test[0].graph, horizon=0)

    def test_error_grows_with_horizon(self, setup):
        """Paper Sec. III-A(2): multi-step errors accumulate."""
        model, test_set, test = setup
        errors = horizon_errors(model, test_set, test[:40], horizon=4)
        assert errors.horizons == [1, 2, 3, 4]
        assert errors.displacement[-1] > errors.displacement[0]

    def test_samples_carry_provenance(self, setup):
        _, _, test = setup
        sample = test[0]
        assert sample.ego_id is not None
        assert sample.step is not None
        assert len(sample.target_ids) == 6


class TestBootstrap:
    def test_mean_interval_contains_truth(self):
        rng = np.random.default_rng(0)
        values = rng.normal(5.0, 1.0, size=200)
        interval = bootstrap_mean(values, rng=np.random.default_rng(1))
        assert interval.contains(5.0)
        assert interval.low < interval.estimate < interval.high

    def test_difference_detects_separation(self):
        rng = np.random.default_rng(0)
        a = rng.normal(5.0, 0.5, size=100)
        b = rng.normal(4.0, 0.5, size=100)
        interval = bootstrap_difference(a, b, rng=np.random.default_rng(1))
        assert interval.low > 0.0  # clearly separated

    def test_paired_difference_removes_shared_variance(self):
        rng = np.random.default_rng(0)
        difficulty = rng.normal(0.0, 5.0, size=80)
        a = difficulty + 1.0 + rng.normal(0, 0.1, size=80)
        b = difficulty + rng.normal(0, 0.1, size=80)
        interval = bootstrap_difference(a, b, rng=np.random.default_rng(1))
        assert interval.low > 0.5  # the +1 offset is resolvable despite noise

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean([])
        with pytest.raises(ValueError):
            bootstrap_difference([1.0], [1.0, 2.0])

    def test_str_format(self):
        text = str(bootstrap_mean([1.0, 2.0, 3.0]))
        assert "@" in text and "[" in text


class TestCLI:
    def test_parser_subcommands(self):
        parser = build_parser()
        for command in ("generate-data", "train", "evaluate", "drive", "info"):
            args = parser.parse_args([command] if command != "train"
                                     else [command, "--episodes", "1"])
            assert args.command == command

    def test_info_command(self, capsys):
        assert main(["info"]) == 0
        output = capsys.readouterr().out
        assert "paper" in output and "3000" in output

    def test_generate_data_command(self, tmp_path, capsys):
        out = tmp_path / "real.npz"
        assert main(["generate-data", "--steps", "10", "--out", str(out)]) == 0
        assert out.exists()

    def test_drive_command(self, capsys):
        assert main(["drive", "--seed", "3", "--steps", "3", "--every", "1"]) == 0
        output = capsys.readouterr().out
        assert "lane" in output

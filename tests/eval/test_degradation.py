"""Tests for the fault-intensity degradation sweep."""

import json
from dataclasses import replace

import numpy as np

from repro.core import HEAD, HEADConfig
from repro.decision import IDMLCPolicy
from repro.decision.environment import DrivingEnv
from repro.eval import (build_faulty_env, degradation_sweep,
                        evaluate_controller, run_episode)
from repro.faults import FaultInjector, FaultSchedule, FaultySensor
from repro.perception import EnhancedPerception, Sensor

MAX_STEPS = 15
SEEDS = [900, 901]


def make_head(use_prediction=False, seed=0):
    cfg = replace(HEADConfig().scaled(max_episode_steps=MAX_STEPS),
                  use_prediction=use_prediction)
    return HEAD(cfg, rng=np.random.default_rng(seed))


# ----------------------------------------------------------------------
# zero-schedule golden-trace equivalence
# ----------------------------------------------------------------------
def test_zero_schedule_env_trace_is_bit_identical():
    head = make_head()

    plain = run_episode(IDMLCPolicy(), head.make_env(), seed=904,
                        max_steps=MAX_STEPS)

    injector = FaultInjector(FaultSchedule.none())
    perception = EnhancedPerception(
        predictor=None,
        sensor=FaultySensor(Sensor(detection_range=head.config.sensor_range),
                            injector),
        history_steps=head.config.history_steps,
        use_phantoms=head.config.use_phantoms)
    faulty_env = DrivingEnv(perception, reward=head.reward, road=head.road(),
                            density_per_km=head.config.density_per_km,
                            max_steps=MAX_STEPS, faults=injector)
    wired = run_episode(IDMLCPolicy(), faulty_env, seed=904,
                        max_steps=MAX_STEPS)

    assert wired.records == plain.records
    assert wired.collided == plain.collided
    assert wired.finished == plain.finished
    assert injector.log.total() == 0


def test_zero_intensity_sweep_matches_plain_evaluation():
    head = make_head()
    report = degradation_sweep(head, [0.0], SEEDS, max_steps=MAX_STEPS)
    plain = evaluate_controller(head.controller(),
                                head.make_env(max_steps=MAX_STEPS), SEEDS)
    point = report.points[0]
    assert point.report.collisions == plain.collisions
    assert point.report.avg_v_a == plain.avg_v_a
    assert point.report.min_ttc_a == plain.min_ttc_a
    assert point.report.avg_j_a == plain.avg_j_a
    assert sum(point.fault_events.values()) == 0
    assert point.fallback_overrides == 0


# ----------------------------------------------------------------------
# faulty runs stay numerically sound
# ----------------------------------------------------------------------
def test_nonzero_intensity_injects_faults_and_stays_finite():
    head = make_head(use_prediction=True)
    report = degradation_sweep(head, [1.0], SEEDS, max_steps=MAX_STEPS)
    point = report.points[0]
    assert sum(point.fault_events.values()) > 0
    assert point.report.episodes == len(SEEDS)
    assert np.isfinite([point.report.avg_v_a, point.report.avg_j_a]).all()


def test_sweep_is_deterministic():
    head = make_head()
    first = degradation_sweep(head, [0.5], SEEDS, max_steps=MAX_STEPS)
    second = degradation_sweep(make_head(), [0.5], SEEDS, max_steps=MAX_STEPS)
    assert first.points[0].as_dict() == second.points[0].as_dict()


def test_build_faulty_env_isolates_runs():
    head = make_head()
    a = build_faulty_env(head, FaultSchedule.scaled(1.0), max_steps=MAX_STEPS)
    b = build_faulty_env(head, FaultSchedule.scaled(1.0), max_steps=MAX_STEPS)
    assert a.env is not b.env
    assert a.injector is not b.injector


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
def test_report_renders_and_round_trips_json(tmp_path):
    head = make_head()
    report = degradation_sweep(head, [0.0, 1.0], [900], max_steps=MAX_STEPS)
    text = report.render()
    assert "intensity" in text
    assert len(text.splitlines()) == 4  # header, rule, two rows
    path = report.save(tmp_path / "sweep.json")
    loaded = json.loads(path.read_text())
    assert loaded == report.as_dict()
    assert len(loaded["points"]) == 2

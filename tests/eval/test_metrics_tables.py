"""Tests for metric aggregation and table rendering."""

import numpy as np
import pytest

from repro.decision.environment import EpisodeResult, StepRecord
from repro.decision.reward import RewardBreakdown
from repro.eval import (PAPER_COLUMNS, aggregate, render_metric_table,
                        render_table)
from repro.sim import constants


def record(step=1, v=20.0, accel=1.0, jerk=0.5, ttc=5.0, drop=None,
           impact=False, collided=False, trailing_v=18.0):
    return StepRecord(
        step=step, av_velocity=v, av_accel=accel, av_jerk=jerk, ttc=ttc,
        rear_velocity_drop=drop, impact_event=impact, collided=collided,
        reward=RewardBreakdown(0.0, 0.5, 0.0, 0.0, 0.4),
        trailing_ids=("cv1",), trailing_mean_velocity=trailing_v,
    )


def episode(records, finished=True, collided=False):
    result = EpisodeResult(records=list(records), finished=finished,
                           collided=collided, steps=len(records))
    return result


def test_aggregate_requires_episodes():
    with pytest.raises(ValueError):
        aggregate([], road_length=1000.0)


def test_finished_episode_uses_exact_time():
    result = episode([record() for _ in range(10)])
    report = aggregate([result], road_length=1000.0)
    assert report.avg_dt_a == pytest.approx(10 * constants.DT)


def test_truncated_episode_uses_velocity_estimate():
    result = episode([record(v=20.0) for _ in range(10)], finished=False)
    report = aggregate([result], road_length=1000.0)
    assert report.avg_dt_a == pytest.approx(1000.0 / 20.0)


def test_trailing_velocity_drives_dt_c():
    result = episode([record(trailing_v=10.0)])
    report = aggregate([result], road_length=500.0)
    assert report.avg_dt_c == pytest.approx(50.0)


def test_impact_event_counting():
    records = [record(impact=True), record(impact=False), record(impact=True)]
    report = aggregate([episode(records)], road_length=100.0)
    assert report.avg_count_ca == pytest.approx(2.0)


def test_min_ttc_across_episodes():
    a = episode([record(ttc=4.0), record(ttc=None)])
    b = episode([record(ttc=2.5)])
    report = aggregate([a, b], road_length=100.0)
    assert report.min_ttc_a == pytest.approx(2.5)


def test_rear_drop_mean_ignores_speedups():
    records = [record(drop=1.0), record(drop=-0.5), record(drop=2.0)]
    report = aggregate([episode(records)], road_length=100.0)
    assert report.avg_d_ca == pytest.approx(1.5)


def test_collision_counting():
    report = aggregate([episode([record()], collided=True),
                        episode([record()])], road_length=100.0)
    assert report.collisions == 1
    assert report.episodes == 2


def test_report_row_order():
    report = aggregate([episode([record()])], road_length=100.0)
    assert len(report.row()) == len(PAPER_COLUMNS) == 7


def test_render_table_alignment():
    text = render_table("Table X", ["A", "B"], {"method": [1.234, 5.0],
                                                "other": [2.0, 6.789]})
    lines = text.splitlines()
    assert lines[0] == "Table X"
    assert "Method" in lines[1]
    assert "1.23" in text and "6.79" in text
    assert len({len(line) for line in lines[2:]}) <= 2  # consistent width


def test_render_metric_table():
    report = aggregate([episode([record()])], road_length=100.0)
    text = render_metric_table("Table I", {"HEAD": report})
    assert "AvgDT-A(s)" in text
    assert "HEAD" in text

"""Tests for the batched evaluation harness (`evaluate_controller_batch`).

The batched runner must be a drop-in replacement for the sequential
one: with ``batch_size=1`` it replays the exact same episodes (same
seeds, same controller decisions, same step caps), so the reports are
equal field for field.  With larger batches the episodes are
independent, so the aggregate is still identical -- only the
interleaving changes.  RL agents additionally expose ``act_batch``,
whose greedy decisions must match ``act`` state for state.
"""

import dataclasses

import numpy as np
import pytest

from repro.decision import (AgentController, DrivingEnv, HybridReward,
                            IDMLCPolicy, PDQNAgent, TPBTSPolicy)
from repro.eval import evaluate_controller, evaluate_controller_batch
from repro.perception import EnhancedPerception
from repro.sim import Road


def make_env(max_steps=40, length=400.0, density=100):
    return DrivingEnv(EnhancedPerception(predictor=None), reward=HybridReward(),
                      road=Road(length=length), density_per_km=density,
                      max_steps=max_steps)


def assert_reports_equal(batched, sequential):
    """Exact field-by-field equality, treating matching NaNs as equal.

    Metrics over an empty population (e.g. ``avg_dt_c`` when no CV
    finishes within the step cap) are NaN, which breaks plain dataclass
    ``==`` even for identical reports.
    """
    np.testing.assert_equal(dataclasses.asdict(batched),
                            dataclasses.asdict(sequential))


SEEDS = [0, 1, 2, 3, 4]


class TestBatchMatchesSequential:
    def test_batch_of_one_rule_based(self):
        sequential = evaluate_controller(IDMLCPolicy(), make_env(), SEEDS)
        batched = evaluate_controller_batch(IDMLCPolicy(), make_env(), SEEDS,
                                            batch_size=1)
        assert_reports_equal(batched, sequential)

    def test_batch_of_one_stateless(self):
        controller = TPBTSPolicy(depth=1)
        sequential = evaluate_controller(controller, make_env(), SEEDS)
        batched = evaluate_controller_batch(controller, make_env(), SEEDS,
                                            batch_size=1)
        assert_reports_equal(batched, sequential)

    def test_multi_batch_aggregates_identically(self):
        """Episodes are independent, so interleaving cannot change them."""
        sequential = evaluate_controller(IDMLCPolicy(), make_env(), SEEDS)
        for batch_size in (2, 3, 8):
            batched = evaluate_controller_batch(IDMLCPolicy(), make_env(),
                                                SEEDS, batch_size=batch_size)
            assert_reports_equal(batched, sequential)

    def test_respects_max_steps_override(self):
        sequential = evaluate_controller(IDMLCPolicy(), make_env(max_steps=200),
                                         SEEDS, max_steps=25)
        batched = evaluate_controller_batch(IDMLCPolicy(), make_env(max_steps=200),
                                            SEEDS, batch_size=3, max_steps=25)
        assert_reports_equal(batched, sequential)

    def test_empty_seed_list_raises_like_sequential(self):
        with pytest.raises(ValueError):
            evaluate_controller(IDMLCPolicy(), make_env(), [])
        with pytest.raises(ValueError):
            evaluate_controller_batch(IDMLCPolicy(), make_env(), [])

    def test_more_slots_than_seeds(self):
        sequential = evaluate_controller(IDMLCPolicy(), make_env(), [3, 4])
        batched = evaluate_controller_batch(IDMLCPolicy(), make_env(), [3, 4],
                                            batch_size=16)
        assert_reports_equal(batched, sequential)


class TestAgentBatching:
    @pytest.fixture(scope="class")
    def agent(self):
        return PDQNAgent(branched=True, hidden_dim=16,
                         rng=np.random.default_rng(0))

    def test_act_batch_matches_act(self, agent):
        env = make_env()
        states = [env.reset(seed) for seed in range(6)]
        batched = agent.act_batch(states, explore=False)
        singles = [agent.act(state, explore=False) for state in states]
        assert len(batched) == len(singles)
        for one, many in zip(singles, batched):
            assert many.behavior is one.behavior
            # A multi-row matmul may take a different BLAS path than the
            # single-row forward, so allow ULP-level drift here; exact
            # equality is required only for batch-of-1 (next test).
            assert many.accel == pytest.approx(one.accel, rel=1e-12, abs=1e-12)

    def test_act_batch_of_one_is_exact(self, agent):
        env = make_env()
        for seed in range(4):
            state = env.reset(seed)
            (batched,) = agent.act_batch([state], explore=False)
            single = agent.act(state, explore=False)
            assert batched.behavior is single.behavior
            assert batched.accel == single.accel

    def test_act_batch_empty(self, agent):
        assert agent.act_batch([], explore=False) == []

    def test_agent_controller_batch_of_one(self, agent):
        controller = AgentController(agent, name="pdqn")
        sequential = evaluate_controller(controller, make_env(), SEEDS[:3])
        batched = evaluate_controller_batch(controller, make_env(), SEEDS[:3],
                                            batch_size=1)
        assert_reports_equal(batched, sequential)

    def test_agent_controller_multi_batch(self, agent):
        """Shared stateless controller: one forward pass per front."""
        controller = AgentController(agent, name="pdqn")
        report = evaluate_controller_batch(controller, make_env(), SEEDS[:4],
                                           batch_size=4)
        assert report.episodes == 4

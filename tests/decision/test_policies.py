"""Focused tests for the rule-based and search-based decision baselines."""

import numpy as np
import pytest

from repro.decision import (ACCLCPolicy, DrivingEnv, HybridReward, IDMLCPolicy,
                            LaneBehavior, TPBTSPolicy)
from repro.perception import EnhancedPerception, LSTGAT
from repro.sim import Road, SimulationEngine, Vehicle, VehicleState
from repro.sim.vehicle import DriverProfile


def scripted_env(vehicles, num_lanes=3, length=600.0, predictor=None):
    """Environment seeded with an exact hand-placed scene."""
    env = DrivingEnv(EnhancedPerception(predictor=predictor),
                     reward=HybridReward(), road=Road(length=length,
                                                      num_lanes=num_lanes),
                     density_per_km=0, max_steps=50)
    # Monkey-build the episode: bypass build_episode for determinism.
    engine = SimulationEngine(road=env.road, rng=np.random.default_rng(0))
    for vid, lane, lon, v in vehicles:
        engine.add_vehicle(Vehicle(vid, VehicleState(lane, lon, v),
                                   is_autonomous=(vid == "av"),
                                   profile=DriverProfile(imperfection=0.0)))
    env.engine = engine
    env.perception.reset()
    env.result = type(env.result)()
    env._steps = 0
    env._frame = env.perception.perceive(engine, "av")
    from repro.decision.pamdp import build_augmented_state
    return env, build_augmented_state(env._frame)


class TestRuleBased:
    def test_free_road_accelerates(self):
        env, state = scripted_env([("av", 2, 100.0, 15.0)])
        action = IDMLCPolicy().select_action(env, state)
        assert action.behavior is LaneBehavior.KEEP
        assert action.accel > 0

    def test_slow_leader_triggers_braking_or_lane_change(self):
        env, state = scripted_env([("av", 2, 100.0, 20.0),
                                   ("slow", 2, 118.0, 5.0),
                                   ("l1", 1, 118.0, 5.0),
                                   ("r1", 3, 118.0, 5.0)])
        action = IDMLCPolicy().select_action(env, state)
        # All lanes blocked by slow traffic: must brake in lane.
        assert action.behavior is LaneBehavior.KEEP
        assert action.accel < 0

    def test_lane_change_to_empty_lane(self):
        env, state = scripted_env([("av", 2, 100.0, 20.0),
                                   ("slow", 2, 125.0, 6.0)])
        policy = IDMLCPolicy()
        policy.begin_episode()
        action = policy.select_action(env, state)
        assert action.behavior in (LaneBehavior.LEFT, LaneBehavior.RIGHT)

    def test_cooldown_blocks_consecutive_changes(self):
        env, state = scripted_env([("av", 2, 100.0, 20.0),
                                   ("slow", 2, 125.0, 6.0)])
        policy = IDMLCPolicy()
        policy.begin_episode()
        first = policy.select_action(env, state)
        assert first.behavior is not LaneBehavior.KEEP
        second = policy.select_action(env, state)
        assert second.behavior is LaneBehavior.KEEP

    def test_acc_lc_uses_acc_longitudinal(self):
        env, state = scripted_env([("av", 2, 100.0, 15.0),
                                   ("lead", 2, 140.0, 15.0)])
        action = ACCLCPolicy().select_action(env, state)
        assert abs(action.accel) <= 3.0


class TestTPBTS:
    def test_free_road_prefers_full_throttle(self):
        env, state = scripted_env([("av", 2, 100.0, 15.0)])
        action = TPBTSPolicy().select_action(env, state)
        assert action.behavior is LaneBehavior.KEEP
        assert action.accel == pytest.approx(3.0)

    def test_blocked_ahead_brakes_or_changes(self):
        env, state = scripted_env([("av", 2, 100.0, 20.0),
                                   ("wall", 2, 116.0, 1.4)])
        action = TPBTSPolicy().select_action(env, state)
        assert action.behavior is not LaneBehavior.KEEP or action.accel < 0

    def test_everything_blocked_falls_back_to_hard_brake(self):
        env, state = scripted_env([("av", 2, 100.0, 25.0),
                                   ("w2", 2, 112.0, 1.4),
                                   ("w1", 1, 112.0, 1.4),
                                   ("w3", 3, 112.0, 1.4),
                                   ("r1", 1, 96.0, 25.0),
                                   ("r3", 3, 96.0, 25.0)])
        action = TPBTSPolicy().select_action(env, state)
        assert action.behavior is LaneBehavior.KEEP
        assert action.accel == pytest.approx(-3.0)

    def test_uses_trained_predictor_when_present(self):
        predictor = LSTGAT(attention_dim=16, lstm_dim=16,
                           rng=np.random.default_rng(0))
        env, state = scripted_env([("av", 2, 100.0, 15.0),
                                   ("lead", 2, 130.0, 14.0)],
                                  predictor=predictor)
        action = TPBTSPolicy().select_action(env, state)
        assert action.behavior in LaneBehavior
        assert abs(action.accel) <= 3.0

    def test_never_steers_off_road(self):
        env, state = scripted_env([("av", 1, 100.0, 20.0),
                                   ("slow", 1, 125.0, 5.0)], num_lanes=1)
        action = TPBTSPolicy().select_action(env, state)
        assert action.behavior is LaneBehavior.KEEP

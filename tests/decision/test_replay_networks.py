"""Tests for the replay buffer and the x/Q network structures."""

import numpy as np
import pytest

from repro import nn
from repro.decision import (AugmentedState, BranchedQNetwork, BranchedXNetwork,
                            ReplayBuffer, Transition, VanillaQNetwork,
                            VanillaXNetwork)
from repro.sim import constants


def make_state(value=0.5):
    return AugmentedState(np.full((7, 4), value), np.full((6, 4), value),
                          np.ones(6))


def make_transition(value=0.5, reward=1.0, done=False, aux=None):
    return Transition(state=make_state(value), behavior=1, accel=0.5,
                      reward=reward, next_state=None if done else make_state(value + 0.1),
                      done=done, aux=aux)


class TestReplayBuffer:
    def test_push_and_len(self):
        buffer = ReplayBuffer(capacity=10, rng=np.random.default_rng(0))
        for _ in range(5):
            buffer.push(make_transition())
        assert len(buffer) == 5

    def test_ring_overwrite(self):
        buffer = ReplayBuffer(capacity=4, rng=np.random.default_rng(0))
        for index in range(10):
            buffer.push(make_transition(value=index * 0.01))
        assert len(buffer) == 4

    def test_sample_shapes(self):
        buffer = ReplayBuffer(capacity=100, rng=np.random.default_rng(0))
        for _ in range(50):
            buffer.push(make_transition(aux=np.array([1.0, 2.0, 3.0])))
        batch = buffer.sample(16)
        assert batch.current.shape == (16, 7, 4)
        assert batch.future.shape == (16, 6, 4)
        assert batch.aux.shape == (16, 6)
        assert np.allclose(batch.aux[:, :3], [1.0, 2.0, 3.0])
        assert np.allclose(batch.aux[:, 3:], 0.0)
        assert len(batch) == 16

    def test_terminal_next_state_zeroed(self):
        buffer = ReplayBuffer(capacity=4, rng=np.random.default_rng(0))
        buffer.push(make_transition(done=True))
        batch = buffer.sample(1)
        assert batch.done[0] == 1.0
        assert np.allclose(batch.next_current, 0.0)

    def test_empty_sample_raises(self):
        with pytest.raises(ValueError):
            ReplayBuffer(capacity=4).sample(1)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReplayBuffer(capacity=0)


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestNetworks:
    @pytest.mark.parametrize("x_cls", [BranchedXNetwork, VanillaXNetwork])
    def test_x_network_output_bounded(self, x_cls, rng):
        net = x_cls(hidden_dim=16, rng=rng)
        current = nn.Tensor(rng.standard_normal((5, 7, 4)))
        future = nn.Tensor(rng.standard_normal((5, 6, 4)))
        out = net(current, future)
        assert out.shape == (5, 3)
        assert np.all(np.abs(out.numpy()) <= constants.A_MAX + 1e-9)

    @pytest.mark.parametrize("q_cls,x_cls", [(BranchedQNetwork, BranchedXNetwork),
                                             (VanillaQNetwork, VanillaXNetwork)])
    def test_q_network_shapes(self, q_cls, x_cls, rng):
        x_net = x_cls(hidden_dim=16, rng=rng)
        q_net = q_cls(hidden_dim=16, rng=rng)
        current = nn.Tensor(rng.standard_normal((4, 7, 4)))
        future = nn.Tensor(rng.standard_normal((4, 6, 4)))
        q = q_net(current, future, x_net(current, future))
        assert q.shape == (4, 3)

    def test_branched_network_separates_inputs(self, rng):
        """Changing the future half must not pass through the current branch.

        With the branched structure, zeroing the future branch weights
        makes Q invariant to the future input -- impossible to arrange
        in the single shared MLP without also changing current-path
        behaviour.
        """
        q_net = BranchedQNetwork(hidden_dim=16, rng=rng)
        for parameter in q_net.future_branch.parameters():
            parameter.data[:] = 0.0
        current = nn.Tensor(rng.standard_normal((2, 7, 4)))
        accels = nn.Tensor(rng.standard_normal((2, 3)))
        out_a = q_net(current, nn.Tensor(rng.standard_normal((2, 6, 4))), accels)
        out_b = q_net(current, nn.Tensor(rng.standard_normal((2, 6, 4))), accels)
        np.testing.assert_allclose(out_a.numpy(), out_b.numpy())

    def test_gradients_flow_through_both_networks(self, rng):
        x_net = BranchedXNetwork(hidden_dim=8, rng=rng)
        q_net = BranchedQNetwork(hidden_dim=8, rng=rng)
        current = nn.Tensor(rng.standard_normal((3, 7, 4)))
        future = nn.Tensor(rng.standard_normal((3, 6, 4)))
        loss = -q_net(current, future, x_net(current, future)).sum()
        loss.backward()
        assert all(p.grad is not None for p in x_net.parameters())
